//! Supervised, crash-safe artifact harness.
//!
//! `regenerate` used to be a straight-line `main` — one panicking runner
//! lost the whole batch, and a killed process left nothing on disk. This
//! module gives every paper artifact its own supervised cell and a durable
//! home:
//!
//! * Each artifact runs under [`visionsim_core::par::run_cell`]
//!   (`catch_unwind` + retry-once + quarantine), so one failure cannot
//!   take down the others.
//! * Output is written to `artifacts/<name>.txt` via temp-file +
//!   atomic rename: a crash mid-write never leaves a torn file.
//! * A `manifest.json` beside the artifacts records the seed, thread
//!   count, and an FNV-1a 64 checksum per artifact. `--resume` re-runs
//!   only artifacts whose file is missing or fails checksum verification
//!   against a same-seed manifest.
//! * Artifact files contain **no wall-clock timings** — timing goes to
//!   stdout and the manifest — so files are byte-identical across thread
//!   counts and across runs with the same seed.
//!
//! Failure injection for CI: setting `VISIONSIM_FAIL_ARTIFACT=<name>`
//! makes that artifact's cell panic deliberately, exercising the
//! quarantine + resume path end-to-end.

use crate::*;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;
use visionsim_core::par::{run_cell, Cell, CellError};
use visionsim_core::{metrics, trace};

/// One registered paper artifact.
pub struct ArtifactSpec {
    /// File stem under the artifact directory, and the supervision label.
    pub name: &'static str,
    /// The paper section/figure this artifact reproduces (summary table).
    pub section: &'static str,
    /// Produce the artifact text from the root seed. Must be
    /// deterministic in the seed: no timings, no thread-count dependence.
    pub run: fn(u64) -> String,
}

/// Every artifact `regenerate` produces, in run order.
pub fn registry() -> Vec<ArtifactSpec> {
    vec![
        ArtifactSpec {
            name: "table1",
            section: "Table 1 — server RTT matrix",
            run: |seed| {
                let t1 = table1::run(10, seed);
                format!("{t1}\nmax σ = {:.2} ms (paper: <7 ms)\n", t1.max_std())
            },
        },
        ArtifactSpec {
            name: "figure4",
            section: "Figure 4 — two-party throughput per app",
            run: |seed| format!("{}", figure4::run(3, 30, seed)),
        },
        ArtifactSpec {
            name: "mesh_streaming",
            section: "§4.3 direct-3D-streaming bandwidth floor",
            run: |seed| format!("{}", mesh_streaming::run(6, seed)),
        },
        ArtifactSpec {
            name: "display_latency",
            section: "§4.3 display latency vs injected delay",
            run: |seed| format!("{}", display_latency::run(500, seed)),
        },
        ArtifactSpec {
            name: "keypoint_rate",
            section: "§4.3 keypoint-stream bandwidth",
            run: |seed| format!("{}", keypoint_rate::run(2_000, seed)),
        },
        ArtifactSpec {
            name: "rate_adaptation",
            section: "§4.3 the 700 kbps availability cliff",
            run: |seed| format!("{}", rate_adaptation::run(15, seed)),
        },
        ArtifactSpec {
            name: "figure5",
            section: "Figure 5 — visibility-aware optimizations",
            run: |seed| format!("{}", figure5::run(500, seed)),
        },
        ArtifactSpec {
            name: "discovery",
            section: "§4.1 server discovery methodology",
            run: |seed| format!("{}", discovery::run(24, 5, seed)),
        },
        ArtifactSpec {
            name: "protocols",
            section: "§4.1 protocol findings + anycast check",
            run: |seed| format!("{}", protocols::run(10, seed)),
        },
        ArtifactSpec {
            name: "motion_to_photon",
            section: "motion-to-photon latency vs placement",
            run: |seed| format!("{}", motion_to_photon::run(15, seed)),
        },
        ArtifactSpec {
            name: "figure6",
            section: "Figure 6 — scalability, 2–5 users",
            run: |seed| format!("{}", figure6::run(30, seed)),
        },
        ArtifactSpec {
            name: "resilience",
            section: "chaos drill: mid-session faults",
            run: |seed| {
                let drill = resilience::run(14, seed);
                let recovered = if drill.cells.is_empty() {
                    "n/a (no cells ran)".to_string()
                } else {
                    format!(
                        "{}/{} cells dipped and recovered",
                        drill.recovered_cells(),
                        drill.cells.len()
                    )
                };
                format!("{drill}\n{recovered}\n")
            },
        },
        ArtifactSpec {
            name: "congestion",
            section: "closed-loop congestion: fairness + survival",
            run: |seed| format!("{}", congestion::run(40, seed)),
        },
        ArtifactSpec {
            name: "storms",
            section: "failover storms: admission + breakers + reconnects",
            run: |seed| format!("{}", storms::run(32, seed)),
        },
        ArtifactSpec {
            name: "fleet",
            section: "100k-session global fleet (sharded conservative PDES)",
            run: |seed| format!("{}", fleet::run(seed)),
        },
        ArtifactSpec {
            name: "ablations",
            section: "design-choice ablations",
            run: ablations_text,
        },
        ArtifactSpec {
            name: "extensions",
            section: "FEC + >5-user scaling extensions",
            run: |seed| {
                format!(
                    "{}\n{}\n",
                    extensions::format_fec(&extensions::fec_under_loss(500, 2_000, seed)),
                    extensions::format_beyond_five(&extensions::beyond_five_users(15, seed))
                )
            },
        },
    ]
}

/// The ablation bundle as one artifact, with division guards: a zero
/// delta-mode payload (possible on degenerate traces) renders as "n/a"
/// instead of dividing by zero.
fn ablations_text(seed: u64) -> String {
    let mut out = String::new();
    let coder = ablations::entropy_coder(200_000, seed);
    let _ = writeln!(
        out,
        "entropy coder on {} B residuals: rANS {} B vs LZ+range {} B",
        coder.input_len, coder.rans_len, coder.lzma_len
    );
    let delta = ablations::delta_coding(900, seed);
    let ratio = if delta.delta_bytes > 0.0 {
        format!("{:.1}x", delta.absolute_bytes / delta.delta_bytes)
    } else {
        "n/a".to_string()
    };
    let _ = writeln!(
        out,
        "semantic coding: absolute {:.2} Mbps vs delta {:.2} Mbps ({ratio} for loss resilience)",
        delta.absolute_mbps, delta.delta_mbps
    );
    for p in ablations::foveation_granularity(2_000, seed) {
        let _ = writeln!(
            out,
            "foveation ±{:>4.1}° → {:>7.0} mean triangles/frame",
            p.fovea_deg, p.mean_triangles
        );
    }
    let placement = ablations::placement();
    let _ = writeln!(
        out,
        "placement: initiator-near worst RTT {:.0} ms vs geo-distributed {:.0} ms",
        placement.initiator_worst_rtt_ms, placement.geo_worst_rtt_ms
    );
    let culling = ablations::semantic_culling(5_000, seed);
    let _ = writeln!(
        out,
        "visibility-aware delivery: {:.0}% uplink saving available",
        culling.saving_percent
    );
    out
}

/// FNV-1a 64-bit — the manifest's content checksum. Not cryptographic;
/// guards against torn/stale files, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Merge one wall-clock timing entry into `BENCH.json` (the path in
/// `VISIONSIM_BENCH_JSON`, else the repo-root file), preserving every
/// other entry and the one-entry-per-line sorted layout the bench
/// harness writes. The entry carries **no** `per_sec` field, which is
/// what keeps it out of ci.sh's throughput regression gate — wall time
/// of the whole run is a trajectory to watch, not a gated invariant.
///
/// Failure is downgraded to a stderr warning: timings are a byproduct
/// and must never fail a regeneration.
pub fn record_wall_bench(name: &str, secs: f64) {
    let path = match std::env::var_os("VISIONSIM_BENCH_JSON") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::PathBuf::from("BENCH.json"),
    };
    let entry_name = |line: &str| -> Option<String> {
        let rest = line.trim_start().strip_prefix('"')?;
        let end = rest.find('"')?;
        rest[end..].contains(": {").then(|| rest[..end].to_string())
    };
    let mut entries: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            if let Some(n) = entry_name(line) {
                entries.insert(n, line.trim_end_matches(',').to_string());
            }
        }
    }
    let ns = secs * 1e9;
    entries.insert(
        name.to_string(),
        format!("  \"{name}\": {{\"min_ns\": {ns:.1}, \"mean_ns\": {ns:.1}, \"max_ns\": {ns:.1}, \"unit\": \"wall\"}}"),
    );
    let mut out = String::from("{\n");
    let last = entries.len().saturating_sub(1);
    for (i, line) in entries.values().enumerate() {
        out.push_str(line);
        out.push_str(if i == last { "\n" } else { ",\n" });
    }
    out.push_str("}\n");
    if let Err(e) = write_atomic(&path, out.as_bytes()) {
        eprintln!("warning: could not record wall time in {}: {e:?}", path.display());
    }
}

/// One artifact's manifest record.
#[derive(Clone, Debug, PartialEq)]
pub struct ManifestEntry {
    /// Artifact name (file stem).
    pub name: String,
    /// FNV-1a 64 checksum of the artifact file's bytes, hex.
    pub checksum: u64,
    /// Artifact file size in bytes.
    pub bytes: u64,
    /// Wall-clock seconds the producing run spent (informational).
    pub secs: f64,
}

/// The on-disk manifest: which artifacts exist, under which seed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    /// Root seed the artifacts were generated from.
    pub seed: u64,
    /// Worker threads of the producing run (informational; artifacts are
    /// thread-count-independent by construction).
    pub threads: usize,
    /// Per-artifact records.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Serialize as JSON (hand-rolled: the workspace builds without serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"artifacts\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"checksum\": \"{:016x}\", \"bytes\": {}, \"secs\": {:.3}}}{comma}",
                e.name, e.checksum, e.bytes, e.secs
            );
        }
        let _ = writeln!(s, "  ]");
        s.push_str("}\n");
        s
    }

    /// Parse the JSON written by [`Manifest::to_json`]. Returns `None` on
    /// anything malformed — a broken manifest means "no resume state",
    /// never a crash.
    pub fn from_json(text: &str) -> Option<Manifest> {
        let seed = scan_u64(text, "\"seed\"")?;
        let threads = scan_u64(text, "\"threads\"")? as usize;
        let mut entries = Vec::new();
        // Entries are one object per line by construction; scan each line
        // that contains a "name" key.
        for line in text.lines() {
            if !line.trim_start().starts_with("{\"name\"") {
                continue;
            }
            let name = scan_string(line, "\"name\"")?;
            let checksum = u64::from_str_radix(&scan_string(line, "\"checksum\"")?, 16).ok()?;
            let bytes = scan_u64(line, "\"bytes\"")?;
            let secs = scan_f64(line, "\"secs\"")?;
            entries.push(ManifestEntry {
                name,
                checksum,
                bytes,
                secs,
            });
        }
        Some(Manifest {
            seed,
            threads,
            entries,
        })
    }

    /// The entry for `name`, if present.
    pub fn entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

fn scan_after<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    Some(rest)
}

fn scan_u64(text: &str, key: &str) -> Option<u64> {
    let rest = scan_after(text, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scan_f64(text: &str, key: &str) -> Option<f64> {
    let rest = scan_after(text, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scan_string(text: &str, key: &str) -> Option<String> {
    let rest = scan_after(text, key)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Write `content` to `path` atomically: temp file in the same directory,
/// flush, then rename over the target.
pub fn write_atomic(path: &Path, content: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("artifact")
    ));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(content)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Harness configuration.
pub struct HarnessConfig {
    /// Root seed handed to every runner.
    pub seed: u64,
    /// Skip artifacts already on disk with a verified checksum.
    pub resume: bool,
    /// Artifact directory (default `artifacts/`, override with
    /// `VISIONSIM_ARTIFACT_DIR`).
    pub dir: PathBuf,
    /// Echo each artifact's text to stdout as it lands.
    pub echo: bool,
    /// Run only the named artifact (CI smoke; `--only <name>`).
    pub only: Option<String>,
}

impl HarnessConfig {
    /// Defaults: given seed, no resume, `artifacts/` or the
    /// `VISIONSIM_ARTIFACT_DIR` override, echo on, all artifacts.
    pub fn new(seed: u64) -> Self {
        HarnessConfig {
            seed,
            resume: false,
            dir: std::env::var("VISIONSIM_ARTIFACT_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from("artifacts")),
            echo: true,
            only: None,
        }
    }
}

/// How one artifact ended.
#[derive(Debug)]
pub enum ArtifactStatus {
    /// Generated and written this run.
    Written,
    /// Skipped under `--resume`: file present and checksum-verified.
    Resumed,
    /// Quarantined: the supervised cell failed twice (or timed out).
    Failed(CellError),
}

/// Per-artifact outcome of a harness run.
#[derive(Debug)]
pub struct ArtifactOutcome {
    /// Artifact name.
    pub name: &'static str,
    /// What happened.
    pub status: ArtifactStatus,
    /// Wall-clock seconds spent (zero when resumed).
    pub secs: f64,
}

/// Run every registered artifact under supervision. Returns the outcomes
/// in run order; the run is a success iff none failed. The manifest is
/// rewritten after every artifact, so a crash at any point leaves disk
/// state a later `--resume` can trust.
pub fn run_all(cfg: &HarnessConfig) -> Vec<ArtifactOutcome> {
    let specs = registry();
    let manifest_path = cfg.dir.join("manifest.json");
    let prior = fs::read_to_string(&manifest_path)
        .ok()
        .and_then(|t| Manifest::from_json(&t))
        // A manifest from a different seed describes different artifacts;
        // ignore it wholesale.
        .filter(|m| m.seed == cfg.seed)
        .unwrap_or_default();
    let mut manifest = Manifest {
        seed: cfg.seed,
        threads: visionsim_core::par::threads(),
        entries: Vec::new(),
    };
    let inject = std::env::var("VISIONSIM_FAIL_ARTIFACT").ok();
    let mut outcomes = Vec::new();

    for spec in &specs {
        if let Some(only) = &cfg.only {
            if only != spec.name {
                continue;
            }
        }
        let path = cfg.dir.join(format!("{}.txt", spec.name));
        // Resume: trust the file only if the prior manifest (same seed)
        // has a checksum and the bytes on disk still match it.
        if cfg.resume {
            if let (Some(entry), Ok(bytes)) = (prior.entry(spec.name), fs::read(&path)) {
                if fnv1a64(&bytes) == entry.checksum {
                    manifest.entries.push(entry.clone());
                    let _ = write_atomic(&manifest_path, manifest.to_json().as_bytes());
                    if cfg.echo {
                        println!(
                            "[{}: resumed, checksum {:016x} verified]\n",
                            spec.name, entry.checksum
                        );
                    }
                    outcomes.push(ArtifactOutcome {
                        name: spec.name,
                        status: ArtifactStatus::Resumed,
                        secs: 0.0,
                    });
                    continue;
                }
            }
        }

        // Observability boundary: each artifact gets a clean registry and
        // ring, so its `metrics.json`/`trace.bin` describe that artifact
        // alone. No-ops (beyond zeroing) when the layer is disabled.
        metrics::reset();
        trace::reset();
        let start = Instant::now();
        let cell = Cell::new(spec.name, cfg.seed, ());
        let fail_this = inject.as_deref() == Some(spec.name);
        let span_label = format!("{}/cell", spec.name);
        let result = run_cell(&cell, |c: &Cell<()>| {
            let _span = visionsim_core::span!(span_label.as_str(), cfg.seed);
            if fail_this {
                panic!("injected failure via VISIONSIM_FAIL_ARTIFACT={}", c.label);
            }
            (spec.run)(cfg.seed)
        });
        let secs = start.elapsed().as_secs_f64();

        match result {
            Ok(text) => {
                let checksum = fnv1a64(text.as_bytes());
                if let Err(e) = write_atomic(&path, text.as_bytes()) {
                    eprintln!("[{}: write failed: {e}]", spec.name);
                }
                // Sidecar observability artifacts. The metrics snapshot
                // excludes wall-clock metrics, so it is byte-identical for
                // a given seed at any thread count; the trace is sorted by
                // (time, seq) at dump time instead.
                if metrics::enabled() {
                    let mpath = cfg.dir.join(format!("{}.metrics.json", spec.name));
                    if let Err(e) = write_atomic(&mpath, metrics::snapshot_json(false).as_bytes())
                    {
                        eprintln!("[{}: metrics write failed: {e}]", spec.name);
                    }
                }
                if trace::enabled() {
                    let events = trace::take();
                    let tpath = cfg.dir.join(format!("{}.trace.bin", spec.name));
                    if let Err(e) = write_atomic(&tpath, &trace::encode(&events)) {
                        eprintln!("[{}: trace write failed: {e}]", spec.name);
                    }
                }
                manifest.entries.push(ManifestEntry {
                    name: spec.name.to_string(),
                    checksum,
                    bytes: text.len() as u64,
                    secs,
                });
                let _ = write_atomic(&manifest_path, manifest.to_json().as_bytes());
                if cfg.echo {
                    print!("{text}");
                    println!("[{}: {secs:.2}s → {}]\n", spec.name, path.display());
                }
                outcomes.push(ArtifactOutcome {
                    name: spec.name,
                    status: ArtifactStatus::Written,
                    secs,
                });
            }
            Err(err) => {
                if cfg.echo {
                    println!("[{}: QUARANTINED — {err}]\n", spec.name);
                }
                outcomes.push(ArtifactOutcome {
                    name: spec.name,
                    status: ArtifactStatus::Failed(err),
                    secs,
                });
            }
        }
    }
    outcomes
}

/// Render the end-of-run summary table; returns true when all artifacts
/// are accounted for (written or resumed).
pub fn summarize(outcomes: &[ArtifactOutcome]) -> (String, bool) {
    let mut out = String::new();
    let failed: Vec<&ArtifactOutcome> = outcomes
        .iter()
        .filter(|o| matches!(o.status, ArtifactStatus::Failed(_)))
        .collect();
    let written = outcomes
        .iter()
        .filter(|o| matches!(o.status, ArtifactStatus::Written))
        .count();
    let resumed = outcomes
        .iter()
        .filter(|o| matches!(o.status, ArtifactStatus::Resumed))
        .count();
    let _ = writeln!(
        out,
        "artifacts: {written} written, {resumed} resumed, {} failed",
        failed.len()
    );
    if !failed.is_empty() {
        let _ = writeln!(out, "\nfailed artifacts:");
        let _ = writeln!(out, "  {:<18} {:<9} seed        detail", "name", "kind");
        for o in &failed {
            if let ArtifactStatus::Failed(e) = &o.status {
                let kind = match e.kind {
                    visionsim_core::par::CellFailure::Panicked => "panic",
                    visionsim_core::par::CellFailure::TimedOut => "timeout",
                };
                let _ = writeln!(
                    out,
                    "  {:<18} {:<9} {:<11} {}",
                    o.name,
                    kind,
                    e.seed,
                    e.payload.lines().next().unwrap_or("")
                );
            }
        }
        let _ = writeln!(
            out,
            "\nre-run with --resume to regenerate only the failed artifacts"
        );
    }
    (out, failed.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let m = Manifest {
            seed: 2024,
            threads: 4,
            entries: vec![
                ManifestEntry {
                    name: "table1".into(),
                    checksum: 0xDEAD_BEEF_0123_4567,
                    bytes: 431,
                    secs: 1.25,
                },
                ManifestEntry {
                    name: "figure6".into(),
                    checksum: 7,
                    bytes: 0,
                    secs: 0.0,
                },
            ],
        };
        let parsed = Manifest::from_json(&m.to_json()).expect("own json");
        assert_eq!(parsed, m);
    }

    #[test]
    fn malformed_manifest_is_none_not_panic() {
        for garbage in ["", "{", "{\"seed\": }", "plain text", "{\"artifacts\": [}]"] {
            let _ = Manifest::from_json(garbage);
        }
        assert!(Manifest::from_json("nonsense").is_none());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = std::env::temp_dir().join(format!("visionsim-harness-{}", std::process::id()));
        let path = dir.join("artifact.txt");
        write_atomic(&path, b"first").expect("write");
        write_atomic(&path, b"second").expect("overwrite");
        assert_eq!(fs::read(&path).expect("read back"), b"second");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let specs = registry();
        assert!(specs.len() >= 15);
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate artifact names");
    }
}
