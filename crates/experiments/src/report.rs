//! Text-table formatting shared by the experiment runners.

use visionsim_core::stats::BoxplotSummary;

/// Render a simple aligned text table.
pub fn render_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&line(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Format a boxplot summary in a compact figure-caption style.
pub fn boxplot_cell(b: &BoxplotSummary) -> String {
    format!(
        "p5={:.2} med={:.2} p95={:.2} mean={:.2}",
        b.p5, b.median, b.p95, b.mean
    )
}

/// Format mean ± std.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.2}±{std:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            "T",
            &["a".into(), "bbbb".into()],
            &[
                vec!["1".into(), "2".into()],
                vec!["333".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains("bbbb"));
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn pm_formats() {
        assert_eq!(pm(6.55, 0.11), "6.55±0.11");
    }
}
