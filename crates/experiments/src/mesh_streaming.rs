//! §4.3 "Direct 3D Data Streaming" — the mesh-streaming bandwidth floor.
//!
//! Five head meshes from ~70k to ~90k triangles (the paper pulls five from
//! Sketchfab; we generate five seeds), compressed per-frame with the
//! Draco-style codec and streamed at 90 FPS. The paper measures
//! 107.4±14.1 Mbps without texture — two orders of magnitude above the
//! 0.67 Mbps spatial persona — and concludes the persona is not
//! mesh-streamed.

use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::rng::SimRng;
use visionsim_core::stats::StreamingStats;
use visionsim_mesh::stream::MeshStreamer;
use visionsim_mesh::texture::TextureSpec;

/// The experiment outcome.
#[derive(Debug)]
pub struct MeshStreaming {
    /// Triangle counts of the five heads.
    pub triangle_counts: Vec<usize>,
    /// Per-head stream rate statistics, Mbps.
    pub rate_mbps: StreamingStats,
    /// Extra rate if the stream carried texture too (the paper's
    /// measurement is "even without texture"), Mbps.
    pub texture_overhead_mbps: f64,
    /// The spatial persona's measured rate for comparison, Mbps.
    pub persona_rate_mbps: f64,
}

/// Run with `frames` animated frames per head.
pub fn run(frames: usize, seed: u64) -> MeshStreaming {
    let targets = [70_000usize, 75_000, 78_030, 85_000, 90_000];
    let streamer = MeshStreamer::at_90fps();
    // Each head is an independent cell: generation goes through the
    // process-wide mesh cache (repeat runs share the built heads) and each
    // head animates on its own derived deformation stream.
    let per_head = par_map(targets.into_iter().enumerate().collect(), |(i, t)| {
        let mesh = visionsim_mesh::cache::head(t, derive_seed(seed, "mesh_streaming", i as u64));
        let mut rng =
            SimRng::seed_from_u64(derive_seed(seed, "mesh_streaming/deform", i as u64));
        let rate = streamer.experiment(std::slice::from_ref(&mesh), frames, &mut rng);
        (mesh.triangle_count(), mesh.vertex_count(), rate.mean())
    });
    let triangle_counts = per_head.iter().map(|&(t, _, _)| t).collect();
    let mut rate_mbps = StreamingStats::new();
    for &(_, _, rate) in &per_head {
        rate_mbps.push(rate);
    }
    let mean_vertices = per_head.iter().map(|&(_, v, _)| v).sum::<usize>() / per_head.len();
    let texture_overhead_mbps = TextureSpec::persona_default()
        .stream_overhead(mean_vertices, streamer.fps)
        .as_mbps_f64();
    MeshStreaming {
        triangle_counts,
        rate_mbps,
        texture_overhead_mbps,
        persona_rate_mbps: 0.67,
    }
}

impl MeshStreaming {
    /// The headline ratio: mesh streaming vs the observed persona rate.
    pub fn gap_factor(&self) -> f64 {
        self.rate_mbps.mean() / self.persona_rate_mbps
    }
}

impl std::fmt::Display for MeshStreaming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Mesh streaming (Draco-style, 90 FPS, {} heads of {:?} triangles):",
            self.triangle_counts.len(),
            self.triangle_counts
        )?;
        writeln!(
            f,
            "  rate = {:.1}±{:.1} Mbps — {:.0}x the {:.2} Mbps spatial persona\n  (+{:.0} Mbps more if textured — the paper's figure is texture-free)",
            self.rate_mbps.mean(),
            self.rate_mbps.std_dev(),
            self.gap_factor(),
            self.persona_rate_mbps,
            self.texture_overhead_mbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_streaming_is_orders_of_magnitude_above_persona() {
        let r = run(2, 31);
        assert_eq!(r.triangle_counts.len(), 5);
        // Heads land in the Sketchfab band.
        for &t in &r.triangle_counts {
            assert!((65_000..95_000).contains(&t), "{t}");
        }
        // Tens of Mbps at minimum; the paper's conclusion needs ≥ ~50x.
        assert!(r.rate_mbps.mean() > 30.0, "rate {}", r.rate_mbps.mean());
        assert!(r.gap_factor() > 50.0, "gap {}", r.gap_factor());
        // Texture would add tens of Mbps on top.
        assert!(r.texture_overhead_mbps > 90.0, "{}", r.texture_overhead_mbps);
    }

    #[test]
    fn spread_across_heads_is_moderate() {
        let r = run(2, 32);
        // Paper: 107.4±14.1 — σ/µ ≈ 13%.
        assert!(
            r.rate_mbps.std_dev() / r.rate_mbps.mean() < 0.35,
            "σ/µ = {}",
            r.rate_mbps.std_dev() / r.rate_mbps.mean()
        );
    }
}
