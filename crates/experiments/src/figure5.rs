//! Figure 5 — rendered triangles and GPU time under the visibility
//! optimizations.
//!
//! Four scenarios, exactly as §4.4 stages them:
//!
//! * **BL** — staring at the persona from one metre.
//! * **V** — head turned so the persona leaves the viewport.
//! * **F** — persona at the viewport corner while gazing at the opposite
//!   corner (peripheral vision).
//! * **D** — persona beyond the three-metre distance threshold.
//!
//! Plus the occlusion line-up (§4.4's negative result), reported
//! separately.

use crate::report::{pm, render_table};
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::rng::SimRng;
use visionsim_core::stats::StreamingStats;
use visionsim_mesh::geometry::Vec3;
use visionsim_render::camera::Viewer;
use visionsim_render::cost::CostModel;
use visionsim_render::visibility::{PersonaInstance, VisibilityFlags, VisibilityPipeline};

/// One Figure 5 condition.
#[derive(Debug)]
pub struct Figure5Row {
    /// Condition label (BL / V / F / D).
    pub label: &'static str,
    /// Rendered triangles (constant per condition).
    pub triangles: usize,
    /// GPU ms/frame statistics.
    pub gpu_ms: StreamingStats,
}

/// The figure, plus the occlusion check.
#[derive(Debug)]
pub struct Figure5 {
    /// BL / V / F / D rows.
    pub rows: Vec<Figure5Row>,
    /// Total triangles with four personas in a line, occlusion culling
    /// *off* (the measured system).
    pub lineup_triangles_no_occlusion: usize,
    /// The same with occlusion culling *on* (the paper's suggested
    /// optimization).
    pub lineup_triangles_with_occlusion: usize,
}

fn scenario(label: &'static str) -> (Viewer, PersonaInstance) {
    let center = Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
    match label {
        "BL" => (center, PersonaInstance::paper_ladder(Vec3::new(0.0, 0.0, -1.0))),
        "V" => (center, PersonaInstance::paper_ladder(Vec3::new(0.0, 0.0, 2.0))),
        "F" => (
            center.with_gaze(Vec3::new(0.7, 0.0, -1.0)),
            PersonaInstance::paper_ladder(Vec3::new(-0.8, 0.0, -1.0)),
        ),
        "D" => (center, PersonaInstance::paper_ladder(Vec3::new(0.0, 0.0, -4.0))),
        _ => unreachable!("unknown scenario"),
    }
}

/// Run the Figure 5 measurement over `frames` frames per condition.
pub fn run(frames: usize, seed: u64) -> Figure5 {
    let pipeline = VisibilityPipeline::new(VisibilityFlags::vision_pro());
    let model = CostModel::default();
    // Each condition is an independent cell with its own derived noise
    // stream (previously all four shared one sequential RNG).
    let rows = par_map(vec!["BL", "V", "F", "D"], |label| {
        let (viewer, persona) = scenario(label);
        let renders = pipeline.evaluate(&viewer, std::slice::from_ref(&persona));
        let triangles = renders[0].triangles;
        let mut rng = SimRng::seed_from_u64(derive_seed(seed, label, 0));
        let mut gpu_ms = StreamingStats::new();
        for _ in 0..frames {
            gpu_ms.push(model.frame(&renders, 930, &mut rng).gpu_ms);
        }
        Figure5Row {
            label,
            triangles,
            gpu_ms,
        }
    });

    // Occlusion line-up: viewer in front, four personas straight behind
    // one another.
    let viewer = Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
    let line: Vec<PersonaInstance> = (1..=4)
        .map(|i| PersonaInstance::paper_ladder(Vec3::new(0.0, 0.0, -(i as f32))))
        .collect();
    let measure = |occlusion: bool| {
        let mut flags = VisibilityFlags::vision_pro();
        flags.occlusion = occlusion;
        let renders = VisibilityPipeline::new(flags).evaluate(&viewer, &line);
        VisibilityPipeline::total_triangles(&renders)
    };
    Figure5 {
        rows,
        lineup_triangles_no_occlusion: measure(false),
        lineup_triangles_with_occlusion: measure(true),
    }
}

impl Figure5 {
    /// The row for a condition.
    pub fn row(&self, label: &str) -> &Figure5Row {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .expect("known condition")
    }
}

impl std::fmt::Display for Figure5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "cond".to_string(),
            "triangles".to_string(),
            "GPU ms/frame".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    r.triangles.to_string(),
                    pm(r.gpu_ms.mean(), r.gpu_ms.std_dev()),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                "Figure 5: visibility-aware optimizations (BL=baseline, V=viewport, F=foveated, D=distance)",
                &header,
                &rows
            )
        )?;
        writeln!(
            f,
            "Occlusion line-up: {} triangles without culling (measured behaviour), {} with culling (unadopted optimization)",
            self.lineup_triangles_no_occlusion, self.lineup_triangles_with_occlusion
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_counts_match_paper() {
        let fig = run(50, 5);
        assert_eq!(fig.row("BL").triangles, 78_030);
        assert_eq!(fig.row("V").triangles, 36);
        assert_eq!(fig.row("F").triangles, 21_036);
        assert_eq!(fig.row("D").triangles, 45_036);
    }

    #[test]
    fn gpu_times_match_paper_anchors() {
        let fig = run(200, 6);
        let near = |label: &str, target: f64, tol: f64| {
            let got = fig.row(label).gpu_ms.mean();
            assert!((got - target).abs() < tol, "{label}: {got} vs {target}");
        };
        near("BL", 6.55, 0.3);
        near("V", 2.68, 0.2);
        near("F", 3.97, 0.4);
        near("D", 3.91, 0.4);
    }

    #[test]
    fn viewport_reduction_is_about_59_percent() {
        let fig = run(200, 7);
        let bl = fig.row("BL").gpu_ms.mean();
        let v = fig.row("V").gpu_ms.mean();
        let reduction = (bl - v) / bl * 100.0;
        assert!((reduction - 59.0).abs() < 5.0, "{reduction}%");
    }

    #[test]
    fn occlusion_unadopted_but_would_help() {
        let fig = run(10, 8);
        // Measured behaviour: everything renders.
        assert!(fig.lineup_triangles_no_occlusion > 150_000);
        // The unadopted optimization would cut most of it.
        assert!(
            fig.lineup_triangles_with_occlusion * 2 < fig.lineup_triangles_no_occlusion,
            "{} vs {}",
            fig.lineup_triangles_with_occlusion,
            fig.lineup_triangles_no_occlusion
        );
    }

    #[test]
    fn display_includes_all_conditions() {
        let text = format!("{}", run(10, 9));
        for label in ["BL", "V", "F", "D", "Occlusion"] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}
