//! §4.3 "Streaming of 2D Video" — the display-latency experiment.
//!
//! `tc netem` injects 0–1000 ms of extra delay; after each abrupt viewport
//! change, the difference between when real-world objects and when the
//! remote persona are re-rendered is measured. Local reconstruction keeps
//! the difference under a frame (<16 ms) at every delay; a pre-rendered
//! video pipeline would track the RTT — so the flat curve is the evidence
//! that the persona is *not* sender-rendered video.

use crate::report::render_table;
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::rng::SimRng;
use visionsim_core::stats::StreamingStats;
use visionsim_core::time::SimDuration;
use visionsim_device::display::{DeliveryMode, DisplayModel};

/// One injected-delay point.
#[derive(Debug)]
pub struct DelayPoint {
    /// Injected one-way delay, ms.
    pub injected_ms: u64,
    /// Measured difference with local reconstruction (the real system).
    pub local_diff_ms: StreamingStats,
    /// Counterfactual: the difference if the persona were sender-rendered.
    pub remote_diff_ms: StreamingStats,
}

/// The experiment.
#[derive(Debug)]
pub struct DisplayLatency {
    /// One point per injected delay.
    pub points: Vec<DelayPoint>,
}

/// Run with `trials` viewport changes per delay point.
pub fn run(trials: usize, seed: u64) -> DisplayLatency {
    let model = DisplayModel::default();
    // Each injected-delay point is an independent cell with its own
    // derived measurement-noise stream (previously all points shared one
    // sequential RNG).
    let points = par_map(vec![0u64, 100, 250, 500, 1_000], |injected_ms| {
        {
            let mut rng =
                SimRng::seed_from_u64(derive_seed(seed, "display_latency", injected_ms));
            let delay = SimDuration::from_millis(injected_ms);
            let mut local_diff_ms = StreamingStats::new();
            let mut remote_diff_ms = StreamingStats::new();
            for _ in 0..trials {
                local_diff_ms.push(
                    model
                        .display_latency_difference(
                            DeliveryMode::LocalReconstruction,
                            delay,
                            &mut rng,
                        )
                        .as_millis_f64(),
                );
                remote_diff_ms.push(
                    model
                        .display_latency_difference(
                            DeliveryMode::RemotePreRendered,
                            delay,
                            &mut rng,
                        )
                        .as_millis_f64(),
                );
            }
            DelayPoint {
                injected_ms,
                local_diff_ms,
                remote_diff_ms,
            }
        }
    });
    DisplayLatency { points }
}

impl DisplayLatency {
    /// Worst local-mode difference across all delays (the paper: <16 ms).
    pub fn worst_local_ms(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.local_diff_ms.max())
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for DisplayLatency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "injected (ms)".to_string(),
            "diff, local recon (ms)".to_string(),
            "diff, remote render (ms)".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.injected_ms.to_string(),
                    format!("{:.1} (max {:.1})", p.local_diff_ms.mean(), p.local_diff_ms.max()),
                    format!("{:.0}", p.remote_diff_ms.mean()),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                "Display-latency difference vs injected network delay (§4.3)",
                &header,
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_reconstruction_is_flat_and_sub_16ms() {
        let r = run(100, 41);
        assert!(r.worst_local_ms() < 16.0, "worst {}", r.worst_local_ms());
        // Flat: the 1000 ms point is no worse than the 0 ms point by more
        // than measurement noise.
        let at0 = r.points[0].local_diff_ms.mean();
        let at1000 = r.points.last().unwrap().local_diff_ms.mean();
        assert!((at1000 - at0).abs() < 4.0, "{at0} vs {at1000}");
    }

    #[test]
    fn remote_rendering_counterfactual_tracks_delay() {
        let r = run(50, 42);
        let at100 = r.points[1].remote_diff_ms.mean();
        let at1000 = r.points.last().unwrap().remote_diff_ms.mean();
        assert!(at100 > 150.0, "{at100}");
        assert!(at1000 > 1_900.0, "{at1000}");
    }

    #[test]
    fn display_renders_every_delay_point() {
        let text = format!("{}", run(10, 43));
        for ms in ["0", "100", "250", "500", "1000"] {
            assert!(text.lines().any(|l| l.trim_start().starts_with(ms)));
        }
    }
}
