//! §4.3 — the rate-adaptation cliff.
//!
//! `tc tbf` constrains one user's uplink while a FaceTime spatial session
//! runs. The paper finds the persona becomes unavailable ("poor
//! connection") below ~700 kbps: the semantic stream has no quality
//! ladder, so the only possible behaviours are "full rate" and "gone".
//! For contrast the same sweep runs against adaptive 2D Webex, which
//! degrades quality smoothly instead.

use crate::report::render_table;
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::time::SimDuration;
use visionsim_core::units::DataRate;
use visionsim_device::device::DeviceKind;
use visionsim_geo::cities;
use visionsim_geo::sites::Provider;
use visionsim_vca::session::{SessionConfig, SessionRunner};

/// One uplink-limit point.
#[derive(Debug)]
pub struct CliffPoint {
    /// The shaped uplink rate, kbps.
    pub uplink_kbps: u64,
    /// Fraction of the session the spatial persona stayed available.
    pub spatial_availability: f64,
    /// Final 2D encoder quality under the same limit on Webex.
    pub webex_quality: f64,
}

/// The sweep.
#[derive(Debug)]
pub struct RateAdaptation {
    /// Points, ascending uplink.
    pub points: Vec<CliffPoint>,
}

/// Run the sweep with sessions of `secs` seconds.
pub fn run(secs: u64, seed: u64) -> RateAdaptation {
    let sf = cities::by_name("San Francisco, CA").expect("registry city");
    let nyc = cities::by_name("New York, NY").expect("registry city");
    // Each (uplink point, app) session is an independent cell: twelve
    // sessions fan out, merged back per point afterwards.
    let uplinks = [300u64, 500, 650, 800, 1_500, 3_000];
    let cells: Vec<(u64, bool)> = uplinks
        .into_iter()
        .flat_map(|u| [(u, true), (u, false)])
        .collect();
    let measures = par_map(cells, |(uplink_kbps, spatial)| {
        let limit = DataRate::from_kbps(uplink_kbps);
        let mut cfg = if spatial {
            // FaceTime spatial.
            SessionConfig::two_party(
                Provider::FaceTime,
                (DeviceKind::VisionPro, sf),
                (DeviceKind::VisionPro, nyc),
                derive_seed(seed, "rate_adaptation/spatial", uplink_kbps),
            )
        } else {
            // Webex 2D under the same limit.
            SessionConfig::two_party(
                Provider::Webex,
                (DeviceKind::VisionPro, sf),
                (DeviceKind::MacBook, nyc),
                derive_seed(seed, "rate_adaptation/webex", uplink_kbps),
            )
        };
        cfg.duration = SimDuration::from_secs(secs);
        cfg.uplink_limits = vec![(0, limit)];
        let out = SessionRunner::new(cfg).run();
        if spatial {
            // Participant 1 receives participant 0's constrained stream.
            out.availability_fraction(1)
        } else {
            out.final_quality[0]
        }
    });
    let points = uplinks
        .into_iter()
        .zip(measures.chunks(2))
        .map(|(uplink_kbps, pair)| CliffPoint {
            uplink_kbps,
            spatial_availability: pair[0],
            webex_quality: pair[1],
        })
        .collect();
    RateAdaptation { points }
}

impl RateAdaptation {
    /// The lowest uplink at which the spatial persona stayed mostly up.
    pub fn cliff_kbps(&self) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.spatial_availability > 0.8)
            .map(|p| p.uplink_kbps)
    }
}

impl std::fmt::Display for RateAdaptation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "uplink (kbps)".to_string(),
            "spatial persona up".to_string(),
            "webex quality".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.uplink_kbps.to_string(),
                    format!("{:.0}%", p.spatial_availability * 100.0),
                    format!("{:.2}", p.webex_quality),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                "Rate-adaptation cliff (§4.3): semantic all-or-nothing vs adaptive 2D",
                &header,
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cliff_sits_near_700_kbps() {
        let r = run(12, 61);
        // Below the stream rate: persona down.
        assert!(
            r.points[0].spatial_availability < 0.6,
            "300 kbps availability {}",
            r.points[0].spatial_availability
        );
        // Comfortably above: persona up.
        let top = r.points.last().unwrap();
        assert!(
            top.spatial_availability > 0.85,
            "3 Mbps availability {}",
            top.spatial_availability
        );
        // The transition happens in the 500–1500 kbps band around the
        // paper's ~700 kbps.
        let cliff = r.cliff_kbps().expect("persona recovers somewhere");
        assert!(
            (500..=1_500).contains(&cliff),
            "cliff at {cliff} kbps"
        );
    }

    #[test]
    fn webex_degrades_gracefully_instead() {
        let r = run(12, 62);
        // At a heavy constraint Webex is degraded but alive.
        assert!(r.points[0].webex_quality < 0.4);
        // Unconstrained-ish (3 Mbps < full 4.2 Mbps) it recovers most of
        // its quality.
        assert!(r.points.last().unwrap().webex_quality > 0.4);
        // Monotone-ish trend.
        assert!(r.points.last().unwrap().webex_quality > r.points[0].webex_quality);
    }
}
