//! Design-choice ablations.
//!
//! The DESIGN.md-listed ablations, each quantifying a choice the paper
//! observes (or proposes):
//!
//! * [`entropy_coder`] — rANS vs the LZ+range coder on mesh-codec
//!   residual streams (Draco chose rANS; does it matter here?).
//! * [`delta_coding`] — absolute vs inter-frame-delta semantic coding:
//!   how much bandwidth FaceTime leaves on the table for loss resilience.
//! * [`foveation_granularity`] — sweep of the foveal half-angle: rendered
//!   load vs how aggressively the periphery is degraded.
//! * [`placement`] — nearest-to-initiator vs geo-distributed serving on an
//!   intercontinental roster (the §4.1 proposed fix, quantified).
//! * [`semantic_culling`] — visibility-aware *delivery* (the §4.4 proposed
//!   fix): skip sending personas outside the receiver's viewport.

use visionsim_core::rng::SimRng;
use visionsim_geo::propagation::LatencyModel;
use visionsim_geo::sites::{Provider, SiteRegistry};
use visionsim_mesh::geometry::Vec3;
use visionsim_render::visibility::{LodClass, PersonaInstance, VisibilityFlags, VisibilityPipeline};
use visionsim_semantic::codec::{CodecMode, SemanticCodec, SemanticConfig};
use visionsim_sensor::capture::RgbdCapture;
use visionsim_vca::scene::{GazeDynamics, SeatingLayout};
use visionsim_vca::server::{AssignmentPolicy, ServerAssignment};

/// Entropy-coder comparison on a mesh-residual-like stream.
#[derive(Debug)]
pub struct EntropyCoderAblation {
    /// Input bytes.
    pub input_len: usize,
    /// rANS output size.
    pub rans_len: usize,
    /// LZ+range-coder output size.
    pub lzma_len: usize,
}

/// Compare the two entropy stages on `n` bytes of zigzag-varint residuals.
pub fn entropy_coder(n: usize, seed: u64) -> EntropyCoderAblation {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut stream = Vec::with_capacity(n);
    while stream.len() < n {
        // Mesh-quantization residuals: geometric-ish small magnitudes.
        let mag = rng.exponential(2.0) as i64;
        let v = if rng.chance(0.5) { mag } else { -mag };
        visionsim_compress::varint::write_i64(&mut stream, v);
    }
    stream.truncate(n);
    EntropyCoderAblation {
        input_len: stream.len(),
        rans_len: visionsim_compress::rans::encode(&stream).len(),
        lzma_len: visionsim_compress::compress(&stream).len(),
    }
}

/// Delta-vs-absolute semantic coding comparison.
#[derive(Debug)]
pub struct DeltaCodingAblation {
    /// Mean payload, absolute mode (what the measurements indicate
    /// FaceTime ships).
    pub absolute_bytes: f64,
    /// Mean payload, delta mode.
    pub delta_bytes: f64,
    /// Stream rates at 90 FPS, Mbps.
    pub absolute_mbps: f64,
    /// Delta-mode stream rate, Mbps.
    pub delta_mbps: f64,
}

/// Run over `frames` captured frames.
pub fn delta_coding(frames: usize, seed: u64) -> DeltaCodingAblation {
    let mut capture = RgbdCapture::default_session();
    let mut rng = SimRng::seed_from_u64(seed);
    let trace: Vec<_> = capture
        .capture_trace(frames, &mut rng)
        .iter()
        .map(|f| f.persona_subset())
        .collect();
    let mut abs = SemanticCodec::new(SemanticConfig::default());
    let mut delta = SemanticCodec::new(SemanticConfig {
        mode: CodecMode::Delta {
            keyframe_every: 90,
            step_m: 0.0005,
        },
        with_confidence: false,
        fps: 90.0,
    });
    let abs_sizes: Vec<usize> = trace.iter().map(|f| abs.encode(f).len()).collect();
    let delta_sizes: Vec<usize> = trace.iter().map(|f| delta.encode(f).len()).collect();
    let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
    DeltaCodingAblation {
        absolute_bytes: mean(&abs_sizes),
        delta_bytes: mean(&delta_sizes),
        absolute_mbps: abs.stream_rate(&abs_sizes).as_mbps_f64(),
        delta_mbps: delta.stream_rate(&delta_sizes).as_mbps_f64(),
    }
}

/// One foveal-angle point.
#[derive(Debug)]
pub struct FoveationPoint {
    /// Foveal half-angle, degrees.
    pub fovea_deg: f32,
    /// Mean rendered triangles across the session.
    pub mean_triangles: f64,
}

/// Sweep the foveal half-angle over a 4-persona gaze-dynamics run.
pub fn foveation_granularity(frames: usize, seed: u64) -> Vec<FoveationPoint> {
    let positions = SeatingLayout::Arc.positions(4, 1.4);
    let personas: Vec<PersonaInstance> = positions
        .iter()
        .map(|&p| PersonaInstance::paper_ladder(p))
        .collect();
    // Each angle is an independent cell; every cell replays the *same*
    // seed-derived gaze trace so the sweep stays a paired comparison.
    visionsim_core::par::par_map(vec![5.0f32, 10.0, 18.0, 30.0, 50.0], |fovea_deg| {
        let mut pipeline = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        pipeline.fovea_deg = fovea_deg;
        let mut gaze = GazeDynamics::new(positions.clone());
        let mut rng = SimRng::seed_from_u64(seed);
        let mut total = 0usize;
        for _ in 0..frames {
            let viewer = gaze.step(1.0 / 90.0, &mut rng);
            let renders = pipeline.evaluate(&viewer, &personas);
            total += VisibilityPipeline::total_triangles(&renders);
        }
        FoveationPoint {
            fovea_deg,
            mean_triangles: total as f64 / frames as f64,
        }
    })
}

/// Placement-policy comparison on an intercontinental roster.
#[derive(Debug)]
pub struct PlacementAblation {
    /// Worst client→server RTT under nearest-to-initiator, ms.
    pub initiator_worst_rtt_ms: f64,
    /// Worst client→attachment RTT under geo-distributed serving, ms.
    pub geo_worst_rtt_ms: f64,
}

/// Compare policies for a session initiated in the US East with
/// participants in SF, Frankfurt, and Tokyo.
pub fn placement() -> PlacementAblation {
    let latency = LatencyModel::default();
    let roster = [
        visionsim_geo::cities::by_name("New York, NY").expect("city"),
        visionsim_geo::cities::by_name("San Francisco, CA").expect("city"),
        visionsim_geo::cities::by_name("Frankfurt, DE").expect("city"),
        visionsim_geo::cities::by_name("Tokyo, JP").expect("city"),
    ];
    let locations: Vec<_> = roster.iter().map(|c| c.location).collect();
    let registry = SiteRegistry::geo_distributed(Provider::FaceTime);
    let worst = |policy| {
        let a = ServerAssignment::assign(policy, &registry, Provider::FaceTime, &locations);
        a.attachments
            .iter()
            .zip(&locations)
            .map(|(s, l)| latency.path(l, &s.location(), 2.0).base_rtt_ms)
            .fold(0.0, f64::max)
    };
    PlacementAblation {
        initiator_worst_rtt_ms: worst(AssignmentPolicy::NearestToInitiator),
        geo_worst_rtt_ms: worst(AssignmentPolicy::GeoDistributed),
    }
}

/// Visibility-aware delivery (the §4.4 proposal).
#[derive(Debug)]
pub struct SemanticCullingAblation {
    /// Fraction of sender frames that actually needed delivery (persona in
    /// some receiver's viewport).
    pub delivered_fraction: f64,
    /// Bandwidth saving vs always-send, percent.
    pub saving_percent: f64,
}

/// Estimate the saving for one sender observed by one receiver running
/// gaze dynamics over `frames` frames.
pub fn semantic_culling(frames: usize, seed: u64) -> SemanticCullingAblation {
    let positions = SeatingLayout::Arc.positions(4, 1.4);
    let personas: Vec<PersonaInstance> = positions
        .iter()
        .map(|&p| PersonaInstance::paper_ladder(p))
        .collect();
    let pipeline = VisibilityPipeline::new(VisibilityFlags::vision_pro());
    let mut gaze = GazeDynamics::new(positions.clone());
    let mut rng = SimRng::seed_from_u64(seed);
    // Track visibility of persona 0 (the "sender" under study). Note that
    // the viewer's head swings far enough during gaze shifts that arc-edge
    // personas regularly leave the viewport.
    let mut delivered = 0usize;
    for _ in 0..frames {
        let viewer = gaze.step(1.0 / 90.0, &mut rng);
        let renders = pipeline.evaluate(&viewer, &personas);
        if renders[0].class != LodClass::Proxy {
            delivered += 1;
        }
    }
    let delivered_fraction = delivered as f64 / frames as f64;
    SemanticCullingAblation {
        delivered_fraction,
        saving_percent: (1.0 - delivered_fraction) * 100.0,
    }
}

/// Pull `Vec3` into scope for doc readers; the ablations place personas in
/// viewer space.
#[allow(dead_code)]
fn _doc_anchor(_: Vec3) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_entropy_stages_compress_residuals() {
        let a = entropy_coder(50_000, 81);
        assert!(a.rans_len < a.input_len, "rANS expanded");
        assert!(a.lzma_len < a.input_len, "LZ+range expanded");
        // They should be in the same ballpark (within 3x either way).
        let ratio = a.rans_len as f64 / a.lzma_len as f64;
        assert!((0.33..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn delta_mode_saves_most_of_the_bandwidth() {
        let a = delta_coding(300, 82);
        assert!(
            a.delta_bytes * 2.0 < a.absolute_bytes,
            "delta {} vs absolute {}",
            a.delta_bytes,
            a.absolute_bytes
        );
        assert!(a.delta_mbps < a.absolute_mbps);
    }

    #[test]
    fn narrower_fovea_renders_fewer_triangles() {
        let points = foveation_granularity(600, 83);
        let narrow = points.first().expect("non-empty sweep");
        let wide = points.last().expect("non-empty sweep");
        assert!(narrow.fovea_deg < wide.fovea_deg);
        assert!(
            narrow.mean_triangles < wide.mean_triangles,
            "narrow {} !< wide {}",
            narrow.mean_triangles,
            wide.mean_triangles
        );
    }

    #[test]
    fn geo_distribution_slashes_worst_case_rtt() {
        let a = placement();
        // Intercontinental roster through a single US-East server: the
        // Tokyo participant eats >100 ms.
        assert!(a.initiator_worst_rtt_ms > 100.0, "{}", a.initiator_worst_rtt_ms);
        // With local attachment everyone is near a site.
        assert!(a.geo_worst_rtt_ms < 40.0, "{}", a.geo_worst_rtt_ms);
    }

    #[test]
    fn semantic_culling_saves_bandwidth() {
        let a = semantic_culling(2_000, 84);
        assert!(a.delivered_fraction > 0.2, "{}", a.delivered_fraction);
        assert!(a.delivered_fraction < 1.0, "nothing was ever culled");
        assert!(a.saving_percent > 0.0);
    }
}
