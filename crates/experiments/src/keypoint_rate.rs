//! §4.3 "Delivery of Semantic Information" — the keypoint-stream
//! bandwidth experiment.
//!
//! The paper's pipeline: a 2,000-frame RGB-D capture of head and hands,
//! dlib's 68 facial keypoints (keeping the 32 eye+mouth points) plus
//! OpenPose's 21 per hand → 74 keypoints/frame, LZMA-compressed, streamed
//! at 90 FPS → 0.64±0.02 Mbps, matching the observed 0.67 Mbps spatial
//! persona rate. Reproduced end-to-end with the synthetic capture and the
//! in-tree LZMA-style codec.
//!
//! This runner is a single stateful 2,000-frame trace (the codec carries
//! inter-frame state), so it is a degenerate one-cell "parallel" job: it
//! stays sequential and is already deterministic at any thread count.

use visionsim_core::rng::SimRng;
use visionsim_core::stats::StreamingStats;
use visionsim_semantic::codec::{SemanticCodec, SemanticConfig};
use visionsim_sensor::capture::RgbdCapture;
use visionsim_sensor::keypoints::PERSONA_KEYPOINTS;

/// The experiment outcome.
#[derive(Debug)]
pub struct KeypointRate {
    /// Frames captured.
    pub frames: usize,
    /// Keypoints per frame.
    pub keypoints: usize,
    /// Per-frame compressed payload bytes.
    pub payload_bytes: StreamingStats,
    /// Stream rate at 90 FPS, Mbps.
    pub rate_mbps: f64,
    /// The persona rate it should match.
    pub persona_rate_mbps: f64,
}

/// Run with a trace of `frames` frames (the paper uses 2,000).
pub fn run(frames: usize, seed: u64) -> KeypointRate {
    let mut capture = RgbdCapture::default_session();
    let mut rng = SimRng::seed_from_u64(seed);
    let mut codec = SemanticCodec::new(SemanticConfig::default());
    let mut payload_bytes = StreamingStats::new();
    let mut sizes = Vec::with_capacity(frames);
    for _ in 0..frames {
        let subset = capture.next_frame(&mut rng).persona_subset();
        let payload = codec.encode(&subset);
        payload_bytes.push(payload.len() as f64);
        sizes.push(payload.len());
    }
    let rate_mbps = codec.stream_rate(&sizes).as_mbps_f64();
    KeypointRate {
        frames,
        keypoints: PERSONA_KEYPOINTS,
        payload_bytes,
        rate_mbps,
        persona_rate_mbps: 0.67,
    }
}

impl std::fmt::Display for KeypointRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Keypoint stream ({} keypoints/frame over {} frames, LZMA-style, 90 FPS):",
            self.keypoints, self.frames
        )?;
        writeln!(
            f,
            "  payload {:.0}±{:.0} B/frame → {:.2} Mbps (persona observed at {:.2} Mbps)",
            self.payload_bytes.mean(),
            self.payload_bytes.std_dev(),
            self.rate_mbps,
            self.persona_rate_mbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_lands_in_the_persona_band() {
        let r = run(500, 51);
        // §4.3: 0.64±0.02 vs persona 0.67; our band is the same regime.
        assert!(
            (0.4..0.9).contains(&r.rate_mbps),
            "rate {} Mbps",
            r.rate_mbps
        );
        // Within ~40% of the observed persona rate — close enough to
        // support the "semantic communication" inference.
        assert!((r.rate_mbps / r.persona_rate_mbps - 1.0).abs() < 0.45);
    }

    #[test]
    fn payload_is_per_frame_stable() {
        let r = run(500, 52);
        // Frames code independently; sizes barely vary.
        assert!(
            r.payload_bytes.std_dev() < r.payload_bytes.mean() * 0.1,
            "σ {} vs µ {}",
            r.payload_bytes.std_dev(),
            r.payload_bytes.mean()
        );
    }

    #[test]
    fn accounting_is_74_keypoints() {
        assert_eq!(run(10, 53).keypoints, 74);
    }
}
