//! §4.1 protocol findings.
//!
//! * FaceTime speaks a QUIC-shaped protocol iff *every* participant is on
//!   Vision Pro; otherwise it reverts to RTP with the payload type of its
//!   traditional 2D calls.
//! * Zoom and FaceTime go P2P at two users (except both-AVP FaceTime);
//!   Webex and Teams always relay through a server.
//! * No provider's servers are anycast.
//!
//! All three are re-measured here with the passive classifier over AP
//! captures and the anycast prober.

use crate::report::render_table;
use visionsim_capture::analysis::CaptureAnalysis;
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::time::SimDuration;
use visionsim_device::device::DeviceKind;
use visionsim_geo::cities;
use visionsim_geo::sites::{Provider, SiteRegistry};
use visionsim_net::probe::AnycastProbe;
use visionsim_net::network::NodeId;
use visionsim_transport::classify::WireProtocol;
use visionsim_vca::profile::Topology;
use visionsim_vca::session::{SessionConfig, SessionRunner};

/// One device-mix observation.
#[derive(Debug)]
pub struct ProtocolRow {
    /// Application.
    pub provider: Provider,
    /// Second participant's device (first is always Vision Pro).
    pub peer_device: DeviceKind,
    /// Classifier verdict at U1's AP.
    pub protocol: WireProtocol,
    /// Topology used.
    pub topology: Topology,
}

/// The full §4.1 protocol matrix.
#[derive(Debug)]
pub struct Protocols {
    /// Observations.
    pub rows: Vec<ProtocolRow>,
    /// Whether any provider looked anycast (the paper: none).
    pub any_anycast: bool,
}

/// Run the matrix with sessions of `secs` seconds.
pub fn run(secs: u64, seed: u64) -> Protocols {
    let sf = cities::by_name("San Francisco, CA").expect("registry city");
    let nyc = cities::by_name("New York, NY").expect("registry city");
    // Each (provider, peer device) observation is an independent cell.
    let cells: Vec<(Provider, DeviceKind)> = Provider::ALL
        .into_iter()
        .flat_map(|p| {
            [DeviceKind::VisionPro, DeviceKind::MacBook]
                .into_iter()
                .map(move |d| (p, d))
        })
        .collect();
    let rows = par_map(cells, |(provider, peer_device)| {
        let mut cfg = SessionConfig::two_party(
            provider,
            (DeviceKind::VisionPro, sf),
            (peer_device, nyc),
            derive_seed(
                seed,
                &format!("protocols/{provider}"),
                peer_device as u64,
            ),
        );
        cfg.duration = SimDuration::from_secs(secs);
        let out = SessionRunner::new(cfg).run();
        let analysis = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
        ProtocolRow {
            provider,
            peer_device,
            protocol: analysis.dominant_protocol(),
            topology: out.topology,
        }
    });

    // Anycast check: each provider's nearest-site resolution from the
    // eight vantages is a pure function of the (unicast) fleet, so every
    // vantage in a region reaches the region's site — but critically, the
    // *same address answers from one site only*. We model resolution as
    // the provider's session-assignment server for a session initiated at
    // the vantage; anycast would show per-vantage backend changes for one
    // address. Provider fleets here are unicast: per-address identity is
    // stable, and the probe confirms it.
    let registry = SiteRegistry::us_fleet();
    let vantages: Vec<NodeId> = (0..cities::us_vantages().len()).map(NodeId).collect();
    let cities_v = cities::us_vantages();
    let probe = AnycastProbe;
    let any_anycast = Provider::ALL.iter().any(|&p| {
        // Each *site* has its own stable address; probing a given site's
        // address from every vantage must return that same site.
        registry.for_provider(p).iter().enumerate().any(|(si, _)| {
            probe.is_anycast(&vantages, |_v| {
                // Unicast: the backend identity is the site itself,
                // independent of the vantage.
                visionsim_geo::geodb::NetAddr(si as u32 + 1)
            }) && {
                let _ = &cities_v;
                true
            }
        })
    });
    Protocols { rows, any_anycast }
}

impl Protocols {
    /// The observation for (provider, peer device).
    pub fn row(&self, provider: Provider, peer: DeviceKind) -> &ProtocolRow {
        self.rows
            .iter()
            .find(|r| r.provider == provider && r.peer_device == peer)
            .expect("matrix covers all combinations")
    }
}

impl std::fmt::Display for Protocols {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "app".to_string(),
            "U2 device".to_string(),
            "protocol".to_string(),
            "topology".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.provider),
                    format!("{}", r.peer_device),
                    format!("{:?}", r.protocol),
                    format!("{:?}", r.topology),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table("Protocol findings (§4.1), two-party sessions", &header, &rows)
        )?;
        writeln!(f, "Anycast detected: {}", self.any_anycast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facetime_quic_iff_all_avp() {
        let p = run(6, 71);
        assert!(p
            .row(Provider::FaceTime, DeviceKind::VisionPro)
            .protocol
            .is_quic());
        let mixed = p.row(Provider::FaceTime, DeviceKind::MacBook);
        assert!(mixed.protocol.is_rtp());
        // PT consistent with traditional 2D calls (H.264 dynamic 96).
        assert_eq!(
            mixed.protocol,
            WireProtocol::Rtp(visionsim_transport::rtp::PayloadType::H264Video)
        );
    }

    #[test]
    fn other_apps_stay_rtp_even_all_avp() {
        let p = run(6, 72);
        for provider in [Provider::Zoom, Provider::Webex, Provider::Teams] {
            assert!(
                p.row(provider, DeviceKind::VisionPro).protocol.is_rtp(),
                "{provider}"
            );
        }
    }

    #[test]
    fn topology_matrix_matches_paper() {
        let p = run(6, 73);
        assert_eq!(
            p.row(Provider::FaceTime, DeviceKind::VisionPro).topology,
            Topology::Sfu
        );
        assert_eq!(
            p.row(Provider::FaceTime, DeviceKind::MacBook).topology,
            Topology::P2P
        );
        assert_eq!(
            p.row(Provider::Zoom, DeviceKind::MacBook).topology,
            Topology::P2P
        );
        assert_eq!(
            p.row(Provider::Webex, DeviceKind::MacBook).topology,
            Topology::Sfu
        );
        assert_eq!(
            p.row(Provider::Teams, DeviceKind::MacBook).topology,
            Topology::Sfu
        );
    }

    #[test]
    fn no_anycast_observed() {
        assert!(!run(6, 74).any_anycast);
    }
}
