//! Server-infrastructure discovery — the §4.1 methodology itself.
//!
//! The paper does not start from a known server list; it *discovers* the
//! fleets: "we set up clients in eight different locations across the
//! Western (two), Middle (three), and Eastern (three) US. For each
//! experiment, these clients randomly join a VCA in different orders",
//! then geolocates every server address seen in the captures.
//!
//! This experiment reproduces that procedure against the simulated
//! providers: many sessions with random initiators and rosters, peer
//! discovery from each AP capture, geolocation through the simulated
//! MaxMind, fleet reconstruction — and only then checks the §4.1 counts
//! (FaceTime 4, Zoom 2, Webex 3, Teams 1) and the assignment rule.

use crate::report::render_table;
use std::collections::{BTreeMap, BTreeSet};
use visionsim_capture::analysis::CaptureAnalysis;
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::rng::SimRng;
use visionsim_core::time::SimDuration;
use visionsim_device::device::DeviceKind;
use visionsim_geo::cities;
use visionsim_geo::regions::Region;
use visionsim_geo::sites::Provider;
use visionsim_vca::session::{ParticipantSpec, SessionConfig, SessionRunner};

/// What discovery found for one provider.
#[derive(Debug)]
pub struct DiscoveredFleet {
    /// Provider.
    pub provider: Provider,
    /// Distinct server *locations* seen (grouped by geolocated city, as
    /// the MaxMind-based methodology does — addresses within a site vary),
    /// with their regions.
    pub servers: BTreeMap<String, Region>,
    /// Sessions that went P2P (no server seen at all).
    pub p2p_sessions: usize,
    /// Sessions relayed through a server.
    pub sfu_sessions: usize,
    /// For every SFU session: did the server's region match the
    /// initiator's region (when the provider has a site there)?
    pub initiator_matches: usize,
    /// SFU sessions where a regional match was possible.
    pub initiator_checkable: usize,
}

/// The full discovery campaign.
#[derive(Debug)]
pub struct Discovery {
    /// Per-provider findings.
    pub fleets: Vec<DiscoveredFleet>,
}

/// Run `sessions_per_provider` randomized sessions per provider, each
/// `secs` seconds.
pub fn run(sessions_per_provider: usize, secs: u64, seed: u64) -> Discovery {
    let vantages = cities::us_vantages();
    // Every (provider, session) pair is an independent cell: roster
    // sampling and the session itself draw from a per-cell derived stream
    // (previously one shared RNG made every session depend on all prior
    // ones). The order-sensitive fleet accounting happens afterwards, in
    // submission order, so results are identical at any thread count.
    let cells: Vec<(Provider, usize)> = Provider::ALL
        .into_iter()
        .flat_map(|p| (0..sessions_per_provider).map(move |s| (p, s)))
        .collect();
    let sessions = par_map(cells, |(provider, s)| {
        let mut rng =
            SimRng::seed_from_u64(derive_seed(seed, &format!("discovery/{provider}"), s as u64));
        // Random roster: 2-4 participants at random vantages, random
        // device mix (at least one Vision Pro), random initiator =
        // participant 0.
        let size = 2 + rng.index(3);
        let mut order: Vec<usize> = (0..vantages.len()).collect();
        rng.shuffle(&mut order);
        let participants: Vec<ParticipantSpec> = order[..size]
            .iter()
            .enumerate()
            .map(|(i, &v)| ParticipantSpec {
                name: format!("U{}", i + 1),
                device: if i == 0 || rng.chance(0.5) {
                    DeviceKind::VisionPro
                } else {
                    DeviceKind::MacBook
                },
                city: vantages[v],
            })
            .collect();
        let initiator_region = participants[0].city.region();
        let mut cfg = SessionConfig::two_party(
            provider,
            (participants[0].device, participants[0].city),
            (participants[1].device, participants[1].city),
            rng.next_u64(),
        );
        cfg.participants = participants;
        cfg.duration = SimDuration::from_secs(secs);
        let out = SessionRunner::new(cfg).run();

        // Discover from U1's AP capture, as the paper does.
        let analysis = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
        let provider_name = format!("{provider}");
        let seen: Vec<(String, Region)> = analysis
            .peers(&out.geodb)
            .into_iter()
            .filter(|peer| peer.org.as_deref() == Some(provider_name.as_str()))
            .filter_map(|peer| {
                // A peer matching the provider org should always carry a
                // registered city/region, but discovery reads whatever the
                // geo registry holds — an unregistered entry is skipped,
                // not a panic in the middle of the sweep.
                Some((peer.city.clone()?, peer.region?))
            })
            .collect();
        (provider, initiator_region, seen)
    });

    let fleets = Provider::ALL
        .into_iter()
        .map(|provider| {
            let mut servers: BTreeMap<String, Region> = BTreeMap::new();
            let mut p2p_sessions = 0usize;
            let mut sfu_sessions = 0usize;
            let mut initiator_matches = 0usize;
            let mut initiator_checkable = 0usize;
            // Regions where this provider demonstrably has a site, learned
            // *during* discovery (used for the assignment-rule check).
            let mut known_regions: BTreeSet<Region> = BTreeSet::new();
            for (_, initiator_region, seen) in
                sessions.iter().filter(|(p, _, _)| *p == provider)
            {
                for (city, region) in seen {
                    servers.insert(city.clone(), *region);
                    known_regions.insert(*region);
                    if region == initiator_region {
                        initiator_matches += 1;
                    }
                    if known_regions.contains(initiator_region) {
                        initiator_checkable += 1;
                    }
                }
                if seen.is_empty() {
                    p2p_sessions += 1;
                } else {
                    sfu_sessions += 1;
                }
            }
            DiscoveredFleet {
                provider,
                servers,
                p2p_sessions,
                sfu_sessions,
                initiator_matches,
                initiator_checkable,
            }
        })
        .collect();
    Discovery { fleets }
}

impl Discovery {
    /// The fleet for a provider.
    pub fn fleet(&self, provider: Provider) -> &DiscoveredFleet {
        self.fleets
            .iter()
            .find(|f| f.provider == provider)
            .expect("all providers surveyed")
    }
}

impl std::fmt::Display for Discovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "provider".to_string(),
            "servers found".to_string(),
            "regions".to_string(),
            "P2P / SFU sessions".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .fleets
            .iter()
            .map(|fl| {
                let mut regions: Vec<&str> =
                    fl.servers.values().map(|r| r.abbrev()).collect();
                regions.sort_unstable();
                vec![
                    format!("{}", fl.provider),
                    fl.servers.len().to_string(),
                    regions.join(","),
                    format!("{} / {}", fl.p2p_sessions, fl.sfu_sessions),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                "Server discovery from randomized sessions (§4.1 methodology)",
                &header,
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_reconstructs_the_section41_fleet_counts() {
        let d = run(24, 4, 301);
        assert_eq!(d.fleet(Provider::FaceTime).servers.len(), 4, "FaceTime");
        assert_eq!(d.fleet(Provider::Zoom).servers.len(), 2, "Zoom");
        assert_eq!(d.fleet(Provider::Webex).servers.len(), 3, "Webex");
        assert_eq!(d.fleet(Provider::Teams).servers.len(), 1, "Teams");
    }

    #[test]
    fn discovered_regions_match_the_paper() {
        let d = run(24, 4, 302);
        let regions = |p: Provider| -> Vec<Region> {
            d.fleet(p).servers.values().copied().collect()
        };
        // FaceTime: W, M, M, E.
        let ft = regions(Provider::FaceTime);
        assert_eq!(ft.iter().filter(|r| **r == Region::UsMiddle).count(), 2);
        assert!(ft.contains(&Region::UsWest) && ft.contains(&Region::UsEast));
        // Teams: single Western site.
        assert_eq!(regions(Provider::Teams), vec![Region::UsWest]);
    }

    #[test]
    fn p2p_happens_only_for_two_party_non_spatial() {
        let d = run(24, 4, 303);
        // Webex/Teams never P2P.
        assert_eq!(d.fleet(Provider::Webex).p2p_sessions, 0);
        assert_eq!(d.fleet(Provider::Teams).p2p_sessions, 0);
        // Zoom has some P2P (two-party rosters occur with prob ~1/3).
        assert!(d.fleet(Provider::Zoom).p2p_sessions > 0);
    }

    #[test]
    fn assignment_follows_the_initiator_where_checkable() {
        let d = run(24, 4, 304);
        for p in [Provider::FaceTime, Provider::Webex] {
            let fl = d.fleet(p);
            assert!(
                fl.initiator_checkable > 0,
                "{p}: no checkable sessions"
            );
            assert_eq!(
                fl.initiator_matches, fl.initiator_checkable,
                "{p}: server did not follow the initiator"
            );
        }
    }
}
