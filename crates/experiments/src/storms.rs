//! Failover storms: correlated control-plane failures against the
//! resilience layer.
//!
//! The paper's Table 1 fleet is an infinite, always-healthy sink; a real
//! fleet has capacity envelopes, lagging health views, and correlated
//! outages. These scenarios drive a population of participants through
//! the control plane alone — [`SiteDirectory`] admission + health +
//! breakers, one [`Reconnector`] per stranded participant — with no
//! packet network underneath (the session engine exercises that path):
//!
//! * **regional-outage** — two sites die at once; everyone stranded
//!   re-homes onto the survivors and back-pressure stays bounded.
//! * **flapping-site** — one site toggles up/down faster than the probe
//!   view converges; reconnect attempts land on the zombie, feed the
//!   per-site breaker, and trip it open.
//! * **thundering-herd** — every site but one dies; the survivor's
//!   capacity refuses the stampede, backoff spreads the retries, and a
//!   late-recovering site absorbs the remainder.
//! * **rolling-maintenance** — sites drain one after another on a
//!   schedule; each wave migrates and nobody is abandoned.
//!
//! All scheduling is sim time with per-participant seeded jitter, so a
//! storm replays byte-identically at any thread count. Participants obey
//! the conservation identity every tick: attached + reconnecting +
//! abandoned == joined (checked through the sanitizer).

use crate::report::render_table;
use std::collections::BTreeMap;
use std::fmt;
use visionsim_core::sanitizer;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::trace::{self, TraceKind};
use visionsim_geo::cities::{self, City};
use visionsim_geo::coords::GeoPoint;
use visionsim_geo::sites::{Provider, SiteCapacity, SiteRegistry};
use visionsim_vca::server::{AdmissionVerdict, ReconnectPhase, Reconnector, ResilienceConfig, SiteDirectory, WaitMode};

/// Control-plane tick.
const TICK: SimDuration = SimDuration::from_millis(100);
/// Reconnect setup lag: site death → first attempt.
const RECONNECT_LAG: SimDuration = SimDuration::from_millis(500);
/// Per-site load curve sampling cadence.
const LOAD_SAMPLE_EVERY: SimDuration = SimDuration::from_secs(4);

/// A scheduled ground-truth flip of one site.
struct SiteEvent {
    at: SimTime,
    label: &'static str,
    up: bool,
}

/// One participant of the storm population.
struct Member {
    session: u64,
    loc: GeoPoint,
    /// The site currently hosting this member (None while disconnected).
    site: Option<&'static str>,
    /// Live reconnect machine while disconnected.
    rec: Option<Reconnector>,
    /// The member exhausted a rejoin budget at some point.
    abandoned: bool,
    /// Attempts across all episodes.
    attempts: u32,
    /// Attempts of the current episode (for the histogram on completion).
    episode_attempts: u32,
    /// Rejoin latencies of completed episodes, milliseconds.
    rejoins_ms: Vec<u64>,
}

/// One storm scenario's results.
#[derive(Debug)]
pub struct StormOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Population size.
    pub joined: usize,
    /// Reconnect attempts fired.
    pub attempts: u64,
    /// Admissions the fleet refused.
    pub rejects: u64,
    /// Circuit breakers tripped open.
    pub breaker_opens: u32,
    /// Members attached to a live site at scenario end.
    pub attached_end: usize,
    /// Members still mid-reconnect at scenario end.
    pub reconnecting_end: usize,
    /// Members that exhausted their rejoin budget.
    pub abandoned: usize,
    /// Median rejoin latency across completed episodes, ms.
    pub rejoin_p50_ms: u64,
    /// p99 rejoin latency, ms.
    pub rejoin_p99_ms: u64,
    /// Degraded wait time summed across members, seconds, by ladder tier
    /// (frozen-spatial, 2D, audio-only).
    pub degraded_s: [f64; 3],
    /// Histogram of attempts-per-completed-episode: buckets 1, 2, 3, 4–7,
    /// 8+.
    pub attempt_hist: [u32; 5],
    /// Per-site attached counts sampled on a fixed cadence:
    /// (second, per-label load in registry order).
    pub site_load: Vec<(u64, Vec<(&'static str, u32)>)>,
    /// The conservation identity held at every check.
    pub conservation_ok: bool,
}

impl StormOutcome {
    fn hist_bucket(attempts: u32) -> usize {
        match attempts {
            0 | 1 => 0,
            2 => 1,
            3 => 2,
            4..=7 => 3,
            _ => 4,
        }
    }
}

fn percentile(sorted_ms: &[u64], p: f64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    sorted_ms[((sorted_ms.len() - 1) as f64 * p).round() as usize]
}

/// Drive one scenario: `population` members across the geo-distributed
/// fleet, `events` flipping ground truth on a schedule.
fn run_scenario(
    name: &'static str,
    secs: u64,
    population: usize,
    capacity: Option<SiteCapacity>,
    mut events: Vec<SiteEvent>,
    seed: u64,
) -> StormOutcome {
    let provider = Provider::FaceTime;
    let registry = SiteRegistry::geo_distributed(provider);
    let rc = ResilienceConfig {
        capacity,
        ..ResilienceConfig::default()
    };
    let mut dir = SiteDirectory::new(&registry, provider, rc);
    let vantages: Vec<City> = cities::us_vantages();

    // Population: cycled across the US vantage cities, conference groups
    // of three, everyone initially admitted to their nearest site.
    let mut members: Vec<Member> = (0..population)
        .map(|i| {
            let loc = vantages[i % vantages.len()].location;
            Member {
                session: (i / 3) as u64,
                loc,
                site: None,
                rec: None,
                abandoned: false,
                attempts: 0,
                episode_attempts: 0,
                rejoins_ms: Vec::new(),
            }
        })
        .collect();
    for (i, m) in members.iter_mut().enumerate() {
        let site = registry
            .nearest(provider, &m.loc)
            .expect("fleet is non-empty");
        if dir.try_admit(site.label, m.session, i as u64, SimTime::ZERO)
            == AdmissionVerdict::Admitted
        {
            m.site = Some(site.label);
        }
    }

    events.sort_by_key(|e| e.at);
    let mut next_event = 0usize;
    // Ground truth the *members* know: the labels of sites they watched
    // die under them this episode. The probe view lags on purpose.
    let mut next_probe = SimTime::ZERO;
    let mut next_load_sample = SimTime::ZERO;
    let mut attempts_total = 0u64;
    let mut degraded_s = [0.0f64; 3];
    let mut attempt_hist = [0u32; 5];
    let mut rejoins_ms: Vec<u64> = Vec::new();
    let mut site_load: Vec<(u64, Vec<(&'static str, u32)>)> = Vec::new();
    let mut conservation_ok = true;
    let ticks_per_sec = SimDuration::from_secs(1).as_nanos() / TICK.as_nanos();

    let total_ticks = SimDuration::from_secs(secs).as_nanos() / TICK.as_nanos();
    for t in 0..total_ticks {
        let now = SimTime::from_nanos(t * TICK.as_nanos());

        // Ground-truth flips.
        while next_event < events.len() && events[next_event].at <= now {
            let ev = &events[next_event];
            dir.set_site_up(ev.label, ev.up);
            if !ev.up {
                // Everyone hosted there is stranded and starts
                // reconnecting after the setup lag.
                for (i, m) in members.iter_mut().enumerate() {
                    if m.site != Some(ev.label) {
                        continue;
                    }
                    dir.detach(ev.label, m.session);
                    m.site = None;
                    m.episode_attempts = 0;
                    m.rec = Some(Reconnector::new(
                        i as u64,
                        now,
                        now + RECONNECT_LAG,
                        dir.config().backoff,
                        dir.config().rejoin_budget,
                        seed,
                    ));
                }
            }
            next_event += 1;
        }

        // Probe round on its cadence: the observed health view advances.
        if now >= next_probe {
            dir.probe_tick(now);
            next_probe = now + dir.config().probe_every;
        }

        // Fire every due reconnect attempt. Members do not know ground
        // truth — candidate() works off the probe-lagged health view and
        // the breakers, so attempts can land on a zombie site (feeding
        // its breaker), exactly like real clients behind a stale
        // directory.
        for (i, m) in members.iter_mut().enumerate() {
            let Some(rec) = m.rec.as_mut() else { continue };
            if !rec.due(now) {
                continue;
            }
            let attempt_no = rec.take_attempt();
            m.attempts += 1;
            m.episode_attempts += 1;
            attempts_total += 1;
            let candidate = dir.candidate(&m.loc, &[], now);
            let verdict_code = match candidate {
                None => {
                    rec.on_rejected(now);
                    2
                }
                Some(site) => {
                    match dir.try_admit(site.label, m.session, i as u64, now) {
                        AdmissionVerdict::Admitted => {
                            rec.on_admitted(now);
                            m.site = Some(site.label);
                            let ms = rec
                                .rejoin_latency()
                                .map(|d| d.as_nanos() / 1_000_000)
                                .unwrap_or(0);
                            rejoins_ms.push(ms);
                            m.rejoins_ms.push(ms);
                            attempt_hist
                                [StormOutcome::hist_bucket(m.episode_attempts)] += 1;
                            0
                        }
                        AdmissionVerdict::Rejected(_) => {
                            rec.on_rejected(now);
                            1
                        }
                    }
                }
            };
            if trace::enabled() {
                trace::record(
                    TraceKind::ReconnectAttempt,
                    now.as_nanos(),
                    trace::intern(candidate.map(|s| s.label).unwrap_or("")),
                    i as u64,
                    attempt_no as u64,
                    verdict_code,
                );
            }
            if verdict_code == 0 {
                m.rec = None;
            }
            if m
                .rec
                .as_ref()
                .is_some_and(|r| matches!(r.phase(), ReconnectPhase::Abandoned { .. }))
            {
                m.abandoned = true;
                m.rec = None;
            }
        }

        // Degraded-seconds by wait tier, and the conservation identity.
        let mut attached = 0usize;
        let mut reconnecting = 0usize;
        let mut abandoned = 0usize;
        for m in &members {
            if m.site.is_some() {
                attached += 1;
            } else if let Some(rec) = &m.rec {
                reconnecting += 1;
                let tier = match rec.wait_mode(now) {
                    WaitMode::FrozenSpatial => 0,
                    WaitMode::TwoD => 1,
                    WaitMode::AudioOnly => 2,
                };
                degraded_s[tier] += TICK.as_secs_f64();
            } else if m.abandoned {
                abandoned += 1;
            }
        }
        if t % ticks_per_sec == 0 {
            let holds = attached + reconnecting + abandoned == population;
            conservation_ok &= holds;
            sanitizer::check(holds, "storms/participant_conservation", || {
                format!(
                    "{name}: attached {attached} + reconnecting {reconnecting} \
                     + abandoned {abandoned} != joined {population}"
                )
            });
        }

        // Per-site load curve.
        if now >= next_load_sample {
            let mut by_site: BTreeMap<&'static str, u32> = BTreeMap::new();
            for label in dir.labels() {
                by_site.insert(label, dir.attached(label));
            }
            site_load.push((
                now.as_nanos() / 1_000_000_000,
                dir.labels()
                    .into_iter()
                    .map(|l| (l, by_site[l]))
                    .collect(),
            ));
            next_load_sample = now + LOAD_SAMPLE_EVERY;
        }
    }

    rejoins_ms.sort_unstable();
    StormOutcome {
        name,
        joined: population,
        attempts: attempts_total,
        rejects: dir.total_rejects(),
        breaker_opens: dir.total_breaker_opens(),
        attached_end: members.iter().filter(|m| m.site.is_some()).count(),
        reconnecting_end: members.iter().filter(|m| m.rec.is_some()).count(),
        abandoned: members.iter().filter(|m| m.abandoned).count(),
        rejoin_p50_ms: percentile(&rejoins_ms, 0.50),
        rejoin_p99_ms: percentile(&rejoins_ms, 0.99),
        degraded_s,
        attempt_hist,
        site_load,
        conservation_ok,
    }
}

/// Population shared by every scenario.
const POPULATION: usize = 60;

/// A regional outage takes the two western sites down at once; both
/// recover late.
pub fn regional_outage(secs: u64, seed: u64) -> StormOutcome {
    run_scenario(
        "regional-outage",
        secs,
        POPULATION,
        None,
        vec![
            SiteEvent { at: SimTime::from_secs(2), label: "W", up: false },
            SiteEvent { at: SimTime::from_secs(2), label: "M", up: false },
            SiteEvent { at: SimTime::from_secs(20), label: "W", up: true },
            SiteEvent { at: SimTime::from_secs(20), label: "M", up: true },
        ],
        seed,
    )
}

/// One site flaps faster than the probe view converges: reconnects land
/// on the zombie and trip its breaker.
pub fn flapping_site(secs: u64, seed: u64) -> StormOutcome {
    let mut events = Vec::new();
    // Down/up every 750 ms between 2.2 s and 14 s, ending down. The
    // 200 ms offset off the 500 ms probe grid is the point: a flap lands
    // mid-probe-window, so reconnect attempts fire while the observed
    // health still says usable — and hit the zombie.
    let mut at_ms = 2_200u64;
    let mut up = false;
    while at_ms < 14_000 {
        events.push(SiteEvent {
            at: SimTime::from_millis(at_ms),
            label: "W",
            up,
        });
        up = !up;
        at_ms += 750;
    }
    run_scenario("flapping-site", secs, POPULATION, None, events, seed)
}

/// Every site but the eastern survivor dies at once; its capacity refuses
/// the stampede until a second site recovers and absorbs the remainder.
pub fn thundering_herd(secs: u64, seed: u64) -> StormOutcome {
    run_scenario(
        "thundering-herd",
        secs,
        POPULATION,
        // The survivor starts ~80% full, so the soft limit must sit above
        // that — the herd bounces off the hard participant envelope, and
        // backoff spreads the retries until the second site returns.
        Some(SiteCapacity {
            max_sessions: 64,
            max_participants: 36,
            degraded_admit_frac: 0.95,
        }),
        vec![
            SiteEvent { at: SimTime::from_secs(2), label: "W", up: false },
            SiteEvent { at: SimTime::from_secs(2), label: "M", up: false },
            SiteEvent { at: SimTime::from_secs(2), label: "EU", up: false },
            SiteEvent { at: SimTime::from_secs(2), label: "AS", up: false },
            SiteEvent { at: SimTime::from_secs(12), label: "M", up: true },
        ],
        seed,
    )
}

/// Rolling maintenance: each US site drains for six seconds in turn.
pub fn rolling_maintenance(secs: u64, seed: u64) -> StormOutcome {
    run_scenario(
        "rolling-maintenance",
        secs,
        POPULATION,
        None,
        vec![
            SiteEvent { at: SimTime::from_secs(2), label: "W", up: false },
            SiteEvent { at: SimTime::from_secs(8), label: "W", up: true },
            SiteEvent { at: SimTime::from_secs(8), label: "M", up: false },
            SiteEvent { at: SimTime::from_secs(14), label: "M", up: true },
            SiteEvent { at: SimTime::from_secs(14), label: "E", up: false },
            SiteEvent { at: SimTime::from_secs(20), label: "E", up: true },
        ],
        seed,
    )
}

/// The full storm artifact: all four correlated-failure scenarios.
#[derive(Debug)]
pub struct Storms {
    /// Scenario outcomes in run order.
    pub scenarios: Vec<StormOutcome>,
}

/// Run every scenario with `secs`-second runs.
pub fn run(secs: u64, seed: u64) -> Storms {
    use visionsim_core::par::{derive_seed, par_map};
    let cells: Vec<u64> = (0..4).collect();
    let scenarios = par_map(cells, |i| {
        let s = derive_seed(seed, "storms", i);
        match i {
            0 => regional_outage(secs, s),
            1 => flapping_site(secs, s),
            2 => thundering_herd(secs, s),
            _ => rolling_maintenance(secs, s),
        }
    });
    Storms { scenarios }
}

impl fmt::Display for Storms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let header = vec![
            "scenario".to_string(),
            "joined".to_string(),
            "attempts".to_string(),
            "rejects".to_string(),
            "breaker opens".to_string(),
            "attached/reconnecting/abandoned".to_string(),
            "rejoin p50/p99 (ms)".to_string(),
            "degraded s (frozen/2D/audio)".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .scenarios
            .iter()
            .map(|sc| {
                vec![
                    sc.name.to_string(),
                    sc.joined.to_string(),
                    sc.attempts.to_string(),
                    sc.rejects.to_string(),
                    sc.breaker_opens.to_string(),
                    format!("{}/{}/{}", sc.attached_end, sc.reconnecting_end, sc.abandoned),
                    format!("{}/{}", sc.rejoin_p50_ms, sc.rejoin_p99_ms),
                    format!(
                        "{:.1}/{:.1}/{:.1}",
                        sc.degraded_s[0], sc.degraded_s[1], sc.degraded_s[2]
                    ),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                "Failover storms: admission, breakers, reconnect convergence",
                &header,
                &rows
            )
        )?;
        for sc in &self.scenarios {
            write!(f, "{}: attempts/episode [1|2|3|4-7|8+] =", sc.name)?;
            for b in sc.attempt_hist {
                write!(f, " {b}")?;
            }
            writeln!(
                f,
                "; conservation {}",
                if sc.conservation_ok { "ok" } else { "VIOLATED" }
            )?;
            for (sec, loads) in &sc.site_load {
                write!(f, "  t={sec:>2}s load:")?;
                for (label, n) in loads {
                    write!(f, " {label}={n}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regional_outage_rehomes_everyone() {
        let out = regional_outage(32, 3);
        assert_eq!(out.abandoned, 0, "{out:?}");
        assert_eq!(out.attached_end, out.joined, "{out:?}");
        assert!(out.conservation_ok);
        assert!(out.attempts >= 1);
        // The survivors actually carried the displaced load mid-outage.
        let mid = out
            .site_load
            .iter()
            .find(|(sec, _)| *sec >= 8)
            .expect("load samples");
        let east: u32 = mid.1.iter().filter(|(l, _)| *l == "E").map(|(_, n)| n).sum();
        assert!(east > 25, "east load {east} at t={}s", mid.0);
    }

    #[test]
    fn flapping_site_trips_the_breaker() {
        let out = flapping_site(32, 5);
        assert!(out.breaker_opens >= 1, "{out:?}");
        assert!(out.conservation_ok);
        // The flapping site's victims end up somewhere live.
        assert_eq!(out.attached_end + out.abandoned, out.joined, "{out:?}");
    }

    #[test]
    fn thundering_herd_sheds_load_then_converges() {
        let out = thundering_herd(32, 7);
        // The survivor's admission control must actually refuse joins…
        assert!(out.rejects > 0, "{out:?}");
        // …and backoff + the late recovery still reattach every
        // non-abandoned participant.
        assert_eq!(out.reconnecting_end, 0, "{out:?}");
        assert_eq!(out.attached_end + out.abandoned, out.joined, "{out:?}");
        assert!(out.conservation_ok);
        // Retries spread: some episode needed more than one attempt.
        let multi: u32 = out.attempt_hist[1..].iter().sum();
        assert!(multi > 0, "{out:?}");
    }

    #[test]
    fn rolling_maintenance_never_abandons() {
        let out = rolling_maintenance(32, 9);
        assert_eq!(out.abandoned, 0, "{out:?}");
        assert_eq!(out.attached_end, out.joined, "{out:?}");
        assert!(out.conservation_ok);
    }

    #[test]
    fn storms_deterministic_across_thread_counts() {
        use visionsim_core::par::set_threads;
        let _guard = visionsim_core::par::override_guard();
        let mut digests = Vec::new();
        for threads in [1usize, 4, 8] {
            set_threads(Some(threads));
            digests.push(format!("{}", run(12, 11)));
        }
        set_threads(None);
        assert_eq!(digests[0], digests[1], "1 vs 4 threads diverged");
        assert_eq!(digests[0], digests[2], "1 vs 8 threads diverged");
    }
}
