//! Closed-loop congestion control under contention.
//!
//! The paper's measurements are all of a *lone* call on a clean network;
//! every real call shares an access link with something. These scenarios
//! put the delay+loss controller ([`CongestionController`]) behind a
//! finite-queue token-bucket bottleneck ([`ShaperConfig`]) and measure the
//! closed loop end-to-end:
//!
//! * **competing-flows** — two identical VCA flows share one AP uplink;
//!   AIMD must converge them to fair shares (Jain ≥ 0.9).
//! * **cross-traffic** — an unresponsive bulk flow takes a fixed slice;
//!   the VCA flow must survive on the remainder instead of collapsing.
//! * **wifi-contention** — the bottleneck duty-cycles between a fast and
//!   a slow rate (a neighbour's transfer); the controller tracks it.
//! * **handover** — mid-call the link falls off a rate cliff and gains
//!   one-way delay (walking out of WiFi range onto cellular). Every
//!   packet the shaper drops is visible to the receiver: the seq-gap
//!   ledger ties out exactly against the link's drop counters.
//!
//! Everything is flow-level on the raw [`Network`]: packets carry
//! `(flow, seq, send-time)`, the receiver measures loss from gaps and
//! queue delay from the one-way-delay excess over its observed minimum,
//! and reports ride back through the same network on a deterministic
//! 200 ms cadence — an RTCP loop without the session machinery.

use crate::report::render_table;
use std::fmt;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::DataRate;
use visionsim_geo::coords::GeoPoint;
use visionsim_net::link::LinkConfig;
use visionsim_net::network::{Network, NodeId};
use visionsim_net::packet::PortPair;
use visionsim_net::shaper::ShaperConfig;
use visionsim_vca::adaptation::{CongestionController, CongestionSignals};

/// Pacing/feedback tick.
const TICK: SimDuration = SimDuration::from_millis(10);
/// Feedback cadence: one report per flow every 200 ms.
const REPORT_EVERY_TICKS: u64 = 20;
/// Media packet payload size.
const PKT_BYTES: usize = 1_200;
/// Flow-header length inside each payload: flow u32, seq u64, sent-ns u64.
const HDR: usize = 20;
/// Senders go quiet this long before the scenario end so the bottleneck
/// queue drains and the loss ledger can be read at quiescence.
const DRAIN: SimDuration = SimDuration::from_secs(2);

/// Encode a media payload of `len` bytes.
fn media_payload(flow: u32, seq: u64, now: SimTime, len: usize) -> Vec<u8> {
    let mut p = vec![0xD5u8; len.max(HDR)];
    p[0..4].copy_from_slice(&flow.to_be_bytes());
    p[4..12].copy_from_slice(&seq.to_be_bytes());
    p[12..20].copy_from_slice(&now.as_nanos().to_be_bytes());
    p
}

/// Decode a media payload header.
fn parse_media(p: &[u8]) -> Option<(u32, u64, SimTime)> {
    if p.len() < HDR {
        return None;
    }
    Some((
        u32::from_be_bytes(p[0..4].try_into().ok()?),
        u64::from_be_bytes(p[4..12].try_into().ok()?),
        SimTime::from_nanos(u64::from_be_bytes(p[12..20].try_into().ok()?)),
    ))
}

/// Encode a feedback payload: flow, loss per-mille, arrival kbps, queue
/// delay µs.
fn feedback_payload(flow: u32, loss_pm: u32, arrival_kbps: u32, queue_us: u64) -> Vec<u8> {
    let mut p = vec![0u8; 20];
    p[0..4].copy_from_slice(&flow.to_be_bytes());
    p[4..8].copy_from_slice(&loss_pm.to_be_bytes());
    p[8..12].copy_from_slice(&arrival_kbps.to_be_bytes());
    p[12..20].copy_from_slice(&queue_us.to_be_bytes());
    p
}

fn parse_feedback(p: &[u8]) -> Option<(u32, u32, u32, u64)> {
    if p.len() < 20 {
        return None;
    }
    Some((
        u32::from_be_bytes(p[0..4].try_into().ok()?),
        u32::from_be_bytes(p[4..8].try_into().ok()?),
        u32::from_be_bytes(p[8..12].try_into().ok()?),
        u64::from_be_bytes(p[12..20].try_into().ok()?),
    ))
}

/// One sending endpoint: either a controller-driven VCA flow or an
/// unresponsive constant-rate bulk flow.
struct FlowSender {
    node: NodeId,
    flow: u32,
    controller: Option<CongestionController>,
    /// Fixed rate for unresponsive flows.
    fixed: DataRate,
    /// Byte budget carried across ticks.
    budget: f64,
    seq: u64,
}

impl FlowSender {
    fn rate(&self) -> DataRate {
        match &self.controller {
            Some(c) => c.target(),
            None => self.fixed,
        }
    }
}

/// Receiver-side per-flow accounting.
#[derive(Default)]
struct FlowRx {
    highest_seq: Option<u64>,
    received: u64,
    /// Gap-inferred losses (the RTCP signal; tail losses excluded).
    gap_lost: u64,
    interval_bytes: u64,
    interval_recv: u64,
    interval_gap_lost: u64,
    /// Lifetime minimum one-way delay: the propagation floor.
    min_owd_us: u64,
    /// Most recent queue-delay estimate (owd − min owd), µs.
    queue_us: u64,
    /// All queue-delay samples, µs.
    queue_samples: Vec<u64>,
    /// Delivered kbps, sampled once per second.
    per_sec_kbps: Vec<f64>,
    sec_bytes: u64,
}

impl FlowRx {
    fn on_packet(&mut self, seq: u64, sent: SimTime, at: SimTime, wire: u64) {
        if let Some(h) = self.highest_seq {
            if seq > h + 1 {
                let gap = seq - h - 1;
                self.gap_lost += gap;
                self.interval_gap_lost += gap;
            }
        }
        self.highest_seq = Some(self.highest_seq.unwrap_or(0).max(seq));
        self.received += 1;
        self.interval_recv += 1;
        self.interval_bytes += wire;
        self.sec_bytes += wire;
        let owd_us = at.since(sent).as_nanos() / 1_000;
        if self.min_owd_us == 0 || owd_us < self.min_owd_us {
            self.min_owd_us = owd_us;
        }
        self.queue_us = owd_us.saturating_sub(self.min_owd_us);
        self.queue_samples.push(self.queue_us);
    }

    fn take_report(&mut self, interval_s: f64) -> (u32, u32, u64) {
        let total = self.interval_recv + self.interval_gap_lost;
        let loss_pm = (self.interval_gap_lost * 1_000)
            .checked_div(total)
            .unwrap_or(0) as u32;
        let kbps = (self.interval_bytes as f64 * 8.0 / 1_000.0 / interval_s).round() as u32;
        self.interval_bytes = 0;
        self.interval_recv = 0;
        self.interval_gap_lost = 0;
        (loss_pm, kbps, self.queue_us)
    }
}

/// A scheduled mid-scenario change to the bottleneck.
enum LinkEvent {
    /// Retune the shaper rate (the queue schedule is preserved).
    Rate(DataRate),
    /// Add one-way delay at the bottleneck egress.
    ExtraDelay(SimDuration),
}

/// Per-flow results.
#[derive(Debug)]
pub struct FlowOutcome {
    /// Flow label ("vca-a", "bulk", …).
    pub label: String,
    /// Whether the flow ran a controller (bulk traffic does not).
    pub responsive: bool,
    /// Mean delivered rate over the final 10 s of the active window, kbps.
    pub final_kbps: f64,
    /// Delivered kbps, one sample per second.
    pub per_sec_kbps: Vec<f64>,
    /// Packets sent / received / lost (sent − received, after drain).
    pub sent: u64,
    /// Packets received.
    pub received: u64,
    /// Packets lost end-to-end.
    pub lost: u64,
    /// Queue-delay percentiles at the receiver, µs.
    pub queue_p50_us: u64,
    /// 95th percentile queue delay, µs.
    pub queue_p95_us: u64,
    /// 99th percentile queue delay, µs.
    pub queue_p99_us: u64,
    /// Controller state transitions over the run.
    pub ctrl_switches: u32,
}

/// One scenario's results.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Bottleneck capacity at scenario start, kbps.
    pub capacity_kbps: u64,
    /// Per-flow results.
    pub flows: Vec<FlowOutcome>,
    /// Jain fairness index across responsive flows' final-10 s rates.
    pub jain_final: f64,
    /// Packets dropped at the bottleneck queue (shaper ledger).
    pub bottleneck_queue_drops: u64,
    /// Sum of end-to-end packet losses across all flows.
    pub receiver_lost: u64,
}

/// Jain's fairness index over per-flow allocations.
pub fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Flow specification for [`run_scenario`].
struct FlowSpec {
    label: &'static str,
    /// `Some(initial)` for a controller-driven flow, `None` for bulk.
    initial: Option<DataRate>,
    /// Fixed rate for bulk flows; also the controller ceiling for
    /// responsive flows.
    rate: DataRate,
}

/// Drive one scenario: `flows` share a single shaped bottleneck of
/// `capacity`, with `events` applied to it mid-run.
fn run_scenario(
    name: &'static str,
    capacity: DataRate,
    secs: u64,
    flows: Vec<FlowSpec>,
    mut events: Vec<(SimTime, LinkEvent)>,
    seed: u64,
) -> ScenarioOutcome {
    let mut net = Network::new(seed);
    // Sources fan into an AP; the AP's single uplink to the sink is the
    // shaped bottleneck every flow shares.
    let ap = net.add_node("ap", "access", GeoPoint::new(37.77, -122.42));
    let sink = net.add_node("sink", "core", GeoPoint::new(37.78, -122.40));
    let (bottleneck, _) = net.add_duplex(ap, sink, LinkConfig::core(SimDuration::from_millis(10)));
    net.set_shaper(bottleneck, Some(ShaperConfig::new(capacity)));

    let mut senders: Vec<FlowSender> = flows
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let node = net.add_node(
                &format!("src-{}", spec.label),
                "client",
                GeoPoint::new(37.76, -122.44 + i as f64 * 0.01),
            );
            net.add_duplex(node, ap, LinkConfig::wifi_access());
            FlowSender {
                node,
                flow: i as u32,
                controller: spec.initial.map(|init| {
                    CongestionController::new(
                        i as u64,
                        spec.rate,
                        DataRate::from_kbps(150),
                        DataRate::from_kbps(50),
                    )
                    .with_initial(init)
                }),
                fixed: spec.rate,
                budget: 0.0,
                seq: 0,
            }
        })
        .collect();
    let mut rx: Vec<FlowRx> = flows.iter().map(|_| FlowRx::default()).collect();

    events.sort_by_key(|(at, _)| *at);
    let mut next_event = 0usize;
    let active = SimDuration::from_secs(secs).saturating_sub(DRAIN);
    let total_ticks = SimDuration::from_secs(secs).as_nanos() / TICK.as_nanos();
    let active_ticks = active.as_nanos() / TICK.as_nanos();
    let ticks_per_sec = SimDuration::from_secs(1).as_nanos() / TICK.as_nanos();
    let report_s = (REPORT_EVERY_TICKS * TICK.as_nanos()) as f64 / 1e9;

    for t in 0..total_ticks {
        let now = SimTime::from_nanos(t * TICK.as_nanos());

        while next_event < events.len() && events[next_event].0 <= now {
            match &events[next_event].1 {
                LinkEvent::Rate(rate) => {
                    if let Some(sh) = net.shaper_mut(bottleneck) {
                        sh.set_rate(*rate);
                    }
                }
                LinkEvent::ExtraDelay(d) => net.netem_mut(bottleneck).extra_delay = *d,
            }
            next_event += 1;
        }

        // Senders pace packets out of the controller (or fixed) budget.
        if t < active_ticks {
            for s in senders.iter_mut() {
                let refill = s.rate().as_bps() as f64 / 8.0 * TICK.as_secs_f64();
                s.budget = (s.budget + refill).min(refill * 10.0);
                while s.budget >= PKT_BYTES as f64 {
                    s.budget -= PKT_BYTES as f64;
                    let payload = media_payload(s.flow, s.seq, now, PKT_BYTES);
                    s.seq += 1;
                    net.send(
                        s.node,
                        sink,
                        PortPair::new(6_000 + s.flow as u16, 6_500),
                        payload,
                    );
                }
            }
        }

        net.run_until(now + TICK);

        // Receiver: account arrivals, one bucket per flow.
        for d in net.poll_delivered(sink) {
            if let Some((flow, seq, sent)) = parse_media(&d.packet.payload) {
                if let Some(r) = rx.get_mut(flow as usize) {
                    r.on_packet(seq, sent, d.at, d.packet.wire_size().as_bytes());
                }
            }
        }
        // Sender side: absorb feedback, step the controllers.
        for s in senders.iter_mut() {
            for d in net.poll_delivered(s.node) {
                let Some((flow, loss_pm, kbps, queue_us)) = parse_feedback(&d.packet.payload)
                else {
                    continue;
                };
                if flow != s.flow {
                    continue;
                }
                if let Some(ctrl) = &mut s.controller {
                    ctrl.on_report(
                        now,
                        &CongestionSignals {
                            loss: loss_pm as f64 / 1_000.0,
                            arrival: DataRate::from_kbps(kbps as u64),
                            queue_delay_us: queue_us,
                        },
                    );
                }
            }
        }

        // Feedback cadence: reports ride the reverse path.
        if t > 0 && t % REPORT_EVERY_TICKS == 0 {
            for (i, r) in rx.iter_mut().enumerate() {
                if senders[i].controller.is_none() {
                    continue; // bulk traffic ignores feedback
                }
                let (loss_pm, kbps, queue_us) = r.take_report(report_s);
                net.send(
                    sink,
                    senders[i].node,
                    PortPair::new(6_500, 6_000 + i as u16),
                    feedback_payload(i as u32, loss_pm, kbps, queue_us),
                );
            }
        }

        // Per-second throughput samples (active window only).
        if t > 0 && t % ticks_per_sec == 0 && t <= active_ticks {
            for r in rx.iter_mut() {
                r.per_sec_kbps.push(r.sec_bytes as f64 * 8.0 / 1_000.0);
                r.sec_bytes = 0;
            }
        }
    }
    // Drain whatever is still queued or in flight, then read the ledgers.
    let end = SimTime::from_secs(secs + 30);
    net.run_until(end);
    for d in net.poll_delivered(sink) {
        if let Some((flow, seq, sent)) = parse_media(&d.packet.payload) {
            if let Some(r) = rx.get_mut(flow as usize) {
                r.on_packet(seq, sent, d.at, d.packet.wire_size().as_bytes());
            }
        }
    }

    let stats = net.link_stats(bottleneck);
    let flows_out: Vec<FlowOutcome> = flows
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let r = &mut rx[i];
            let n = r.per_sec_kbps.len();
            let tail = &r.per_sec_kbps[n.saturating_sub(10)..];
            let final_kbps = if tail.is_empty() {
                0.0
            } else {
                tail.iter().sum::<f64>() / tail.len() as f64
            };
            let mut q = std::mem::take(&mut r.queue_samples);
            q.sort_unstable();
            let pct = |p: f64| -> u64 {
                if q.is_empty() {
                    0
                } else {
                    q[((q.len() - 1) as f64 * p).round() as usize]
                }
            };
            FlowOutcome {
                label: spec.label.to_string(),
                responsive: senders[i].controller.is_some(),
                final_kbps,
                per_sec_kbps: std::mem::take(&mut r.per_sec_kbps),
                sent: senders[i].seq,
                received: r.received,
                lost: senders[i].seq - r.received,
                queue_p50_us: pct(0.50),
                queue_p95_us: pct(0.95),
                queue_p99_us: pct(0.99),
                ctrl_switches: senders[i]
                    .controller
                    .as_ref()
                    .map_or(0, |c| c.state_changes()),
            }
        })
        .collect();
    let shares: Vec<f64> = flows_out
        .iter()
        .filter(|f| f.responsive)
        .map(|f| f.final_kbps)
        .collect();
    ScenarioOutcome {
        name,
        capacity_kbps: (capacity.as_bps() / 1_000),
        jain_final: jain(&shares),
        bottleneck_queue_drops: stats.queue_drops,
        receiver_lost: flows_out.iter().map(|f| f.lost).sum(),
        flows: flows_out,
    }
}

/// Two identical VCA flows share one uplink, starting far apart.
pub fn competing_flows(secs: u64, seed: u64) -> ScenarioOutcome {
    let cap = DataRate::from_mbps(4);
    run_scenario(
        "competing-flows",
        cap,
        secs,
        vec![
            FlowSpec {
                label: "vca-a",
                initial: Some(DataRate::from_kbps(2_500)),
                rate: cap,
            },
            FlowSpec {
                label: "vca-b",
                initial: Some(DataRate::from_kbps(500)),
                rate: cap,
            },
        ],
        vec![],
        seed,
    )
}

/// One VCA flow against an unresponsive 2.5 Mbps bulk transfer.
pub fn cross_traffic(secs: u64, seed: u64) -> ScenarioOutcome {
    let cap = DataRate::from_mbps(4);
    run_scenario(
        "cross-traffic",
        cap,
        secs,
        vec![
            FlowSpec {
                label: "vca",
                initial: Some(DataRate::from_kbps(3_000)),
                rate: cap,
            },
            FlowSpec {
                label: "bulk",
                initial: None,
                rate: DataRate::from_kbps(2_500),
            },
        ],
        vec![],
        seed,
    )
}

/// The bottleneck duty-cycles 4 ↔ 1.5 Mbps every 2 s (a contending
/// neighbour on the same AP).
pub fn wifi_contention(secs: u64, seed: u64) -> ScenarioOutcome {
    let fast = DataRate::from_mbps(4);
    let slow = DataRate::from_kbps(1_500);
    let events = (1..secs / 2)
        .map(|k| {
            let rate = if k % 2 == 1 { slow } else { fast };
            (SimTime::from_secs(k * 2), LinkEvent::Rate(rate))
        })
        .collect();
    run_scenario(
        "wifi-contention",
        fast,
        secs,
        vec![FlowSpec {
            label: "vca",
            initial: Some(DataRate::from_kbps(2_000)),
            rate: fast,
        }],
        events,
        seed,
    )
}

/// Mid-call handover: at 10 s the link falls from 4 Mbps to 1 Mbps and
/// gains 30 ms of one-way delay.
pub fn handover(secs: u64, seed: u64) -> ScenarioOutcome {
    let cap = DataRate::from_mbps(4);
    run_scenario(
        "handover",
        cap,
        secs,
        vec![FlowSpec {
            label: "vca",
            initial: Some(DataRate::from_kbps(3_000)),
            rate: cap,
        }],
        vec![
            (SimTime::from_secs(10), LinkEvent::Rate(DataRate::from_mbps(1))),
            (
                SimTime::from_secs(10),
                LinkEvent::ExtraDelay(SimDuration::from_millis(30)),
            ),
        ],
        seed,
    )
}

/// The full convergence/fairness artifact: all four scenarios.
#[derive(Debug)]
pub struct Congestion {
    /// Scenario outcomes in run order.
    pub scenarios: Vec<ScenarioOutcome>,
}

/// Run every scenario with `secs`-second runs.
pub fn run(secs: u64, seed: u64) -> Congestion {
    use visionsim_core::par::{derive_seed, par_map};
    let cells: Vec<u64> = (0..4).collect();
    let scenarios = par_map(cells, |i| {
        let s = derive_seed(seed, "congestion", i);
        match i {
            0 => competing_flows(secs, s),
            1 => cross_traffic(secs, s),
            2 => wifi_contention(secs, s),
            _ => handover(secs, s),
        }
    });
    Congestion { scenarios }
}

impl fmt::Display for Congestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let header = vec![
            "scenario".to_string(),
            "flow".to_string(),
            "final rate (kbps)".to_string(),
            "share".to_string(),
            "lost/sent".to_string(),
            "queue p50/p95/p99 (ms)".to_string(),
            "ctrl switches".to_string(),
        ];
        let mut rows = Vec::new();
        for sc in &self.scenarios {
            for fl in &sc.flows {
                rows.push(vec![
                    sc.name.to_string(),
                    fl.label.clone(),
                    format!("{:.0}", fl.final_kbps),
                    format!("{:.0}%", fl.final_kbps / sc.capacity_kbps as f64 * 100.0),
                    format!("{}/{}", fl.lost, fl.sent),
                    format!(
                        "{:.1}/{:.1}/{:.1}",
                        fl.queue_p50_us as f64 / 1_000.0,
                        fl.queue_p95_us as f64 / 1_000.0,
                        fl.queue_p99_us as f64 / 1_000.0
                    ),
                    fl.ctrl_switches.to_string(),
                ]);
            }
        }
        writeln!(
            f,
            "{}",
            render_table(
                "Closed-loop congestion control: convergence, fairness, survival",
                &header,
                &rows
            )
        )?;
        for sc in &self.scenarios {
            writeln!(
                f,
                "{}: Jain = {:.3}, bottleneck queue drops = {}, receiver-observed losses = {}",
                sc.name, sc.jain_final, sc.bottleneck_queue_drops, sc.receiver_lost
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn competing_flows_converge_to_fair_shares() {
        let out = competing_flows(40, 7);
        let cap = out.capacity_kbps as f64;
        for fl in &out.flows {
            let share = fl.final_kbps / cap;
            assert!(
                (0.40..=0.60).contains(&share),
                "{} ended at {:.0} kbps ({:.0}% of {cap})",
                fl.label,
                fl.final_kbps,
                share * 100.0
            );
        }
        assert!(out.jain_final >= 0.9, "Jain {:.3}", out.jain_final);
        // Convergence must arrive within 30 simulated seconds: both flows
        // already inside the band at the 25–30 s samples.
        for fl in &out.flows {
            let window = &fl.per_sec_kbps[25..30.min(fl.per_sec_kbps.len())];
            let mean = window.iter().sum::<f64>() / window.len() as f64;
            let share = mean / cap;
            assert!(
                (0.35..=0.65).contains(&share),
                "{} at 25–30 s: {:.0} kbps",
                fl.label,
                mean
            );
        }
    }

    #[test]
    fn competing_flows_deterministic_across_thread_counts() {
        use visionsim_core::par::set_threads;
        let _guard = visionsim_core::par::override_guard();
        let mut digests = Vec::new();
        for threads in [1usize, 4, 8] {
            set_threads(Some(threads));
            digests.push(format!("{}", run(12, 11)));
        }
        set_threads(None);
        assert_eq!(digests[0], digests[1], "1 vs 4 threads diverged");
        assert_eq!(digests[0], digests[2], "1 vs 8 threads diverged");
    }

    #[test]
    fn cross_traffic_leaves_the_vca_flow_alive() {
        let out = cross_traffic(30, 9);
        let vca = &out.flows[0];
        let bulk = &out.flows[1];
        // Bulk takes its fixed 2.5 Mbps slice of the 4 Mbps link; the
        // controller must settle into most of the remainder, not collapse
        // to its floor and not starve.
        assert!(
            (800.0..=2_200.0).contains(&vca.final_kbps),
            "vca settled at {:.0} kbps",
            vca.final_kbps
        );
        assert!(
            bulk.final_kbps > 2_000.0,
            "bulk got {:.0} kbps",
            bulk.final_kbps
        );
    }

    #[test]
    fn handover_drops_are_fully_visible_to_the_receiver() {
        let out = handover(30, 3);
        // The cliff must actually shed packets…
        assert!(out.bottleneck_queue_drops > 0, "no drops at the cliff");
        // …and each one is observable end-to-end: the only loss source is
        // the bottleneck queue, so the sent−received ledger ties out
        // exactly against the shaper's drop counter.
        assert_eq!(
            out.receiver_lost, out.bottleneck_queue_drops,
            "receiver saw {} losses, shaper recorded {} drops",
            out.receiver_lost, out.bottleneck_queue_drops
        );
    }

    #[test]
    fn wifi_contention_tracks_the_duty_cycle() {
        let out = wifi_contention(30, 5);
        let vca = &out.flows[0];
        // The controller stays live across the cycling and ends between
        // the slow and fast rates.
        assert!(
            (1_000.0..=4_000.0).contains(&vca.final_kbps),
            "ended at {:.0} kbps",
            vca.final_kbps
        );
        // It genuinely responded to the contention (anti-vacuity).
        assert!(vca.ctrl_switches > 0, "controller never reacted");
        // Queueing stayed bounded: the finite queue kept p99 under the
        // 500 ms a bufferbloated link would show.
        assert!(
            vca.queue_p99_us < 500_000,
            "queue p99 {} µs",
            vca.queue_p99_us
        );
    }

    #[test]
    fn jain_index_basics() {
        assert!((jain(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
    }
}
