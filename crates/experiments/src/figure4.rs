//! Figure 4 — two-party uplink throughput per application.
//!
//! Five configurations, as in the paper: FaceTime with spatial persona
//! (both users on Vision Pro), FaceTime with 2D persona (one user on a
//! MacBook), Zoom, Webex, and Teams. Sessions run on the simulated
//! network; throughput is measured at the sender's AP tap, reduced to the
//! paper's boxplot presentation (5/25/50/75/95th percentiles + mean).

use crate::report::{boxplot_cell, render_table};
use visionsim_capture::analysis::CaptureAnalysis;
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::stats::{BoxplotSummary, Percentiles};
use visionsim_core::time::SimDuration;
use visionsim_device::device::DeviceKind;
use visionsim_geo::cities;
use visionsim_geo::sites::Provider;
use visionsim_vca::session::{SessionConfig, SessionRunner};

/// One bar of Figure 4.
#[derive(Debug)]
pub struct Figure4Row {
    /// The paper's x-axis label (F, F*, Z, W, T).
    pub label: &'static str,
    /// Human-readable configuration.
    pub description: &'static str,
    /// Uplink throughput boxplot, Mbps.
    pub uplink: BoxplotSummary,
}

/// The figure.
#[derive(Debug)]
pub struct Figure4 {
    /// Rows in the paper's order.
    pub rows: Vec<Figure4Row>,
}

/// Run the Figure 4 measurement: `repeats` sessions of `secs` seconds per
/// configuration.
pub fn run(repeats: usize, secs: u64, seed: u64) -> Figure4 {
    let sf = cities::by_name("San Francisco, CA").expect("registry city");
    let nyc = cities::by_name("New York, NY").expect("registry city");
    let configs: [(&'static str, &'static str, Provider, DeviceKind); 5] = [
        (
            "F",
            "FaceTime spatial persona (AVP↔AVP)",
            Provider::FaceTime,
            DeviceKind::VisionPro,
        ),
        (
            "F*",
            "FaceTime 2D persona (AVP↔MacBook)",
            Provider::FaceTime,
            DeviceKind::MacBook,
        ),
        ("Z", "Zoom (AVP↔MacBook)", Provider::Zoom, DeviceKind::MacBook),
        ("W", "Webex (AVP↔MacBook)", Provider::Webex, DeviceKind::MacBook),
        ("T", "Teams (AVP↔MacBook)", Provider::Teams, DeviceKind::MacBook),
    ];
    // Every (configuration, repeat) pair is an independent session: fan
    // them all out as cells, each on its own derived seed stream.
    let cells: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|c| (0..repeats).map(move |r| (c, r)))
        .collect();
    let per_cell = par_map(cells, |(c, r)| {
        let (label, _, provider, peer_device) = configs[c];
        let mut cfg = SessionConfig::two_party(
            provider,
            (DeviceKind::VisionPro, sf),
            (peer_device, nyc),
            derive_seed(seed, label, r as u64),
        );
        cfg.duration = SimDuration::from_secs(secs);
        let out = SessionRunner::new(cfg).run();
        let analysis = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
        // Raw per-second throughput samples: pooling these across repeats
        // gives percentiles of the real sample distribution, not of a
        // quartile skeleton.
        (c, analysis.uplink_per_second_mbps())
    });
    let mut pooled: Vec<Percentiles> = configs.iter().map(|_| Percentiles::new()).collect();
    for (c, samples) in per_cell {
        for v in samples {
            if v.is_finite() {
                pooled[c].push(v);
            }
        }
    }
    let rows = configs
        .into_iter()
        .zip(pooled)
        .map(|((label, description, _, _), mut samples)| Figure4Row {
            label,
            description,
            uplink: samples.boxplot(),
        })
        .collect();
    Figure4 { rows }
}

impl Figure4 {
    /// Mean uplink of the row with `label`.
    pub fn mean_of(&self, label: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.uplink.mean)
            .unwrap_or(f64::NAN)
    }
}

impl std::fmt::Display for Figure4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "cfg".to_string(),
            "uplink (Mbps)".to_string(),
            "configuration".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    boxplot_cell(&r.uplink),
                    r.description.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table("Figure 4: two-party uplink throughput", &header, &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_figure4() {
        let fig = run(1, 10, 11);
        let f = fig.mean_of("F");
        let f2d = fig.mean_of("F*");
        let z = fig.mean_of("Z");
        let w = fig.mean_of("W");
        let t = fig.mean_of("T");
        // Spatial persona is the *lowest* despite being 3D — the headline.
        assert!(f < f2d && f < z && f < w && f < t, "spatial not lowest: F={f}");
        // Paper bands: F ≈ 0.67, F* ≈ 2, Z ≈ 1.5, W > 4.
        assert!((0.3..1.1).contains(&f), "F = {f}");
        assert!((1.2..3.0).contains(&f2d), "F* = {f2d}");
        assert!((0.9..2.2).contains(&z), "Z = {z}");
        assert!(w > 4.0, "W = {w}");
        assert!(z < t && t < w, "T = {t} not between Z and W");
    }

    #[test]
    fn display_has_five_rows() {
        let fig = run(1, 6, 1);
        let text = format!("{fig}");
        assert_eq!(text.lines().count(), 8); // title + header + rule + 5
        assert!(text.contains("F*"));
    }
}
