//! Motion-to-photon latency vs server placement.
//!
//! §4.1's discussion: single initiator-near serving "could become more
//! pronounced when users are distributed across continents... the one-way
//! propagation delay between Europe and Asia may already exceed 100 ms,
//! the threshold for maintaining a high QoE in immersive telepresence",
//! and proposes geo-distributed serving over a private backbone.
//!
//! This experiment runs *full sessions* (not just RTT math) on
//! increasingly spread rosters under both policies and reports end-to-end
//! semantic-frame latency (capture → reassembled at the receiver) against
//! the 100 ms threshold. It also cross-checks with the passive QoE
//! estimator: the receiver-side packet timing still shows ~90 frames/s
//! (delay shifts frames, it does not thin them).

use crate::report::render_table;
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::stats::Percentiles;
use visionsim_core::time::SimDuration;
use visionsim_geo::cities::{self, City};
use visionsim_vca::server::AssignmentPolicy;
use visionsim_vca::session::{SessionConfig, SessionRunner};

/// The QoE threshold the paper cites, ms.
pub const QOE_THRESHOLD_MS: f64 = 100.0;

/// One roster × policy measurement.
#[derive(Debug)]
pub struct M2pRow {
    /// Roster label.
    pub roster: &'static str,
    /// Placement policy.
    pub policy: AssignmentPolicy,
    /// Worst participant's end-to-end latency percentiles, ms.
    pub worst_e2e_ms: Percentiles,
    /// Passive frame-rate estimate at the worst participant's AP.
    pub passive_fps: f64,
}

/// The experiment.
#[derive(Debug)]
pub struct MotionToPhoton {
    /// All rows.
    pub rows: Vec<M2pRow>,
}

fn rosters() -> Vec<(&'static str, Vec<City>)> {
    let c = |n: &str| cities::by_name(n).expect("registry city");
    vec![
        (
            "US coast-to-coast",
            vec![c("New York, NY"), c("San Francisco, CA")],
        ),
        (
            "intercontinental",
            vec![c("New York, NY"), c("Frankfurt, DE"), c("Tokyo, JP")],
        ),
    ]
}

/// Run sessions of `secs` seconds per roster × policy.
pub fn run(secs: u64, seed: u64) -> MotionToPhoton {
    // Every roster × policy session is an independent cell. Both policies
    // of one roster share a derived conversation seed so the comparison is
    // paired (same traffic, different placement).
    let cells: Vec<((&'static str, Vec<City>), AssignmentPolicy)> = rosters()
        .into_iter()
        .flat_map(|r| {
            [
                AssignmentPolicy::NearestToInitiator,
                AssignmentPolicy::GeoDistributed,
            ]
            .into_iter()
            .map(move |p| (r.clone(), p))
        })
        .collect();
    let rows = par_map(cells, |((roster, cities), policy)| {
        {
            let mut cfg = SessionConfig::facetime_avp(
                cities.len(),
                &cities,
                derive_seed(seed, roster, 0),
            );
            cfg.duration = SimDuration::from_secs(secs);
            cfg.policy = policy;
            let out = SessionRunner::new(cfg).run();
            // Worst participant by median E2E latency.
            let worst = (0..cities.len())
                .max_by(|&a, &b| {
                    let ma = out.e2e_latency_ms[a].clone().median();
                    let mb = out.e2e_latency_ms[b].clone().median();
                    // A participant with no delivered frames has a NaN
                    // median (empty percentile set); total_cmp sorts NaN
                    // last instead of panicking the cell.
                    ma.total_cmp(&mb)
                })
                .expect("non-empty roster");
            // Passive estimate on ONE incoming media flow (flows are
            // per-sender by source port; mixing senders would double-count
            // frames).
            let subject = out.client_addrs[worst];
            let flow_port = out.taps[worst]
                .iter()
                .filter(|r| r.dst == subject && r.ports.src < 5_100)
                .map(|r| r.ports.src)
                .next()
                .expect("some media arrived");
            let media: Vec<_> = out.taps[worst]
                .iter()
                .filter(|r| r.dst == subject && r.ports.src == flow_port)
                .cloned()
                .collect();
            let q = visionsim_capture::qoe::estimate(media.iter(), 90.0);
            M2pRow {
                roster,
                policy,
                worst_e2e_ms: out.e2e_latency_ms[worst].clone(),
                passive_fps: q.fps,
            }
        }
    });
    MotionToPhoton { rows }
}

impl MotionToPhoton {
    /// The row for (roster, policy).
    pub fn row(&self, roster: &str, policy: AssignmentPolicy) -> &M2pRow {
        self.rows
            .iter()
            .find(|r| r.roster == roster && r.policy == policy)
            .expect("known combination")
    }
}

impl std::fmt::Display for MotionToPhoton {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "roster".to_string(),
            "policy".to_string(),
            "worst E2E p50".to_string(),
            "worst E2E p95".to_string(),
            "passive FPS".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut p = r.worst_e2e_ms.clone();
                vec![
                    r.roster.to_string(),
                    format!("{:?}", r.policy),
                    format!("{:.0} ms", p.percentile(50.0)),
                    format!("{:.0} ms", p.percentile(95.0)),
                    format!("{:.0}", r.passive_fps),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                "Motion-to-photon: end-to-end semantic-frame latency vs server placement",
                &header,
                &rows
            )
        )?;
        writeln!(f, "QoE threshold (paper §4.1): {QOE_THRESHOLD_MS:.0} ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intercontinental_initiator_near_violates_the_threshold() {
        let m = run(8, 101);
        let bad = m.row("intercontinental", AssignmentPolicy::NearestToInitiator);
        let mut p = bad.worst_e2e_ms.clone();
        assert!(
            p.percentile(50.0) > QOE_THRESHOLD_MS,
            "median {} should exceed the threshold",
            p.percentile(50.0)
        );
    }

    #[test]
    fn geo_distribution_brings_latency_down() {
        let m = run(8, 102);
        let near = {
            let mut p = m
                .row("intercontinental", AssignmentPolicy::NearestToInitiator)
                .worst_e2e_ms
                .clone();
            p.percentile(50.0)
        };
        let geo = {
            let mut p = m
                .row("intercontinental", AssignmentPolicy::GeoDistributed)
                .worst_e2e_ms
                .clone();
            p.percentile(50.0)
        };
        assert!(geo < near, "geo {geo} !< near {near}");
    }

    #[test]
    fn domestic_sessions_are_comfortably_under_threshold() {
        let m = run(8, 103);
        let mut p = m
            .row("US coast-to-coast", AssignmentPolicy::NearestToInitiator)
            .worst_e2e_ms
            .clone();
        assert!(
            p.percentile(95.0) < QOE_THRESHOLD_MS,
            "p95 {}",
            p.percentile(95.0)
        );
    }

    #[test]
    fn delay_does_not_thin_the_frame_stream() {
        // Passive FPS stays near 90 even intercontinentally: latency moves
        // frames, it does not drop them.
        let m = run(8, 104);
        for r in &m.rows {
            assert!(
                (70.0..100.0).contains(&r.passive_fps),
                "{} / {:?}: fps {}",
                r.roster,
                r.policy,
                r.passive_fps
            );
        }
    }
}
