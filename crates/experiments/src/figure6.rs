//! Figure 6 — scalability from 2 to 5 Vision Pro users.
//!
//! Full sessions at each size; per-frame rendered triangles and CPU/GPU
//! times from the receiver-side counters (Figure 6a/6b), downlink
//! throughput from the AP capture (Figure 6c).

use crate::report::{boxplot_cell, render_table};
use visionsim_capture::analysis::CaptureAnalysis;
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::stats::BoxplotSummary;
use visionsim_core::time::SimDuration;
use visionsim_geo::cities;
use visionsim_vca::session::{SessionConfig, SessionRunner};

/// One session size's measurements.
#[derive(Debug)]
pub struct Figure6Row {
    /// Number of users.
    pub users: usize,
    /// Rendered triangles per frame (Figure 6a).
    pub triangles: BoxplotSummary,
    /// GPU ms per frame (Figure 6b).
    pub gpu_ms: BoxplotSummary,
    /// CPU ms per frame (Figure 6b).
    pub cpu_ms: BoxplotSummary,
    /// Downlink throughput, Mbps (Figure 6c).
    pub downlink: BoxplotSummary,
}

/// The figure.
#[derive(Debug)]
pub struct Figure6 {
    /// Rows for 2..=5 users.
    pub rows: Vec<Figure6Row>,
}

/// Run the scalability sweep with sessions of `secs` seconds.
pub fn run(secs: u64, seed: u64) -> Figure6 {
    let cities = cities::us_vantages();
    // Each session size is an independent cell on its own derived seed.
    let rows = par_map((2..=5usize).collect(), |users| {
        {
            let mut cfg = SessionConfig::facetime_avp(
                users,
                &cities,
                derive_seed(seed, "figure6", users as u64),
            );
            cfg.duration = SimDuration::from_secs(secs);
            let out = SessionRunner::new(cfg).run();
            let analysis = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
            // Pool frame counters across every participant: each headset
            // is an independent sample of the same conversation (as the
            // paper's RealityKit readings are).
            let mut pooled = visionsim_render::counters::SessionCounters::new();
            let mut frames: Vec<_> = out
                .counters
                .iter()
                .flat_map(|c| c.frames().iter().copied())
                .collect();
            frames.sort_by_key(|f| f.at);
            for f in frames {
                pooled.record(
                    f.at,
                    &visionsim_render::cost::FrameCost {
                        gpu_ms: f.gpu_ms,
                        cpu_ms: f.cpu_ms,
                        triangles: f.triangles,
                        missed_deadline: f.missed,
                    },
                );
            }
            Figure6Row {
                users,
                triangles: pooled.triangles_boxplot(),
                gpu_ms: pooled.gpu_boxplot(),
                cpu_ms: pooled.cpu_boxplot(),
                downlink: analysis.downlink_boxplot_mbps(),
            }
        }
    });
    Figure6 { rows }
}

impl Figure6 {
    /// Row for a user count.
    pub fn row(&self, users: usize) -> &Figure6Row {
        self.rows
            .iter()
            .find(|r| r.users == users)
            .expect("2..=5 users")
    }
}

impl std::fmt::Display for Figure6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "users".to_string(),
            "triangles".to_string(),
            "GPU ms".to_string(),
            "CPU ms".to_string(),
            "downlink Mbps".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.users.to_string(),
                    format!("med={:.0} p5={:.0}", r.triangles.median, r.triangles.p5),
                    boxplot_cell(&r.gpu_ms),
                    boxplot_cell(&r.cpu_ms),
                    boxplot_cell(&r.downlink),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table("Figure 6: scalability with 2-5 Vision Pro users", &header, &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_shapes_match_paper() {
        let fig = run(15, 11);

        // (a) Rendered triangles rise roughly linearly with users: every
        // added persona adds load, and the total grows substantially.
        let means: Vec<f64> = (2..=5).map(|u| fig.row(u).triangles.mean).collect();
        for w in means.windows(2) {
            assert!(w[1] > w[0], "triangle means not increasing: {means:?}");
        }
        let t2 = means[0];
        let t5 = means[3];
        assert!(t5 > t2 * 1.6, "triangles: 2u {t2} vs 5u {t5}");
        // ...but the 5th percentile flattens (foveation): 5-user p5 stays
        // near the 3-user p5, far below the 5-user mean.
        let p5_3 = fig.row(3).triangles.p5;
        let p5_5 = fig.row(5).triangles.p5;
        assert!(
            p5_5 < p5_3 * 3.0,
            "p5 did not flatten: 3u {p5_3} vs 5u {p5_5}"
        );
        assert!(p5_5 < t5, "no spread at five users");

        // (b) GPU grows toward the deadline: paper 5.65 → 7.62 ms
        // (+34.9%), p95 > 9 ms at five users.
        let g2 = fig.row(2).gpu_ms.mean;
        let g5 = fig.row(5).gpu_ms.mean;
        assert!((4.0..7.2).contains(&g2), "2u GPU {g2}");
        assert!((6.2..10.5).contains(&g5), "5u GPU {g5}");
        assert!(g5 > g2 * 1.15, "GPU growth too small: {g2} → {g5}");
        assert!(fig.row(5).gpu_ms.p95 > 8.0, "p95 {}", fig.row(5).gpu_ms.p95);

        // CPU grows more modestly: paper 5.67 → 6.76 ms (+19.2%).
        let c2 = fig.row(2).cpu_ms.mean;
        let c5 = fig.row(5).cpu_ms.mean;
        assert!(c5 > c2, "CPU did not grow");
        assert!(
            (c5 - c2) / c2 < (g5 - g2) / g2,
            "CPU grew faster than GPU"
        );

        // (c) Downlink ~linear in remote personas.
        let d2 = fig.row(2).downlink.mean;
        let d5 = fig.row(5).downlink.mean;
        let ratio = d5 / d2;
        assert!((2.8..5.5).contains(&ratio), "downlink ratio {ratio}");
    }

    #[test]
    fn display_has_four_rows() {
        let fig = run(6, 3);
        assert_eq!(format!("{fig}").lines().count(), 7);
    }
}
