//! Table 1 — RTT between provider servers and the three test users.
//!
//! Methodology, as in §4.1: a test user in each US region (W / M / E)
//! TCP-pings every US server site of every provider. The simulated
//! topology is built from the geo substrate (per-path route inflation,
//! access overhead, provider server overhead), and probing runs over the
//! packet network — so the matrix is *measured*, not computed.

use crate::report::render_table;
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::stats::StreamingStats;
use visionsim_core::time::SimDuration;
use visionsim_geo::cities::{table1_test_users, City};
use visionsim_geo::propagation::LatencyModel;
use visionsim_geo::sites::{Provider, ServerSite, SiteRegistry};
use visionsim_net::link::LinkConfig;
use visionsim_net::network::Network;
use visionsim_net::probe::RttProber;

/// One measured matrix.
#[derive(Debug)]
pub struct Table1 {
    /// Column sites, in the paper's order (FaceTime W/M1/M2/E, Zoom W/E,
    /// Webex W/M/E, Teams W).
    pub sites: Vec<ServerSite>,
    /// Row users (W, M, E).
    pub users: Vec<City>,
    /// RTT statistics per (user, site), ms.
    pub rtts: Vec<Vec<StreamingStats>>,
}

/// Run the Table 1 measurement with `probes` pings per pair.
pub fn run(probes: usize, seed: u64) -> Table1 {
    let registry = SiteRegistry::us_fleet();
    let users = table1_test_users().to_vec();
    let sites: Vec<ServerSite> = Provider::ALL
        .iter()
        .flat_map(|&p| registry.for_provider(p))
        .collect();

    let latency = LatencyModel::default();
    // Each (user, site) pair probes over its own private two-node network
    // (the probe goes AP → site, as the paper probes from the APs), so
    // every pair is an independent cell with its own derived seed.
    let cells: Vec<(usize, usize)> = (0..users.len())
        .flat_map(|ui| (0..sites.len()).map(move |si| (ui, si)))
        .collect();
    let flat = par_map(cells, |(ui, si)| {
        let user = &users[ui];
        let site = &sites[si];
        let mut net = Network::new(derive_seed(
            seed,
            "table1",
            (ui * sites.len() + si) as u64,
        ));
        let un = net.add_node(user.name, "vantage", user.location);
        let sn = net.add_node(
            &format!("{} {}", site.provider, site.label),
            &format!("{}", site.provider),
            site.location(),
        );
        // One-way delay: propagation + half the access and server
        // overheads on each direction.
        let path = latency.path(
            &user.location,
            &site.location(),
            site.provider.server_overhead_ms(),
        );
        let one_way = SimDuration::from_millis_f64(path.base_rtt_ms / 2.0);
        let mut cfg = LinkConfig::core(one_way);
        // Access-path jitter: each direction adds U[0, 1.5] ms, giving
        // per-pair RTT spreads well inside the paper's σ < 7 ms.
        cfg.netem.jitter = SimDuration::from_millis_f64(1.5);
        net.add_duplex(un, sn, cfg);
        RttProber::default().probe_stats(&mut net, un, sn, probes, SimDuration::from_millis(200))
    });
    let mut flat = flat.into_iter();
    let rtts = (0..users.len())
        .map(|_| flat.by_ref().take(sites.len()).collect())
        .collect();
    Table1 { sites, users, rtts }
}

impl Table1 {
    /// The RTT mean for (user region row, site column), ms.
    pub fn mean_ms(&self, row: usize, col: usize) -> f64 {
        self.rtts[row][col].mean()
    }

    /// Largest standard deviation in the matrix (the paper: <7 ms).
    pub fn max_std(&self) -> f64 {
        self.rtts
            .iter()
            .flatten()
            .map(|s| s.std_dev())
            .fold(0.0, f64::max)
    }

    /// Column index of a provider site by (provider, label).
    pub fn col(&self, provider: Provider, label: &str) -> Option<usize> {
        self.sites
            .iter()
            .position(|s| s.provider == provider && s.label == label)
    }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header = vec!["Users".to_string()];
        header.extend(
            self.sites
                .iter()
                .map(|s| format!("{} {}", s.provider, s.label)),
        );
        let rows: Vec<Vec<String>> = self
            .users
            .iter()
            .enumerate()
            .map(|(ui, u)| {
                let mut row = vec![u.region().abbrev().to_string()];
                row.extend(
                    self.rtts[ui]
                        .iter()
                        .map(|s| format!("{:.1}", s.mean())),
                );
                row
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                "Table 1: mean RTT (ms) between provider servers and test users",
                &header,
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_paper_shape() {
        let t = run(5, 42);
        // 10 columns: FaceTime 4 + Zoom 2 + Webex 3 + Teams 1.
        assert_eq!(t.sites.len(), 10);
        assert_eq!(t.users.len(), 3);

        // Same-region diagonals are small (paper: 5.9–8.8 ms).
        let ft_w = t.col(Provider::FaceTime, "W").unwrap();
        let ft_e = t.col(Provider::FaceTime, "E").unwrap();
        assert!(t.mean_ms(0, ft_w) < 15.0, "W↔W {}", t.mean_ms(0, ft_w));
        assert!(t.mean_ms(2, ft_e) < 15.0, "E↔E {}", t.mean_ms(2, ft_e));

        // Cross-country entries are large (paper: ~71–79 ms).
        assert!(
            (45.0..100.0).contains(&t.mean_ms(0, ft_e)),
            "W user ↔ E site {}",
            t.mean_ms(0, ft_e)
        );
        assert!(
            (45.0..100.0).contains(&t.mean_ms(2, ft_w)),
            "E user ↔ W site {}",
            t.mean_ms(2, ft_w)
        );

        // Middle sits between.
        let ft_m1 = t.col(Provider::FaceTime, "M1").unwrap();
        let m_mid = t.mean_ms(1, ft_m1);
        assert!(m_mid < t.mean_ms(1, ft_e) + 10.0, "M↔M1 {m_mid}");
        assert!(m_mid < 20.0, "M↔M1 {m_mid}");

        // σ < 7 ms across the matrix.
        assert!(t.max_std() < 7.0, "σ {}", t.max_std());

        // Teams' single Western site is notably slower even for W users
        // (paper: 31 ms vs 8.8–14 for the others).
        let teams_w = t.col(Provider::Teams, "W").unwrap();
        assert!(
            t.mean_ms(0, teams_w) > t.mean_ms(0, ft_w) + 5.0,
            "Teams W {} vs FaceTime W {}",
            t.mean_ms(0, teams_w),
            t.mean_ms(0, ft_w)
        );
    }

    #[test]
    fn display_renders_all_rows() {
        let t = run(2, 1);
        let text = format!("{t}");
        assert!(text.contains("Table 1"));
        assert_eq!(text.lines().count(), 6); // title + header + rule + 3 rows
    }
}
