//! Extensions beyond the measured system — the paper's implied future
//! work, quantified:
//!
//! * [`fec_under_loss`] — what one XOR parity shard per semantic frame
//!   buys under random loss (the §4.3 brittleness fix), and what it costs.
//! * [`beyond_five_users`] — why five spatial personas is the cap: extend
//!   the Figure 6 sweep to 6–8 users and watch the 90 FPS deadline-miss
//!   rate take off.

use crate::report::render_table;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::rng::SimRng;
use visionsim_core::time::SimDuration;
use visionsim_geo::cities;
use visionsim_semantic::fec::{FecAssembler, FecEncoder};
use visionsim_semantic::packetize::{FrameAssembler, Packetizer};
use visionsim_vca::session::{SessionConfig, SessionRunner};

/// One loss-rate point of the FEC experiment.
#[derive(Debug)]
pub struct FecPoint {
    /// Packet loss probability.
    pub loss: f64,
    /// Frame delivery rate without FEC.
    pub plain_delivery: f64,
    /// Frame delivery rate with one parity shard per frame.
    pub fec_delivery: f64,
    /// FEC bandwidth overhead (bytes sent with FEC / without).
    pub overhead: f64,
}

/// Stream `frames` synthetic semantic frames of `payload_len` bytes
/// through an i.i.d.-loss channel, with and without FEC.
pub fn fec_under_loss(frames: usize, payload_len: usize, seed: u64) -> Vec<FecPoint> {
    const MTU: usize = 600; // forces multi-shard frames for realistic k
    // Each loss point is an independent cell with its own derived stream.
    let losses: Vec<(usize, f64)> = [0.0f64, 0.01, 0.03, 0.05, 0.10, 0.20]
        .into_iter()
        .enumerate()
        .collect();
    par_map(losses, |(li, loss)| {
        {
            let mut rng = SimRng::seed_from_u64(derive_seed(seed, "fec_under_loss", li as u64));
            let payload: Vec<u8> = (0..payload_len).map(|i| (i * 31) as u8).collect();

            // Plain path.
            let mut packetizer = Packetizer::new();
            let mut plain_asm = FrameAssembler::new();
            let mut plain_bytes = 0usize;
            let mut plain_ok = 0usize;
            for _ in 0..frames {
                for frag in packetizer.split(&payload) {
                    plain_bytes += frag.to_bytes().len();
                    if !rng.chance(loss) && plain_asm.push(frag).is_some() {
                        plain_ok += 1;
                    }
                }
            }

            // FEC path.
            let mut fec_enc = FecEncoder::new();
            let mut fec_asm = FecAssembler::new();
            let mut fec_bytes = 0usize;
            let mut fec_ok = 0usize;
            for _ in 0..frames {
                for shard in fec_enc.protect(&payload, MTU) {
                    fec_bytes += shard.to_bytes().len();
                    if !rng.chance(loss) && fec_asm.push(shard).is_some() {
                        fec_ok += 1;
                    }
                }
            }

            FecPoint {
                loss,
                plain_delivery: plain_ok as f64 / frames as f64,
                fec_delivery: fec_ok as f64 / frames as f64,
                overhead: fec_bytes as f64 / plain_bytes as f64,
            }
        }
    })
}

/// Render the FEC sweep.
pub fn format_fec(points: &[FecPoint]) -> String {
    let header = vec![
        "loss".to_string(),
        "frames ok (plain)".to_string(),
        "frames ok (FEC)".to_string(),
        "FEC overhead".to_string(),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.loss * 100.0),
                format!("{:.1}%", p.plain_delivery * 100.0),
                format!("{:.1}%", p.fec_delivery * 100.0),
                format!("{:.2}x", p.overhead),
            ]
        })
        .collect();
    render_table(
        "Extension: XOR-parity FEC for the semantic stream under random loss",
        &header,
        &rows,
    )
}

/// One row of the beyond-five sweep.
#[derive(Clone, Debug)]
pub struct BeyondFiveRow {
    /// Users in the session.
    pub users: usize,
    /// Mean GPU ms/frame across participants.
    pub gpu_mean_ms: f64,
    /// 95th-percentile GPU ms/frame.
    pub gpu_p95_ms: f64,
    /// Fraction of frames missing the 90 FPS deadline.
    pub miss_rate: f64,
    /// Effective FPS after misses.
    pub effective_fps: f64,
}

/// Memo for the per-roster session kernels: a row is a pure function of
/// `(users, secs, derived seed)`, and the full-session runs behind it are
/// the most expensive kernels in the suite (the 8-user roster alone is
/// seconds of simulated rendering). The cache is process-global and
/// thread-count-safe precisely *because* the rows are pure: whichever
/// cell computes a key first stores the same bytes any other would.
/// Deliberately scoped to this sweep — memoizing kernels exercised by the
/// determinism suite (e.g. `fec_under_loss`) would make its
/// thread-count comparisons vacuous.
type BeyondFiveCache = Mutex<HashMap<(usize, u64, u64), BeyondFiveRow>>;

fn beyond_five_cache() -> &'static BeyondFiveCache {
    static CACHE: OnceLock<BeyondFiveCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Extend the Figure 6 sweep past FaceTime's five-persona cap.
pub fn beyond_five_users(secs: u64, seed: u64) -> Vec<BeyondFiveRow> {
    let cities = cities::us_vantages();
    // One independent session cell per roster size.
    par_map((2..=8usize).collect(), |users| {
        {
            let cell_seed = derive_seed(seed, "beyond_five_users", users as u64);
            let key = (users, secs, cell_seed);
            if let Some(row) = beyond_five_cache().lock().expect("unpoisoned").get(&key) {
                return row.clone();
            }
            let mut cfg = SessionConfig::facetime_avp(users, &cities, cell_seed);
            cfg.duration = SimDuration::from_secs(secs);
            let out = SessionRunner::new(cfg).run();
            // Pool counters across participants.
            let mut gpu = visionsim_core::stats::Percentiles::new();
            let mut missed = 0usize;
            let mut total = 0usize;
            let mut fps_acc = 0.0;
            for c in &out.counters {
                for f in c.frames() {
                    gpu.push(f.gpu_ms);
                    missed += f.missed as usize;
                    total += 1;
                }
                fps_acc += c.effective_fps();
            }
            let row = BeyondFiveRow {
                users,
                gpu_mean_ms: gpu.mean(),
                gpu_p95_ms: gpu.percentile(95.0),
                miss_rate: missed as f64 / total.max(1) as f64,
                effective_fps: fps_acc / out.counters.len() as f64,
            };
            beyond_five_cache()
                .lock()
                .expect("unpoisoned")
                .insert(key, row.clone());
            row
        }
    })
}

/// Render the beyond-five sweep.
pub fn format_beyond_five(rows: &[BeyondFiveRow]) -> String {
    let header = vec![
        "users".to_string(),
        "GPU mean".to_string(),
        "GPU p95".to_string(),
        "deadline misses".to_string(),
        "effective FPS".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.users.to_string(),
                format!("{:.2} ms", r.gpu_mean_ms),
                format!("{:.2} ms", r.gpu_p95_ms),
                format!("{:.1}%", r.miss_rate * 100.0),
                format!("{:.0}", r.effective_fps),
            ]
        })
        .collect();
    render_table(
        "Extension: spatial sessions beyond the five-persona cap (11.1 ms deadline)",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fec_rescues_frames_at_moderate_loss() {
        let points = fec_under_loss(400, 2_000, 91);
        let at5 = points.iter().find(|p| (p.loss - 0.05).abs() < 1e-9).unwrap();
        // Plain 2-fragment frames at 5% i.i.d. loss: (0.95)^2 ≈ 0.90.
        assert!(at5.plain_delivery < 0.93, "plain {}", at5.plain_delivery);
        // FEC (k=4 shards of 600 B + parity) recovers single losses:
        // analytically ≈ 0.977.
        assert!(
            at5.fec_delivery > at5.plain_delivery + 0.04,
            "FEC {} vs plain {}",
            at5.fec_delivery,
            at5.plain_delivery
        );
        // At zero loss both are perfect and FEC costs its parity.
        let at0 = &points[0];
        assert_eq!(at0.plain_delivery, 1.0);
        assert_eq!(at0.fec_delivery, 1.0);
        assert!(at0.overhead > 1.1 && at0.overhead < 1.6, "{}", at0.overhead);
    }

    #[test]
    fn fec_cannot_save_heavy_loss() {
        let points = fec_under_loss(300, 2_000, 92);
        let at20 = points.last().unwrap();
        assert!(at20.fec_delivery < 0.9, "20% loss should still hurt");
    }

    #[test]
    fn deadline_misses_take_off_beyond_five() {
        let rows = beyond_five_users(6, 93);
        let at5 = rows.iter().find(|r| r.users == 5).unwrap();
        let at8 = rows.iter().find(|r| r.users == 8).unwrap();
        // Five users: close to the deadline but mostly holding 90 FPS.
        assert!(at5.miss_rate < 0.2, "5u miss {}", at5.miss_rate);
        // Eight users: substantially degraded.
        assert!(
            at8.miss_rate > at5.miss_rate + 0.1,
            "8u {} vs 5u {}",
            at8.miss_rate,
            at5.miss_rate
        );
        assert!(at8.effective_fps < 85.0, "8u fps {}", at8.effective_fps);
        // GPU load grows monotonically-ish.
        assert!(at8.gpu_mean_ms > at5.gpu_mean_ms);
    }

    #[test]
    fn formatting_contains_all_rows() {
        let points = fec_under_loss(50, 1_500, 94);
        assert!(format_fec(&points).lines().count() >= points.len() + 3);
        // Same (secs, seed) as `deadline_misses_take_off_beyond_five`, so
        // whichever test runs second gets the memoized rows for free.
        let rows = beyond_five_users(6, 93);
        assert!(format_beyond_five(&rows).contains("8"));
    }
}
