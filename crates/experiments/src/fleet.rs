//! Fleet artifact: a planet-scale population of concurrent telepresence
//! sessions over the global SFU map, run on the sharded conservative-PDES
//! engine (`core::shard` + `vca::fleet`).
//!
//! This is ROADMAP item 1's scale target made into an artifact: ≥ 100k
//! concurrent sessions (≥ 500k participants) in one run, reported as
//! per-site load curves, admission/rejection tallies, join-latency
//! percentiles (p50/p99, backbone RTTs included for remote members), and
//! the steady-state admitted-session rate. Everything printed is in the
//! simulated domain — no wall-clock numbers — so the artifact is
//! byte-identical at any thread count and any shard count; the wall-clock
//! throughput figure lives in BENCH.json (`fleet/sessions_per_sec`).

use crate::report::render_table;
use std::fmt;
use visionsim_core::stats::Percentiles;
use visionsim_vca::fleet::{run_fleet, FleetConfig, FleetOutcome};

/// Shard count used by the artifact run. Any value produces the same
/// bytes (pinned by `tests/fleet_props.rs`); 8 matches the parallelism
/// the bench sweep targets.
pub const ARTIFACT_SHARDS: usize = 8;

/// The rendered fleet artifact.
#[derive(Debug)]
pub struct Fleet {
    /// The simulation outcome, sites in global order.
    pub outcome: FleetOutcome,
    /// Scale floors asserted by `run` (sessions, participants); recorded
    /// so the artifact text states what it guarantees.
    pub floors: (u64, u64),
}

/// Run the full-scale fleet: 16 worldwide sites, hot metros pushed into
/// their admission envelopes, peaking above 100k concurrent sessions.
pub fn run(seed: u64) -> Fleet {
    let out = run_with(&FleetConfig::paper_scale(seed), ARTIFACT_SHARDS);
    let (peak_sessions, peak_participants) = out.peak_concurrency();
    assert!(
        peak_sessions >= 100_000,
        "fleet peaked at {peak_sessions} concurrent sessions, below the 100k target"
    );
    assert!(
        peak_participants >= 500_000,
        "fleet peaked at {peak_participants} concurrent participants, below the 500k target"
    );
    Fleet {
        outcome: out,
        floors: (100_000, 500_000),
    }
}

/// Run an arbitrary fleet configuration (the smoke-scale entry point the
/// determinism suite uses).
pub fn run_with(cfg: &FleetConfig, shards: usize) -> FleetOutcome {
    run_fleet(cfg, shards)
}

/// Render a smoke-scale fleet with the same formatting as the artifact,
/// minus the scale floors (used by `tests/determinism.rs`).
pub fn run_smoke(seed: u64) -> Fleet {
    Fleet {
        outcome: run_with(&FleetConfig::smoke(seed), 4),
        floors: (0, 0),
    }
}

impl fmt::Display for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let out = &self.outcome;
        let header = vec![
            "site".to_string(),
            "arrivals".to_string(),
            "admitted".to_string(),
            "rejected".to_string(),
            "peak sess".to_string(),
            "peak part".to_string(),
            "join p50/p99 (ms)".to_string(),
        ];
        let rows: Vec<Vec<String>> = out
            .sites
            .iter()
            .map(|s| {
                vec![
                    s.label.to_string(),
                    s.arrivals.to_string(),
                    s.admitted_sessions.to_string(),
                    s.rejected_sessions.to_string(),
                    s.peak_sessions.to_string(),
                    s.peak_participants.to_string(),
                    format!("{:.1}/{:.1}", s.join_p50_ms, s.join_p99_ms),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                "Fleet: global SFU session population (conservative PDES)",
                &header,
                &rows
            )
        )?;

        let (peak_sessions, peak_participants) = out.peak_concurrency();
        writeln!(
            f,
            "peak concurrency: {peak_sessions} sessions / {peak_participants} participants (per-second samples)"
        )?;
        if self.floors.0 > 0 {
            writeln!(
                f,
                "scale floors asserted: >= {} sessions, >= {} participants",
                self.floors.0, self.floors.1
            )?;
        }
        let mut fleet_join = Percentiles::from_samples(
            out.sites
                .iter()
                .flat_map(|s| s.join_samples.iter().copied())
                .collect(),
        );
        if !fleet_join.is_empty() {
            writeln!(
                f,
                "fleet join latency: p50 {:.1} ms, p99 {:.1} ms over {} joins",
                fleet_join.percentile(50.0),
                fleet_join.percentile(99.0),
                fleet_join.count()
            )?;
        }
        writeln!(
            f,
            "steady-state admitted rate: {:.1} sessions/s (simulated, second half)",
            out.steady_sessions_per_sec()
        )?;
        writeln!(
            f,
            "backbone: {} envelopes over {} barrier rounds, lookahead {:.2} ms",
            out.messages,
            out.rounds,
            out.lookahead.as_millis_f64()
        )?;

        // Load curve, one line per sampled 5-second mark: per-site active
        // sessions plus the fleet-wide total.
        writeln!(f, "load curve (active sessions per site):")?;
        let horizon_s = out.duration.as_nanos() / 1_000_000_000;
        for sec in (0..=horizon_s).step_by(5) {
            write!(f, "  t={sec:>3}s")?;
            let mut total = 0u64;
            for site in &out.sites {
                let n = site
                    .samples
                    .iter()
                    .find(|(s, _, _)| *s == sec)
                    .map_or(0, |&(_, a, _)| a);
                total += n as u64;
                write!(f, " {}={}", site.label, n)?;
            }
            writeln!(f, " total={total}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_reaches_the_roadmap_target() {
        let fleet = run(2024);
        let (sessions, participants) = fleet.outcome.peak_concurrency();
        assert!(sessions >= 100_000, "only {sessions} concurrent sessions");
        assert!(
            participants >= 500_000,
            "only {participants} concurrent participants"
        );
        // The hot metros must actually hit their envelopes — rejection is
        // part of the modeled workload.
        assert!(
            fleet.outcome.sites.iter().any(|s| s.rejected_sessions > 0),
            "no site ever ran into its admission envelope"
        );
        assert!(fleet.outcome.messages > 0, "no backbone traffic");
    }

    #[test]
    fn smoke_render_contains_the_fleet_summary() {
        let text = format!("{}", run_smoke(9));
        assert!(text.contains("Fleet: global SFU session population"));
        assert!(text.contains("peak concurrency:"));
        assert!(text.contains("steady-state admitted rate:"));
        assert!(text.contains("lookahead"));
        assert!(text.contains("load curve"));
        assert!(text.contains("US-W"));
        assert!(text.contains("total="));
        // Never a wall-clock figure in an artifact.
        assert!(!text.to_lowercase().contains("wall"));
    }
}
