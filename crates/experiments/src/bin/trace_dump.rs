//! Render a flight-recorder `trace.bin` as a human-readable timeline.
//!
//! ```sh
//! cargo run --release -p visionsim-experiments --bin trace_dump -- \
//!     artifacts/figure4.trace.bin
//! ```
//!
//! Events print in `(time_ns, seq)` order — the same total order the
//! recorder assigns — so dumps of the same artifact are identical at any
//! thread count. A per-kind count summary follows the timeline. Decode
//! errors (truncated, corrupt, or hostile images) exit non-zero with the
//! `SimError` message; they never panic.
//!
//! `--follow` tails a *live* sidecar (the file `visionsim serve --trace`
//! rewrites atomically): the tool re-reads the file on an interval and
//! prints only events beyond the `seq` watermark it has already shown.
//! The watermark is keyed on `seq` alone — `seq` is globally monotonic
//! across the whole service lifetime, while `time_ns` is session-local
//! virtual time that restarts near 0 for every joined session, so a
//! time-keyed mark would silently swallow late joiners. `--polls N`
//! bounds the number of re-reads (CI); without it, follow runs until
//! interrupted.

use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;
use visionsim_core::trace::{self, TraceEvent, TraceKind};

/// One-character timeline glyph per kind: the dense column that makes
/// control-plane storms scannable (`!` reject, `%`/`~`/`=` breaker
/// open/half-open/close, `@` reconnect attempt, `>` failover).
fn glyph(kind: TraceKind) -> char {
    match kind {
        TraceKind::PacketSend => '.',
        TraceKind::PacketDeliver => ',',
        TraceKind::PacketDrop | TraceKind::QueueDrop => 'x',
        TraceKind::ModeSwitch => 'm',
        TraceKind::FaultOnset => 'F',
        TraceKind::FaultRecovery => 'f',
        TraceKind::SfuFailover => '>',
        TraceKind::CellStart => '[',
        TraceKind::CellRetry => 'r',
        TraceKind::CellQuarantine => 'Q',
        TraceKind::SpanEnter => '(',
        TraceKind::SpanExit => ')',
        TraceKind::RtcpReport => 'R',
        TraceKind::CtrlState => 'c',
        TraceKind::AdmissionReject => '!',
        TraceKind::BreakerOpen => '%',
        TraceKind::BreakerHalfOpen => '~',
        TraceKind::BreakerClose => '=',
        TraceKind::ReconnectAttempt => '@',
    }
}

/// One rendered timeline line: time, glyph, kind, label, operands.
fn render_line(ev: &TraceEvent, sites: &[String]) -> String {
    let label = if ev.site == 0 {
        ""
    } else {
        sites
            .get(ev.site as usize - 1)
            .map(String::as_str)
            .unwrap_or("<unknown-site>")
    };
    let operands = match ev.kind {
        TraceKind::PacketSend => format!("seq={} src={} dst={}", ev.a, ev.b, ev.c),
        TraceKind::PacketDeliver => format!("seq={} node={}", ev.a, ev.b),
        TraceKind::PacketDrop => format!("seq={} link={}", ev.a, ev.b),
        TraceKind::ModeSwitch => format!(
            "participant={} mode={}",
            ev.a,
            if ev.b == 0 { "spatial" } else { "2d-fallback" }
        ),
        TraceKind::FaultOnset | TraceKind::FaultRecovery => {
            format!("participant={}", ev.a)
        }
        TraceKind::SfuFailover => format!("affected={}", ev.a),
        TraceKind::CellStart | TraceKind::SpanEnter | TraceKind::SpanExit => {
            format!("seed={}", ev.a)
        }
        TraceKind::CellRetry => format!("seed={} attempt={}", ev.a, ev.b),
        TraceKind::CellQuarantine => format!(
            "seed={}{}",
            ev.a,
            if ev.b == 1 { " (watchdog)" } else { "" }
        ),
        TraceKind::QueueDrop => format!("seq={} link={} bytes={}", ev.a, ev.b, ev.c),
        TraceKind::RtcpReport => format!(
            "flow={} loss={}.{}% arrival={} kbps",
            ev.a,
            ev.b / 10,
            ev.b % 10,
            ev.c
        ),
        TraceKind::CtrlState => format!(
            "flow={} state={} target={} kbps",
            ev.a,
            match ev.b {
                0 => "increase",
                1 => "hold",
                2 => "decrease",
                _ => "?",
            },
            ev.c
        ),
        TraceKind::AdmissionReject => format!(
            "participant={} reason={} attached={}",
            ev.a,
            match ev.b {
                0 => "capacity",
                1 => "sessions",
                2 => "health",
                _ => "?",
            },
            ev.c
        ),
        TraceKind::BreakerOpen => {
            format!("failures={} half_open_at={} ns", ev.a, ev.c)
        }
        TraceKind::BreakerHalfOpen => "trial window".to_string(),
        TraceKind::BreakerClose => "recovered".to_string(),
        TraceKind::ReconnectAttempt => format!(
            "participant={} attempt={} verdict={}",
            ev.a,
            ev.b,
            match ev.c {
                0 => "admitted",
                1 => "rejected",
                2 => "no-candidate",
                _ => "?",
            }
        ),
    };
    if label.is_empty() {
        format!(
            "{:>16} ns  #{:<8} {} {:<16} {}",
            ev.time_ns,
            ev.seq,
            glyph(ev.kind),
            ev.kind.name(),
            operands
        )
    } else {
        format!(
            "{:>16} ns  #{:<8} {} {:<16} [{}] {}",
            ev.time_ns,
            ev.seq,
            glyph(ev.kind),
            ev.kind.name(),
            label,
            operands
        )
    }
}

fn dump(
    out: &mut impl Write,
    path: &str,
    sites: &[String],
    events: &[TraceEvent],
) -> std::io::Result<()> {
    writeln!(
        out,
        "trace {path}: {} event(s), {} site label(s)",
        events.len(),
        sites.len()
    )?;
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    for ev in events {
        *by_kind.entry(ev.kind.name()).or_insert(0) += 1;
        writeln!(out, "{}", render_line(ev, sites))?;
    }
    if !events.is_empty() {
        writeln!(out, "\nper-kind counts:")?;
        for (kind, count) in &by_kind {
            writeln!(out, "  {kind:<16} {count}")?;
        }
    }
    out.flush()
}

/// Split `events` (already `seq`-sorted) at the follow watermark:
/// everything with `seq >= cursor` is new. The cursor is a `seq`
/// watermark (next unseen seq, start at 0) — never a timestamp, because
/// sessions carry session-local virtual time and a late joiner's events
/// would sort below a time-keyed mark and vanish. Returns the new
/// events and the advanced cursor.
fn beyond_watermark(events: &[TraceEvent], cursor: u64) -> (&[TraceEvent], u64) {
    let start = events.partition_point(|ev| ev.seq < cursor);
    let fresh = &events[start..];
    let next = fresh.last().map(|ev| ev.seq + 1).unwrap_or(cursor);
    (fresh, next)
}

/// Tail a live sidecar: poll the file, print events beyond the
/// watermark. A missing or mid-rewrite file is a skipped poll, not an
/// error — the writer replaces it atomically, so the next read is whole.
fn follow(path: &str, polls: Option<u64>, interval: std::time::Duration) -> ExitCode {
    let stdout = std::io::stdout().lock();
    let mut out = std::io::BufWriter::new(stdout);
    let mut cursor: u64 = 0;
    let mut done: u64 = 0;
    loop {
        if let Ok(bytes) = std::fs::read(path) {
            if let Ok((sites, mut events)) = trace::decode(&bytes) {
                // Filter order is seq (globally monotonic); display order
                // within each batch is (time_ns, seq), per the header doc.
                events.sort_unstable_by_key(|ev| ev.seq);
                let (fresh, next) = beyond_watermark(&events, cursor);
                cursor = next;
                let mut fresh: Vec<TraceEvent> = fresh.to_vec();
                fresh.sort_unstable_by_key(|ev| (ev.time_ns, ev.seq));
                for ev in &fresh {
                    match writeln!(out, "{}", render_line(ev, &sites)) {
                        Ok(()) => {}
                        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {
                            return ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("trace_dump: write failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if out.flush().is_err() {
                    return ExitCode::SUCCESS;
                }
            }
        }
        done += 1;
        if let Some(limit) = polls {
            if done >= limit {
                return ExitCode::SUCCESS;
            }
        }
        std::thread::sleep(interval);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut follow_mode = false;
    let mut polls: Option<u64> = None;
    let mut interval = std::time::Duration::from_millis(200);
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--follow" => follow_mode = true,
            "--polls" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => polls = Some(n),
                None => {
                    eprintln!("trace_dump: --polls needs a number");
                    return ExitCode::from(2);
                }
            },
            "--interval-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => interval = std::time::Duration::from_millis(ms.max(1)),
                None => {
                    eprintln!("trace_dump: --interval-ms needs a number");
                    return ExitCode::from(2);
                }
            },
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string())
            }
            other => {
                eprintln!("trace_dump: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_dump [--follow] [--polls N] [--interval-ms MS] <trace.bin>");
        return ExitCode::from(2);
    };
    if follow_mode {
        return follow(&path, polls, interval);
    }
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("trace_dump: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (sites, mut events) = match trace::decode(&bytes) {
        Ok(decoded) => decoded,
        Err(e) => {
            eprintln!("trace_dump: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // (time, seq) is the recorder's total order; decoding preserves
    // insertion order, which can interleave across threads.
    events.sort_unstable_by_key(|ev| (ev.time_ns, ev.seq));

    let stdout = std::io::stdout().lock();
    let mut out = std::io::BufWriter::new(stdout);
    match dump(&mut out, &path, &sites, &events) {
        Ok(()) => ExitCode::SUCCESS,
        // `trace_dump … | head` closes the pipe mid-dump; that is the
        // reader saying "enough", not a failure.
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_dump: write failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_ns: u64, seq: u64) -> TraceEvent {
        TraceEvent {
            time_ns,
            seq,
            kind: TraceKind::PacketSend,
            site: 0,
            a: 0,
            b: 0,
            c: 0,
        }
    }

    #[test]
    fn watermark_advances_and_filters() {
        let events = vec![ev(10, 0), ev(10, 1), ev(20, 2), ev(30, 3)];
        // First poll: everything is new.
        let (fresh, cursor) = beyond_watermark(&events, 0);
        assert_eq!(fresh.len(), 4);
        assert_eq!(cursor, 4);
        // Same file again: nothing new, cursor unchanged.
        let (fresh, cursor) = beyond_watermark(&events, cursor);
        assert!(fresh.is_empty());
        assert_eq!(cursor, 4);
        // The writer appended two events (and the ring dropped ev(10,0)).
        let grown = vec![ev(10, 1), ev(20, 2), ev(30, 3), ev(30, 4), ev(40, 5)];
        let (fresh, cursor) = beyond_watermark(&grown, cursor);
        assert_eq!(
            fresh.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(cursor, 6);
    }

    /// Regression: sessions joining mid-service carry session-local
    /// virtual time that restarts near 0. A `(time_ns, seq)`-keyed
    /// watermark would classify the late joiner's low timestamps as
    /// already shown; the seq-keyed cursor must surface them.
    #[test]
    fn late_joiner_with_reset_virtual_time_is_not_dropped() {
        // Poll 1: an established session deep into its virtual timeline.
        let poll1 = vec![ev(1_000_000, 0), ev(2_000_000, 1)];
        let (fresh, cursor) = beyond_watermark(&poll1, 0);
        assert_eq!(fresh.len(), 2);
        // Poll 2: a new session joined — its events have tiny time_ns
        // but higher seq. They must all be classified as fresh.
        let poll2 = vec![
            ev(1_000_000, 0),
            ev(2_000_000, 1),
            ev(5, 2),
            ev(10, 3),
            ev(2_500_000, 4),
        ];
        let (fresh, cursor) = beyond_watermark(&poll2, cursor);
        assert_eq!(
            fresh.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "late joiner's low-timestamp events were dropped"
        );
        assert_eq!(cursor, 5);
    }

    /// End-to-end smoke on a storm-scenario sidecar: record a thundering
    /// herd with the recorder forced on, encode → write → read → decode,
    /// and render every line. The dump must carry the control-plane
    /// kinds (admission rejects, reconnect attempts) with their glyphs.
    #[test]
    fn storm_sidecar_renders_control_plane_kinds() {
        trace::force(Some(true));
        trace::reset();
        visionsim_experiments::storms::thundering_herd(20, 42);
        let events = trace::take();
        let image = trace::encode(&events);
        trace::force(None);
        trace::reset();
        assert!(!events.is_empty(), "storm recorded no events");

        let path = std::env::temp_dir().join(format!(
            "visionsim_storm_trace_{}.bin",
            std::process::id()
        ));
        std::fs::write(&path, &image).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let (sites, mut decoded) = trace::decode(&bytes).expect("valid sidecar");
        decoded.sort_unstable_by_key(|ev| (ev.time_ns, ev.seq));
        assert_eq!(decoded.len(), events.len());

        let mut rendered = String::new();
        let mut dumped = Vec::new();
        dump(&mut dumped, "storm.trace.bin", &sites, &decoded).unwrap();
        for ev in &decoded {
            rendered.push_str(&render_line(ev, &sites));
            rendered.push('\n');
        }
        for needle in ["admission_reject", "reconnect_attempt", "reason=", "verdict="] {
            assert!(rendered.contains(needle), "missing {needle:?} in dump");
        }
        // The herd hammers a capacity-limited survivor: rejects must show
        // with their glyph column.
        assert!(
            rendered.lines().any(|l| l.contains(" ! admission_reject")),
            "admission_reject glyph missing"
        );
        assert!(
            rendered.lines().any(|l| l.contains(" @ reconnect_attempt")),
            "reconnect_attempt glyph missing"
        );
        // The summary path renders the same events without error.
        let summary = String::from_utf8(dumped).unwrap();
        assert!(summary.contains("per-kind counts:"));
    }
}
