//! Regenerate every table and figure of the paper in one run.
//!
//! ```sh
//! cargo run --release -p visionsim-experiments --bin regenerate
//! ```
//!
//! Each artifact reports its wall-clock time, and the run ends with a
//! sequential-vs-parallel speedup line for the Figure 6 sweep (the output
//! itself is bit-identical at any thread count; see `core::par`).

use std::time::Instant;
use visionsim_experiments::*;

/// Run one artifact, print its output, and report the wall-clock spent.
fn timed<T: std::fmt::Display>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!("{out}");
    println!("[{label}: {:.2}s]\n", start.elapsed().as_secs_f64());
    out
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024u64);
    let wall = Instant::now();
    println!(
        "=== visionsim: regenerating all paper artifacts (seed {seed}, {} threads) ===\n",
        visionsim_core::par::threads()
    );

    println!("--- Table 1 ---");
    let start = Instant::now();
    let t1 = table1::run(10, seed);
    println!("{t1}");
    println!("max σ = {:.2} ms (paper: <7 ms)", t1.max_std());
    println!("[table1: {:.2}s]\n", start.elapsed().as_secs_f64());

    println!("--- Figure 4 ---");
    timed("figure4", || figure4::run(3, 30, seed));

    println!("--- §4.3: What is being delivered? ---");
    timed("mesh_streaming", || mesh_streaming::run(6, seed));
    timed("display_latency", || display_latency::run(500, seed));
    timed("keypoint_rate", || keypoint_rate::run(2_000, seed));
    timed("rate_adaptation", || rate_adaptation::run(15, seed));

    println!("--- Figure 5 ---");
    timed("figure5", || figure5::run(500, seed));

    println!("--- §4.1 server discovery (methodology) ---");
    timed("discovery", || discovery::run(24, 5, seed));

    println!("--- §4.1 protocols ---");
    timed("protocols", || protocols::run(10, seed));

    println!("--- Motion-to-photon vs placement ---");
    timed("motion_to_photon", || motion_to_photon::run(15, seed));

    println!("--- Figure 6 ---");
    timed("figure6", || figure6::run(30, seed));

    println!("--- Chaos drill (resilience) ---");
    let drill = timed("resilience", || resilience::run(14, seed));
    println!(
        "{}/{} cells dipped and recovered\n",
        drill.recovered_cells(),
        drill.cells.len()
    );

    println!("--- Ablations ---");
    let start = Instant::now();
    let coder = ablations::entropy_coder(200_000, seed);
    println!(
        "entropy coder on {} B residuals: rANS {} B vs LZ+range {} B",
        coder.input_len, coder.rans_len, coder.lzma_len
    );
    let delta = ablations::delta_coding(900, seed);
    println!(
        "semantic coding: absolute {:.2} Mbps vs delta {:.2} Mbps ({:.1}x for loss resilience)",
        delta.absolute_mbps,
        delta.delta_mbps,
        delta.absolute_bytes / delta.delta_bytes
    );
    for p in ablations::foveation_granularity(2_000, seed) {
        println!(
            "foveation ±{:>4.1}° → {:>7.0} mean triangles/frame",
            p.fovea_deg, p.mean_triangles
        );
    }
    let placement = ablations::placement();
    println!(
        "placement: initiator-near worst RTT {:.0} ms vs geo-distributed {:.0} ms",
        placement.initiator_worst_rtt_ms, placement.geo_worst_rtt_ms
    );
    let culling = ablations::semantic_culling(5_000, seed);
    println!(
        "visibility-aware delivery: {:.0}% uplink saving available",
        culling.saving_percent
    );
    println!("[ablations: {:.2}s]\n", start.elapsed().as_secs_f64());

    println!("--- Extensions (beyond the measured system) ---");
    let start = Instant::now();
    println!("{}", extensions::format_fec(&extensions::fec_under_loss(500, 2_000, seed)));
    println!(
        "{}",
        extensions::format_beyond_five(&extensions::beyond_five_users(15, seed))
    );
    println!("[extensions: {:.2}s]\n", start.elapsed().as_secs_f64());

    let par_total = wall.elapsed().as_secs_f64();

    // Speedup check: re-run the Figure 6 sweep pinned to one worker and
    // compare against the parallel wall-clock just measured.
    let start = Instant::now();
    let fig_par = figure6::run(30, seed);
    let par_secs = start.elapsed().as_secs_f64();
    visionsim_core::par::set_threads(Some(1));
    let start = Instant::now();
    let fig_seq = figure6::run(30, seed);
    let seq_secs = start.elapsed().as_secs_f64();
    visionsim_core::par::set_threads(None);
    assert_eq!(
        format!("{fig_par}"),
        format!("{fig_seq}"),
        "parallel output must be bit-identical to sequential"
    );
    println!(
        "=== done in {par_total:.1}s · figure6 sequential {seq_secs:.2}s vs parallel {par_secs:.2}s \
         ({:.1}x speedup, outputs bit-identical) ===",
        seq_secs / par_secs.max(1e-9)
    );
}
