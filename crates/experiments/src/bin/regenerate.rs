//! Regenerate every table and figure of the paper in one supervised run.
//!
//! ```sh
//! cargo run --release -p visionsim-experiments --bin regenerate \
//!     [seed] [--resume] [--only <artifact>]
//! ```
//!
//! Each artifact runs in a panic-isolated cell and lands in
//! `artifacts/<name>.txt` (atomic rename) with a checksummed
//! `manifest.json` beside it. A panicking or hung artifact is quarantined
//! — the rest still complete — and the process exits non-zero with a
//! summary naming the failed cells and their seeds. `--resume` skips
//! artifacts already on disk whose checksum verifies against a same-seed
//! manifest, so a crashed or partially-failed run picks up where it left
//! off.
//!
//! Artifact files are byte-identical at any thread count and with the
//! sanitizer on or off; wall-clock timings go only to stdout and the
//! manifest. The run ends with a sequential-vs-parallel speedup line for
//! the Figure 6 sweep (stdout only, see `core::par`).
//!
//! With `VISIONSIM_METRICS=1` each artifact also writes a deterministic
//! `<name>.metrics.json` sidecar; with `VISIONSIM_TRACE=1` it writes a
//! `<name>.trace.bin` flight-recorder image readable by `trace_dump`.
//! `--only <artifact>` runs a single artifact (the CI trace smoke).

use std::process::ExitCode;
use std::time::Instant;
use visionsim_experiments::harness::{self, HarnessConfig};
use visionsim_experiments::figure6;

fn main() -> ExitCode {
    let mut seed = 2024u64;
    let mut resume = false;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--resume" => resume = true,
            "--only" => {
                let Some(name) = args.next() else {
                    eprintln!("--only requires an artifact name");
                    return ExitCode::from(2);
                };
                if !harness::registry().iter().any(|s| s.name == name) {
                    let valid: Vec<&str> =
                        harness::registry().iter().map(|s| s.name).collect();
                    eprintln!("unknown artifact {name:?}; valid names: {}", valid.join(", "));
                    return ExitCode::from(2);
                }
                only = Some(name);
            }
            other => {
                if let Ok(s) = other.parse() {
                    seed = s;
                } else {
                    eprintln!("usage: regenerate [seed] [--resume] [--only <artifact>]");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let mut cfg = HarnessConfig::new(seed);
    cfg.resume = resume;
    cfg.only = only.clone();
    let wall = Instant::now();
    println!(
        "=== visionsim: regenerating all paper artifacts (seed {seed}, {} threads{}) ===\n",
        visionsim_core::par::threads(),
        if resume { ", resume" } else { "" }
    );

    let outcomes = harness::run_all(&cfg);
    let (summary, ok) = harness::summarize(&outcomes);
    print!("{summary}");

    let violations = visionsim_core::sanitizer::total();
    if violations > 0 {
        println!("\nsanitizer: {violations} invariant violation(s) recorded:");
        for v in visionsim_core::sanitizer::take().iter().take(20) {
            println!("  {v}");
        }
    }

    let par_total = wall.elapsed().as_secs_f64();

    // A single-artifact run is a smoke, not a full regeneration: skip the
    // speedup epilogue.
    if only.is_some() {
        println!("=== done in {par_total:.1}s ===");
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    // Track the whole-run wall-clock trajectory (ROADMAP item 2's
    // residual) in BENCH.json. Wall class: no per_sec, so the ci.sh
    // throughput gate ignores it; partial/failed runs record nothing.
    if ok && !resume {
        harness::record_wall_bench("regenerate/wall", par_total);
    }

    // Speedup check: re-run the Figure 6 sweep pinned to one worker and
    // compare against the parallel wall-clock just measured. Stdout-only;
    // artifacts on disk are untouched by this epilogue.
    let start = Instant::now();
    let fig_par = figure6::run(30, seed);
    let par_secs = start.elapsed().as_secs_f64();
    visionsim_core::par::set_threads(Some(1));
    let start = Instant::now();
    let fig_seq = figure6::run(30, seed);
    let seq_secs = start.elapsed().as_secs_f64();
    visionsim_core::par::set_threads(None);
    assert_eq!(
        format!("{fig_par}"),
        format!("{fig_seq}"),
        "parallel output must be bit-identical to sequential"
    );
    println!(
        "=== done in {par_total:.1}s · figure6 sequential {seq_secs:.2}s vs parallel {par_secs:.2}s \
         ({:.1}x speedup, outputs bit-identical) ===",
        seq_secs / par_secs.max(1e-9)
    );

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
