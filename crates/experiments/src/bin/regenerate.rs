//! Regenerate every table and figure of the paper in one run.
//!
//! ```sh
//! cargo run --release -p visionsim-experiments --bin regenerate
//! ```

use visionsim_experiments::*;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024u64);
    println!("=== visionsim: regenerating all paper artifacts (seed {seed}) ===\n");

    println!("--- Table 1 ---");
    let t1 = table1::run(10, seed);
    println!("{t1}");
    println!("max σ = {:.2} ms (paper: <7 ms)\n", t1.max_std());

    println!("--- Figure 4 ---");
    println!("{}", figure4::run(3, 30, seed));

    println!("--- §4.3: What is being delivered? ---");
    println!("{}", mesh_streaming::run(6, seed));
    println!("{}", display_latency::run(500, seed));
    println!("{}", keypoint_rate::run(2_000, seed));
    println!("{}", rate_adaptation::run(15, seed));

    println!("--- Figure 5 ---");
    println!("{}", figure5::run(500, seed));

    println!("--- §4.1 server discovery (methodology) ---");
    println!("{}", discovery::run(24, 5, seed));

    println!("--- §4.1 protocols ---");
    println!("{}", protocols::run(10, seed));

    println!("--- Motion-to-photon vs placement ---");
    println!("{}", motion_to_photon::run(15, seed));

    println!("--- Figure 6 ---");
    println!("{}", figure6::run(30, seed));

    println!("--- Ablations ---");
    let coder = ablations::entropy_coder(200_000, seed);
    println!(
        "entropy coder on {} B residuals: rANS {} B vs LZ+range {} B",
        coder.input_len, coder.rans_len, coder.lzma_len
    );
    let delta = ablations::delta_coding(900, seed);
    println!(
        "semantic coding: absolute {:.2} Mbps vs delta {:.2} Mbps ({:.1}x for loss resilience)",
        delta.absolute_mbps,
        delta.delta_mbps,
        delta.absolute_bytes / delta.delta_bytes
    );
    for p in ablations::foveation_granularity(2_000, seed) {
        println!(
            "foveation ±{:>4.1}° → {:>7.0} mean triangles/frame",
            p.fovea_deg, p.mean_triangles
        );
    }
    let placement = ablations::placement();
    println!(
        "placement: initiator-near worst RTT {:.0} ms vs geo-distributed {:.0} ms",
        placement.initiator_worst_rtt_ms, placement.geo_worst_rtt_ms
    );
    let culling = ablations::semantic_culling(5_000, seed);
    println!(
        "visibility-aware delivery: {:.0}% uplink saving available",
        culling.saving_percent
    );

    println!("\n--- Extensions (beyond the measured system) ---");
    println!("{}", extensions::format_fec(&extensions::fec_under_loss(500, 2_000, seed)));
    println!(
        "{}",
        extensions::format_beyond_five(&extensions::beyond_five_users(15, seed))
    );
}
