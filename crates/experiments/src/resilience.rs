//! Chaos drill: scheduled mid-session faults and how each app survives.
//!
//! The paper measures steady-state behaviour and one static impairment at
//! a time (`tc tbf`, §4.3). This runner measures the *transient* story:
//! a fault is injected mid-session — burst loss, a rate cliff, a delay
//! spike, a radio flap, or the assigned SFU site going down — and the
//! session's recovery is scored with the metrics operators actually use:
//! time-to-detect, time-to-recover (MTTR), flap count, and degraded
//! seconds. The spatial-persona column exercises the degradation ladder
//! (spatial → 2D fallback with hysteresis); the 2D column exercises the
//! quality ladder of an adaptive app.

use crate::report::render_table;
use visionsim_capture::recovery::RecoveryTracker;
use visionsim_core::par::{derive_seed, par_map};
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::DataRate;
use visionsim_device::device::DeviceKind;
use visionsim_geo::cities;
use visionsim_geo::sites::Provider;
use visionsim_net::fault::{FaultPlan, GeConfig};
use visionsim_vca::adaptation::PersonaMode;
use visionsim_vca::session::{SessionConfig, SessionRunner};

/// The fault kinds the drill sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrillFault {
    /// Gilbert–Elliott burst loss on the uplink.
    BurstLoss,
    /// Uplink rate collapses, then restores.
    RateCliff,
    /// A propagation-delay spike (bufferbloat / rerouting), then restores.
    DelaySpike,
    /// The access radio drops entirely for the hold, both directions.
    LinkFlap,
    /// The assigned SFU site dies; clients must fail over.
    ServerFailover,
}

impl DrillFault {
    /// All faults, in sweep order.
    pub const ALL: [DrillFault; 5] = [
        DrillFault::BurstLoss,
        DrillFault::RateCliff,
        DrillFault::DelaySpike,
        DrillFault::LinkFlap,
        DrillFault::ServerFailover,
    ];

    fn label(self) -> &'static str {
        match self {
            DrillFault::BurstLoss => "burst loss",
            DrillFault::RateCliff => "rate cliff",
            DrillFault::DelaySpike => "delay spike",
            DrillFault::LinkFlap => "link flap",
            DrillFault::ServerFailover => "server failover",
        }
    }
}

/// How hard the fault hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Survivable without much drama.
    Mild,
    /// Deep into degraded territory.
    Severe,
}

impl Severity {
    /// Both severities, in sweep order.
    pub const ALL: [Severity; 2] = [Severity::Mild, Severity::Severe];

    fn label(self) -> &'static str {
        match self {
            Severity::Mild => "mild",
            Severity::Severe => "severe",
        }
    }

    /// Episode length for episodic faults.
    fn hold(self) -> SimDuration {
        match self {
            Severity::Mild => SimDuration::from_secs(2),
            Severity::Severe => SimDuration::from_secs(4),
        }
    }
}

/// Virtual instant the fault is injected.
const FAULT_AT_SECS: u64 = 4;

/// Build the fault plan for one drill cell, attached to participant 0's
/// uplink (or their SFU site for [`DrillFault::ServerFailover`]).
pub fn drill_plan(fault: DrillFault, severity: Severity) -> FaultPlan {
    let at = SimTime::from_millis(FAULT_AT_SECS * 1_000);
    let hold = severity.hold();
    match (fault, severity) {
        (DrillFault::BurstLoss, Severity::Mild) => FaultPlan::burst_loss(
            at,
            GeConfig {
                good_to_bad: 0.02,
                bad_to_good: 0.08,
                loss_good: 0.0,
                loss_bad: 0.5,
            },
            hold,
        ),
        (DrillFault::BurstLoss, Severity::Severe) => FaultPlan::burst_loss(
            at,
            GeConfig {
                good_to_bad: 0.05,
                bad_to_good: 0.02,
                loss_good: 0.0,
                loss_bad: 0.9,
            },
            hold,
        ),
        (DrillFault::RateCliff, Severity::Mild) => {
            FaultPlan::rate_cliff(at, DataRate::from_kbps(600), hold)
        }
        (DrillFault::RateCliff, Severity::Severe) => {
            FaultPlan::rate_cliff(at, DataRate::from_kbps(150), hold)
        }
        (DrillFault::DelaySpike, Severity::Mild) => {
            FaultPlan::delay_spike(at, SimDuration::from_millis(300), hold)
        }
        (DrillFault::DelaySpike, Severity::Severe) => {
            FaultPlan::delay_spike(at, SimDuration::from_millis(1_000), hold)
        }
        (DrillFault::LinkFlap, _) => FaultPlan::flap(at, hold),
        (DrillFault::ServerFailover, Severity::Mild) => {
            FaultPlan::server_outage(at, SimDuration::from_secs(1), SimDuration::from_millis(500))
        }
        (DrillFault::ServerFailover, Severity::Severe) => {
            FaultPlan::server_outage(at, SimDuration::from_secs(2), SimDuration::from_secs(1))
        }
    }
}

/// One cell of the drill matrix.
#[derive(Debug)]
pub struct DrillCell {
    /// Which fault.
    pub fault: DrillFault,
    /// How hard.
    pub severity: Severity,
    /// True for the spatial FaceTime AVP–AVP profile, false for 2D Webex
    /// AVP–MacBook.
    pub spatial: bool,
    /// Fraction of the session the health signal was up (spatial persona
    /// rendered, or 2D quality ≥ 0.5).
    pub healthy_fraction: f64,
    /// Fault injection → first unhealthy sample, ms.
    pub detect_ms: Option<f64>,
    /// Fault injection → start of the final healthy run, ms (MTTR).
    pub recover_ms: Option<f64>,
    /// Healthy→unhealthy transitions over the whole session.
    pub flaps: u32,
    /// Seconds spent unhealthy.
    pub degraded_secs: f64,
    /// Spatial→2D ladder fallbacks (0 for the 2D profile).
    pub fallbacks: u32,
    /// SFU failovers completed during the session.
    pub failovers: usize,
}

/// The full drill matrix.
#[derive(Debug)]
pub struct Resilience {
    /// Cells in sweep order: fault × severity × {spatial, 2D}.
    pub cells: Vec<DrillCell>,
}

/// Run the drill with sessions of `secs` seconds (14+ recommended: fault
/// at t=4 s, up to 4 s of hold, then room to recover).
pub fn run(secs: u64, seed: u64) -> Resilience {
    let sf = cities::by_name("San Francisco, CA").expect("registry city");
    let nyc = cities::by_name("New York, NY").expect("registry city");
    let mut specs: Vec<(DrillFault, Severity, bool)> = Vec::new();
    for fault in DrillFault::ALL {
        for severity in Severity::ALL {
            for spatial in [true, false] {
                specs.push((fault, severity, spatial));
            }
        }
    }
    let cells = par_map(
        specs.into_iter().enumerate().collect::<Vec<_>>(),
        move |(i, (fault, severity, spatial))| {
            let mut cfg = if spatial {
                SessionConfig::two_party(
                    Provider::FaceTime,
                    (DeviceKind::VisionPro, sf),
                    (DeviceKind::VisionPro, nyc),
                    derive_seed(seed, "resilience", i as u64),
                )
            } else {
                SessionConfig::two_party(
                    Provider::Webex,
                    (DeviceKind::VisionPro, sf),
                    (DeviceKind::MacBook, nyc),
                    derive_seed(seed, "resilience", i as u64),
                )
            };
            cfg.duration = SimDuration::from_secs(secs);
            cfg.fault_plans = vec![(0, drill_plan(fault, severity))];
            let out = SessionRunner::new(cfg).run();

            // Health signal: what participant 1 sees of participant 0's
            // faulted stream. Spatial → the degradation ladder's mode;
            // 2D → the sender's quality ladder staying above half rate.
            let health: Vec<(SimTime, bool)> = if spatial {
                out.mode_log[1]
                    .iter()
                    .map(|&(at, m)| (at, m == PersonaMode::Spatial))
                    .collect()
            } else {
                out.quality_log[0]
                    .iter()
                    .map(|&(at, q)| (at, q >= 0.5))
                    .collect()
            };
            let healthy_fraction = if health.is_empty() {
                1.0
            } else {
                health.iter().filter(|&&(_, h)| h).count() as f64 / health.len() as f64
            };
            let report = RecoveryTracker::from_samples(health)
                .report(SimTime::from_millis(FAULT_AT_SECS * 1_000));
            DrillCell {
                fault,
                severity,
                spatial,
                healthy_fraction,
                detect_ms: report.time_to_detect.map(|d| d.as_millis_f64()),
                recover_ms: report.time_to_recover.map(|d| d.as_millis_f64()),
                flaps: report.flaps,
                degraded_secs: report.degraded_secs,
                fallbacks: if spatial { out.fallbacks[1] } else { 0 },
                failovers: out.failovers.len(),
            }
        },
    );
    Resilience { cells }
}

impl Resilience {
    /// Cells that dipped and came back — the drill's headline count.
    pub fn recovered_cells(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.detect_ms.is_some() && c.recover_ms.is_some())
            .count()
    }
}

fn fmt_opt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.0}"),
        None => "—".to_string(),
    }
}

impl std::fmt::Display for Resilience {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "fault".to_string(),
            "severity".to_string(),
            "app".to_string(),
            "healthy".to_string(),
            "detect (ms)".to_string(),
            "recover (ms)".to_string(),
            "flaps".to_string(),
            "degraded (s)".to_string(),
            "fallbacks".to_string(),
            "failovers".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.fault.label().to_string(),
                    c.severity.label().to_string(),
                    if c.spatial { "facetime spatial" } else { "webex 2d" }.to_string(),
                    format!("{:.0}%", c.healthy_fraction * 100.0),
                    fmt_opt_ms(c.detect_ms),
                    fmt_opt_ms(c.recover_ms),
                    c.flaps.to_string(),
                    format!("{:.1}", c.degraded_secs),
                    c.fallbacks.to_string(),
                    c.failovers.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                "Chaos drill: mid-session faults, recovery metrics per cell",
                &header,
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_completes_without_aborting() {
        let r = run(14, 77);
        assert_eq!(r.cells.len(), DrillFault::ALL.len() * Severity::ALL.len() * 2);
        for c in &r.cells {
            assert!(
                (0.0..=1.0).contains(&c.healthy_fraction),
                "{c:?} fraction out of range"
            );
            // Degrade, never abort: a session always produces a report.
            assert!(c.degraded_secs >= 0.0);
        }
    }

    #[test]
    fn severe_burst_loss_dips_the_spatial_persona_then_recovers() {
        let r = run(14, 78);
        let cell = r
            .cells
            .iter()
            .find(|c| {
                c.fault == DrillFault::BurstLoss && c.severity == Severity::Severe && c.spatial
            })
            .expect("cell exists");
        assert!(cell.detect_ms.is_some(), "severe burst loss went unnoticed");
        assert!(
            cell.recover_ms.is_some(),
            "persona never recovered: {cell:?}"
        );
        // Hysteresis: one clean fallback episode, not oscillation.
        assert!(cell.fallbacks <= 2, "ladder flapped: {cell:?}");
    }

    #[test]
    fn server_failover_reattaches_to_a_live_site() {
        let r = run(14, 79);
        for c in r.cells.iter().filter(|c| c.fault == DrillFault::ServerFailover) {
            assert_eq!(c.failovers, 1, "expected exactly one failover: {c:?}");
        }
        // Non-server faults never trigger failover.
        for c in r.cells.iter().filter(|c| c.fault != DrillFault::ServerFailover) {
            assert_eq!(c.failovers, 0, "{c:?}");
        }
    }
}
