//! # visionsim-experiments
//!
//! One runner per table/figure of the paper, plus the §4.3 inline
//! experiments and the ablations DESIGN.md calls out. Every runner
//! produces a structured result implementing `Display` (printing rows in
//! the paper's presentation) and is exercised by a smoke test asserting
//! the paper's qualitative shape.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — server RTT matrix |
//! | [`figure4`] | Figure 4 — two-party throughput per app |
//! | [`figure5`] | Figure 5 — visibility-aware optimizations |
//! | [`figure6`] | Figure 6 — scalability, 2–5 users |
//! | [`mesh_streaming`] | §4.3 direct-3D-streaming bandwidth floor |
//! | [`display_latency`] | §4.3 display-latency vs injected delay |
//! | [`keypoint_rate`] | §4.3 keypoint-stream bandwidth |
//! | [`rate_adaptation`] | §4.3 the 700 kbps availability cliff |
//! | [`protocols`] | §4.1 protocol findings + anycast check |
//! | [`ablations`] | design-choice ablations (coder, delta mode, placement, semantic culling) |
//! | [`extensions`] | beyond the measured system: FEC for the semantic stream, >5-user scaling |
//! | [`motion_to_photon`] | end-to-end latency vs placement against the 100 ms QoE threshold |
//! | [`discovery`] | the §4.1 methodology itself: fleet discovery from randomized sessions |
//! | [`resilience`] | chaos drill: mid-session faults × severity × app, recovery metrics |
//! | [`congestion`] | closed-loop congestion: fairness, cross-traffic, contention, handover |
//! | [`storms`] | failover storms: admission control, breakers, reconnect convergence |
//! | [`fleet`] | 100k-session global fleet on the sharded conservative-PDES engine |

pub mod ablations;
pub mod congestion;
pub mod discovery;
pub mod harness;
pub mod display_latency;
pub mod extensions;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod fleet;
pub mod keypoint_rate;
pub mod mesh_streaming;
pub mod motion_to_photon;
pub mod protocols;
pub mod rate_adaptation;
pub mod report;
pub mod resilience;
pub mod storms;
pub mod table1;
