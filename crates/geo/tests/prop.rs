//! Property-based tests for geodesy and the latency model.

use proptest::prelude::*;
use visionsim_geo::coords::{GeoPoint, EARTH_RADIUS_KM};
use visionsim_geo::geodb::GeoDb;
use visionsim_geo::propagation::LatencyModel;
use visionsim_geo::regions::Region;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-90.0f64..=90.0, -180.0f64..=180.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    /// Distance is a metric: non-negative, symmetric, zero iff same point
    /// (up to fp), and bounded by half the circumference.
    #[test]
    fn distance_is_a_metric(a in arb_point(), b in arb_point()) {
        let d = a.distance_km(&b);
        prop_assert!(d >= 0.0);
        prop_assert!((d - b.distance_km(&a)).abs() < 1e-9);
        prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
        prop_assert!(a.distance_km(&a) < 1e-9);
    }

    /// Triangle inequality.
    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let direct = a.distance_km(&c);
        let via = a.distance_km(&b) + b.distance_km(&c);
        prop_assert!(direct <= via + 1e-6, "{direct} > {via}");
    }

    /// Every point classifies into exactly one region without panicking.
    #[test]
    fn classification_is_total(p in arb_point()) {
        let r = Region::of(&p);
        prop_assert!(Region::ALL.contains(&r));
    }

    /// Path latency: deterministic, symmetric, at least the speed-of-light
    /// floor, and monotone-boundable by inflation limits.
    #[test]
    fn path_latency_bounds(a in arb_point(), b in arb_point(), overhead in 0.0f64..10.0) {
        let m = LatencyModel::default();
        let p1 = m.path(&a, &b, overhead);
        let p2 = m.path(&b, &a, overhead);
        prop_assert_eq!(p1.inflation, p2.inflation);
        prop_assert!((p1.base_rtt_ms - p2.base_rtt_ms).abs() < 1e-9);
        let d = a.distance_km(&b);
        let floor = 2.0 * d * m.inflation_min / 200_000.0 * 1_000.0 + m.access_overhead_ms + overhead;
        let ceil = 2.0 * d * m.inflation_max / 200_000.0 * 1_000.0 + m.access_overhead_ms + overhead;
        prop_assert!(p1.base_rtt_ms >= floor - 1e-6);
        prop_assert!(p1.base_rtt_ms <= ceil + 1e-6);
    }

    /// Address allocation: unique addresses, lookups return the right
    /// record, prefixes encode regions.
    #[test]
    fn geodb_allocation_invariants(points in prop::collection::vec(arb_point(), 1..50)) {
        let mut db = GeoDb::new();
        let mut addrs = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let a = db.allocate(&format!("org{i}"), "city", *p);
            prop_assert!(!addrs.contains(&a), "duplicate address");
            addrs.push(a);
        }
        prop_assert_eq!(db.len(), points.len());
        for (i, (a, p)) in addrs.iter().zip(&points).enumerate() {
            let rec = db.lookup(*a).expect("registered");
            prop_assert_eq!(&rec.org, &format!("org{i}"));
            prop_assert_eq!(rec.region, Region::of(p));
            prop_assert_eq!(db.region_of_prefix(*a), Some(rec.region));
        }
    }
}
