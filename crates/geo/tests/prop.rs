//! Randomized property tests for geodesy and the latency model, driven by
//! deterministic SimRng cases.

use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_geo::coords::{GeoPoint, EARTH_RADIUS_KM};
use visionsim_geo::geodb::GeoDb;
use visionsim_geo::propagation::LatencyModel;
use visionsim_geo::regions::Region;

const CASES: u64 = 256;

fn case_rng(label: &str, i: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(0x6E0_6E0, label, i))
}

fn point(rng: &mut SimRng) -> GeoPoint {
    GeoPoint::new(rng.uniform_range(-90.0, 90.0), rng.uniform_range(-180.0, 180.0))
}

/// Distance is a metric: non-negative, symmetric, zero iff same point
/// (up to fp), and bounded by half the circumference.
#[test]
fn distance_is_a_metric() {
    for i in 0..CASES {
        let mut rng = case_rng("distance_metric", i);
        let a = point(&mut rng);
        let b = point(&mut rng);
        let d = a.distance_km(&b);
        assert!(d >= 0.0);
        assert!((d - b.distance_km(&a)).abs() < 1e-9);
        assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
        assert!(a.distance_km(&a) < 1e-9);
    }
}

/// Triangle inequality.
#[test]
fn triangle_inequality() {
    for i in 0..CASES {
        let mut rng = case_rng("triangle", i);
        let a = point(&mut rng);
        let b = point(&mut rng);
        let c = point(&mut rng);
        let direct = a.distance_km(&c);
        let via = a.distance_km(&b) + b.distance_km(&c);
        assert!(direct <= via + 1e-6, "{direct} > {via}");
    }
}

/// Every point classifies into exactly one region without panicking.
#[test]
fn classification_is_total() {
    for i in 0..CASES {
        let mut rng = case_rng("classification", i);
        let p = point(&mut rng);
        let r = Region::of(&p);
        assert!(Region::ALL.contains(&r));
    }
}

/// Path latency: deterministic, symmetric, at least the speed-of-light
/// floor, and monotone-boundable by inflation limits.
#[test]
fn path_latency_bounds() {
    for i in 0..CASES {
        let mut rng = case_rng("path_latency", i);
        let a = point(&mut rng);
        let b = point(&mut rng);
        let overhead = rng.uniform_range(0.0, 10.0);
        let m = LatencyModel::default();
        let p1 = m.path(&a, &b, overhead);
        let p2 = m.path(&b, &a, overhead);
        assert_eq!(p1.inflation, p2.inflation);
        assert!((p1.base_rtt_ms - p2.base_rtt_ms).abs() < 1e-9);
        let d = a.distance_km(&b);
        let floor = 2.0 * d * m.inflation_min / 200_000.0 * 1_000.0 + m.access_overhead_ms + overhead;
        let ceil = 2.0 * d * m.inflation_max / 200_000.0 * 1_000.0 + m.access_overhead_ms + overhead;
        assert!(p1.base_rtt_ms >= floor - 1e-6);
        assert!(p1.base_rtt_ms <= ceil + 1e-6);
    }
}

/// Address allocation: unique addresses, lookups return the right
/// record, prefixes encode regions.
#[test]
fn geodb_allocation_invariants() {
    for i in 0..64 {
        let mut rng = case_rng("geodb", i);
        let n = rng.uniform_u64(1, 49) as usize;
        let points: Vec<GeoPoint> = (0..n).map(|_| point(&mut rng)).collect();
        let mut db = GeoDb::new();
        let mut addrs = Vec::new();
        for (k, p) in points.iter().enumerate() {
            let a = db.allocate(&format!("org{k}"), "city", *p);
            assert!(!addrs.contains(&a), "duplicate address");
            addrs.push(a);
        }
        assert_eq!(db.len(), points.len());
        for (k, (a, p)) in addrs.iter().zip(&points).enumerate() {
            let rec = db.lookup(*a).expect("registered");
            assert_eq!(&rec.org, &format!("org{k}"));
            assert_eq!(rec.region, Region::of(p));
            assert_eq!(db.region_of_prefix(*a), Some(rec.region));
        }
    }
}
