//! # visionsim-geo
//!
//! Geography substrate for the telepresence simulator: coordinates and
//! great-circle distance, the region taxonomy the paper uses (Western /
//! Middle / Eastern US, plus intercontinental regions for the §4.1
//! discussion), a registry of vantage cities and provider server sites, a
//! latency/propagation model, and a MaxMind-style geolocation database
//! substitute.
//!
//! The paper's Table 1 measures RTT between three test users (one per US
//! region) and each provider's US server fleet. Everything needed to
//! regenerate that table from mechanism — city coordinates, fiber
//! propagation speed, route inflation, access overhead — lives here.

pub mod cities;
pub mod coords;
pub mod geodb;
pub mod propagation;
pub mod regions;
pub mod sites;

pub use cities::City;
pub use coords::GeoPoint;
pub use geodb::{GeoDb, GeoRecord, NetAddr};
pub use propagation::{LatencyModel, PathLatency};
pub use regions::Region;
pub use sites::{Provider, ServerSite, SiteRegistry};
