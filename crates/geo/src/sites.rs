//! Provider server-site inventory.
//!
//! §4.1: "FaceTime, Zoom, Webex, and Teams operate four, two, three, and one
//! server(s) in the US, respectively." The registry reproduces those fleets
//! at plausible datacenter locations, labelled the way Table 1 labels them
//! (W / M1 / M2 / E). It also offers a geo-distributed fleet implementing
//! the paper's proposed fix (each client connects to a nearby server, with
//! inter-server links on a private backbone).

use crate::cities::City;
use crate::coords::GeoPoint;
use crate::regions::Region;
use std::fmt;

/// A videoconferencing provider under study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Provider {
    /// Apple FaceTime.
    FaceTime,
    /// Zoom Meetings.
    Zoom,
    /// Cisco Webex.
    Webex,
    /// Microsoft Teams.
    Teams,
}

impl Provider {
    /// All four providers, in the paper's column order.
    pub const ALL: [Provider; 4] = [
        Provider::FaceTime,
        Provider::Zoom,
        Provider::Webex,
        Provider::Teams,
    ];

    /// Fixed per-provider server processing overhead added to every RTT
    /// sample, in milliseconds. Calibrated so that same-region RTTs land in
    /// the bands of Table 1 (Teams' noticeably higher same-region RTT is
    /// modelled as edge-distant placement plus heavier frontend processing).
    pub fn server_overhead_ms(&self) -> f64 {
        match self {
            Provider::FaceTime => 2.0,
            Provider::Zoom => 3.5,
            Provider::Webex => 2.5,
            Provider::Teams => 6.0,
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Provider::FaceTime => "FaceTime",
            Provider::Zoom => "Zoom",
            Provider::Webex => "Webex",
            Provider::Teams => "Teams",
        };
        write!(f, "{name}")
    }
}

/// One provider server site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerSite {
    /// Owning provider.
    pub provider: Provider,
    /// Table 1 column label ("W", "M1", "M2", "E", "M").
    pub label: &'static str,
    /// Datacenter city.
    pub city: City,
}

impl ServerSite {
    /// The region the site sits in.
    pub fn region(&self) -> Region {
        self.city.region()
    }

    /// Site location.
    pub fn location(&self) -> GeoPoint {
        self.city.location
    }
}

/// Capacity envelope of one SFU site. The paper's Table 1 treats every
/// site as an infinite sink; production SFUs gate admission on capacity
/// (ITEM, Nguyen et al.), so the resilience layer gives each site a
/// finite envelope and an admission policy over it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteCapacity {
    /// Maximum concurrently hosted sessions (conference groups).
    pub max_sessions: u32,
    /// Maximum concurrently attached participants across all sessions.
    pub max_participants: u32,
    /// While a site is observed *Degraded*, admission closes early: new
    /// joins are refused once utilization reaches this fraction of
    /// `max_participants` (headroom kept for the sessions already there).
    pub degraded_admit_frac: f64,
}

impl SiteCapacity {
    /// A mid-size regional SFU point of presence.
    pub fn regional() -> Self {
        SiteCapacity {
            max_sessions: 64,
            max_participants: 256,
            degraded_admit_frac: 0.7,
        }
    }

    /// A hyperscale point of presence for fleet-scale runs: what one
    /// site of a planet-wide SFU deployment is provisioned for. Sized so
    /// a 16-site fleet carries ≥ 100k concurrent sessions with the hot
    /// sites running into the envelope (rejections are part of the
    /// workload, not a failure mode).
    pub fn hyperscale() -> Self {
        SiteCapacity {
            max_sessions: 9_000,
            max_participants: 50_000,
            degraded_admit_frac: 0.85,
        }
    }

    /// Utilization of the participant envelope for `attached` users.
    pub fn utilization(&self, attached: u32) -> f64 {
        if self.max_participants == 0 {
            return 1.0;
        }
        attached as f64 / self.max_participants as f64
    }

    /// Participant headroom left while healthy.
    pub fn headroom(&self, attached: u32) -> u32 {
        self.max_participants.saturating_sub(attached)
    }
}

impl Default for SiteCapacity {
    fn default() -> Self {
        Self::regional()
    }
}

const fn site(provider: Provider, label: &'static str, name: &'static str, lat: f64, lon: f64) -> ServerSite {
    ServerSite {
        provider,
        label,
        city: City {
            name,
            location: GeoPoint {
                lat_deg: lat,
                lon_deg: lon,
            },
        },
    }
}

/// The per-provider US fleets observed by the paper.
#[derive(Clone, Debug)]
pub struct SiteRegistry {
    sites: Vec<ServerSite>,
}

impl Default for SiteRegistry {
    fn default() -> Self {
        Self::us_fleet()
    }
}

impl SiteRegistry {
    /// The US server fleets as counted in §4.1: FaceTime 4, Zoom 2,
    /// Webex 3, Teams 1.
    pub fn us_fleet() -> Self {
        let sites = vec![
            site(Provider::FaceTime, "W", "San Jose, CA", 37.3382, -121.8863),
            site(Provider::FaceTime, "M1", "Elk Grove Village, IL", 42.0040, -87.9703),
            site(Provider::FaceTime, "M2", "Columbus, OH", 39.9612, -82.9988),
            site(Provider::FaceTime, "E", "Ashburn, VA", 39.0438, -77.4874),
            site(Provider::Zoom, "W", "San Jose, CA", 37.3382, -121.8863),
            site(Provider::Zoom, "E", "Ashburn, VA", 39.0438, -77.4874),
            site(Provider::Webex, "W", "Santa Clara, CA", 37.3541, -121.9552),
            site(Provider::Webex, "M", "Chicago, IL", 41.8500, -87.6500),
            site(Provider::Webex, "E", "Richmond, VA", 37.5407, -77.4360),
            site(Provider::Teams, "W", "Quincy, WA", 47.2343, -119.8526),
        ];
        SiteRegistry { sites }
    }

    /// A hypothetical geo-distributed fleet (the §4.1 proposed fix): one
    /// site per region for a single provider, used by the placement
    /// ablation.
    pub fn geo_distributed(provider: Provider) -> Self {
        let sites = vec![
            site(provider, "W", "San Jose, CA", 37.3382, -121.8863),
            site(provider, "M", "Dallas, TX", 32.7767, -96.7970),
            site(provider, "E", "Ashburn, VA", 39.0438, -77.4874),
            site(provider, "EU", "Frankfurt, DE", 50.1109, 8.6821),
            site(provider, "AS", "Tokyo, JP", 35.6762, 139.6503),
        ];
        SiteRegistry { sites }
    }

    /// A planet-wide 16-site fleet for the 100k-session sharded runs:
    /// the Table 1 US map extended to every inhabited continent. Every
    /// pair of sites is ≥ ~900 km apart, so the minimum backbone one-way
    /// latency — the conservative-PDES lookahead — stays in the
    /// milliseconds, keeping barrier rounds coarse enough to parallelize.
    pub fn global_fleet() -> Self {
        let sites = vec![
            site(Provider::FaceTime, "US-W", "San Jose, CA", 37.3382, -121.8863),
            site(Provider::FaceTime, "US-NW", "Seattle, WA", 47.6062, -122.3321),
            site(Provider::FaceTime, "US-S", "Dallas, TX", 32.7767, -96.7970),
            site(Provider::FaceTime, "US-M", "Chicago, IL", 41.8500, -87.6500),
            site(Provider::FaceTime, "US-E", "Ashburn, VA", 39.0438, -77.4874),
            site(Provider::FaceTime, "US-SE", "Miami, FL", 25.7617, -80.1918),
            site(Provider::FaceTime, "MX", "Mexico City, MX", 19.4326, -99.1332),
            site(Provider::FaceTime, "SA", "Sao Paulo, BR", -23.5505, -46.6333),
            site(Provider::FaceTime, "EU-W", "London, UK", 51.5074, -0.1278),
            site(Provider::FaceTime, "EU-S", "Madrid, ES", 40.4168, -3.7038),
            site(Provider::FaceTime, "EU-N", "Stockholm, SE", 59.3293, 18.0686),
            site(Provider::FaceTime, "AF", "Johannesburg, ZA", -26.2041, 28.0473),
            site(Provider::FaceTime, "AS-S", "Mumbai, IN", 19.0760, 72.8777),
            site(Provider::FaceTime, "AS-SE", "Singapore, SG", 1.3521, 103.8198),
            site(Provider::FaceTime, "AS-E", "Tokyo, JP", 35.6762, 139.6503),
            site(Provider::FaceTime, "OC", "Sydney, AU", -33.8688, 151.2093),
        ];
        SiteRegistry { sites }
    }

    /// All sites.
    pub fn sites(&self) -> &[ServerSite] {
        &self.sites
    }

    /// Sites owned by `provider`, in registry order (Table 1 column order).
    pub fn for_provider(&self, provider: Provider) -> Vec<ServerSite> {
        self.sites
            .iter()
            .filter(|s| s.provider == provider)
            .copied()
            .collect()
    }

    /// The site of `provider` geographically closest to `point`. This is
    /// the assignment the paper observed: "all platforms consistently assign
    /// a server that is closest to the initiating user."
    pub fn nearest(&self, provider: Provider, point: &GeoPoint) -> Option<ServerSite> {
        self.for_provider(provider)
            .into_iter()
            .min_by(|a, b| {
                let da = a.location().distance_km(point);
                let db = b.location().distance_km(point);
                da.partial_cmp(&db).expect("finite distances")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities;

    #[test]
    fn fleet_counts_match_section_4_1() {
        let reg = SiteRegistry::us_fleet();
        assert_eq!(reg.for_provider(Provider::FaceTime).len(), 4);
        assert_eq!(reg.for_provider(Provider::Zoom).len(), 2);
        assert_eq!(reg.for_provider(Provider::Webex).len(), 3);
        assert_eq!(reg.for_provider(Provider::Teams).len(), 1);
    }

    #[test]
    fn facetime_labels_match_table1_columns() {
        let labels: Vec<_> = SiteRegistry::us_fleet()
            .for_provider(Provider::FaceTime)
            .iter()
            .map(|s| s.label)
            .collect();
        assert_eq!(labels, vec!["W", "M1", "M2", "E"]);
    }

    #[test]
    fn nearest_site_for_west_initiator_is_west() {
        let reg = SiteRegistry::us_fleet();
        let sf = cities::by_name("San Francisco, CA").unwrap();
        for p in Provider::ALL {
            let s = reg.nearest(p, &sf.location).unwrap();
            assert_eq!(s.region(), Region::UsWest, "{p}");
        }
    }

    #[test]
    fn nearest_site_for_east_initiator_prefers_east_when_available() {
        let reg = SiteRegistry::us_fleet();
        let nyc = cities::by_name("New York, NY").unwrap();
        for p in [Provider::FaceTime, Provider::Zoom, Provider::Webex] {
            let s = reg.nearest(p, &nyc.location).unwrap();
            assert_eq!(s.region(), Region::UsEast, "{p}");
        }
        // Teams only has one (Western) US site, so even an Eastern
        // initiator lands on it.
        let t = reg.nearest(Provider::Teams, &nyc.location).unwrap();
        assert_eq!(t.region(), Region::UsWest);
    }

    #[test]
    fn geo_distributed_covers_regions() {
        let reg = SiteRegistry::geo_distributed(Provider::FaceTime);
        let regions: Vec<Region> = reg.sites().iter().map(|s| s.region()).collect();
        assert!(regions.contains(&Region::UsWest));
        assert!(regions.contains(&Region::UsMiddle));
        assert!(regions.contains(&Region::UsEast));
        assert!(regions.contains(&Region::Europe));
        assert!(regions.contains(&Region::AsiaEast));
    }

    #[test]
    fn global_fleet_spans_continents_with_milliseconds_of_lookahead() {
        let reg = SiteRegistry::global_fleet();
        let sites = reg.sites();
        assert_eq!(sites.len(), 16);
        // Distinct labels, so fleet reports are unambiguous.
        let mut labels: Vec<_> = sites.iter().map(|s| s.label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 16);
        // Every pair far enough apart that backbone one-way latency (the
        // PDES lookahead) is in the milliseconds.
        let model = crate::propagation::LatencyModel::default();
        let mut min_km = f64::MAX;
        let mut min_one_way_ns = u64::MAX;
        for (i, a) in sites.iter().enumerate() {
            for b in sites.iter().skip(i + 1) {
                let d = a.location().distance_km(&b.location());
                min_km = min_km.min(d);
                let ow = model.one_way(&a.location(), &b.location());
                min_one_way_ns = min_one_way_ns.min(ow.as_nanos());
            }
        }
        assert!(min_km > 900.0, "closest pair only {min_km:.0} km apart");
        assert!(
            min_one_way_ns > 4_000_000,
            "min one-way {min_one_way_ns} ns leaves no usable lookahead"
        );
    }

    #[test]
    fn hyperscale_envelope_covers_the_fleet_target() {
        let cap = SiteCapacity::hyperscale();
        // 16 sites x the envelope must clear the 100k-session /
        // 500k-participant fleet target with rejection headroom.
        assert!(cap.max_sessions as u64 * 16 > 100_000);
        assert!(cap.max_participants as u64 * 16 > 500_000);
        assert!(cap.degraded_admit_frac > 0.0 && cap.degraded_admit_frac <= 1.0);
    }

    #[test]
    fn capacity_utilization_and_headroom_are_consistent() {
        let cap = SiteCapacity {
            max_sessions: 4,
            max_participants: 10,
            degraded_admit_frac: 0.5,
        };
        assert_eq!(cap.utilization(0), 0.0);
        assert_eq!(cap.utilization(5), 0.5);
        assert_eq!(cap.utilization(10), 1.0);
        assert_eq!(cap.headroom(3), 7);
        assert_eq!(cap.headroom(12), 0);
        // A zero-size site is always saturated, never dividing by zero.
        let empty = SiteCapacity {
            max_sessions: 0,
            max_participants: 0,
            degraded_admit_frac: 0.5,
        };
        assert_eq!(empty.utilization(0), 1.0);
    }

    #[test]
    fn provider_overheads_are_positive_and_teams_is_highest() {
        let mut worst = (Provider::FaceTime, 0.0f64);
        for p in Provider::ALL {
            let o = p.server_overhead_ms();
            assert!(o > 0.0);
            if o > worst.1 {
                worst = (p, o);
            }
        }
        assert_eq!(worst.0, Provider::Teams);
    }
}
