//! Provider server-site inventory.
//!
//! §4.1: "FaceTime, Zoom, Webex, and Teams operate four, two, three, and one
//! server(s) in the US, respectively." The registry reproduces those fleets
//! at plausible datacenter locations, labelled the way Table 1 labels them
//! (W / M1 / M2 / E). It also offers a geo-distributed fleet implementing
//! the paper's proposed fix (each client connects to a nearby server, with
//! inter-server links on a private backbone).

use crate::cities::City;
use crate::coords::GeoPoint;
use crate::regions::Region;
use std::fmt;

/// A videoconferencing provider under study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Provider {
    /// Apple FaceTime.
    FaceTime,
    /// Zoom Meetings.
    Zoom,
    /// Cisco Webex.
    Webex,
    /// Microsoft Teams.
    Teams,
}

impl Provider {
    /// All four providers, in the paper's column order.
    pub const ALL: [Provider; 4] = [
        Provider::FaceTime,
        Provider::Zoom,
        Provider::Webex,
        Provider::Teams,
    ];

    /// Fixed per-provider server processing overhead added to every RTT
    /// sample, in milliseconds. Calibrated so that same-region RTTs land in
    /// the bands of Table 1 (Teams' noticeably higher same-region RTT is
    /// modelled as edge-distant placement plus heavier frontend processing).
    pub fn server_overhead_ms(&self) -> f64 {
        match self {
            Provider::FaceTime => 2.0,
            Provider::Zoom => 3.5,
            Provider::Webex => 2.5,
            Provider::Teams => 6.0,
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Provider::FaceTime => "FaceTime",
            Provider::Zoom => "Zoom",
            Provider::Webex => "Webex",
            Provider::Teams => "Teams",
        };
        write!(f, "{name}")
    }
}

/// One provider server site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerSite {
    /// Owning provider.
    pub provider: Provider,
    /// Table 1 column label ("W", "M1", "M2", "E", "M").
    pub label: &'static str,
    /// Datacenter city.
    pub city: City,
}

impl ServerSite {
    /// The region the site sits in.
    pub fn region(&self) -> Region {
        self.city.region()
    }

    /// Site location.
    pub fn location(&self) -> GeoPoint {
        self.city.location
    }
}

/// Capacity envelope of one SFU site. The paper's Table 1 treats every
/// site as an infinite sink; production SFUs gate admission on capacity
/// (ITEM, Nguyen et al.), so the resilience layer gives each site a
/// finite envelope and an admission policy over it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteCapacity {
    /// Maximum concurrently hosted sessions (conference groups).
    pub max_sessions: u32,
    /// Maximum concurrently attached participants across all sessions.
    pub max_participants: u32,
    /// While a site is observed *Degraded*, admission closes early: new
    /// joins are refused once utilization reaches this fraction of
    /// `max_participants` (headroom kept for the sessions already there).
    pub degraded_admit_frac: f64,
}

impl SiteCapacity {
    /// A mid-size regional SFU point of presence.
    pub fn regional() -> Self {
        SiteCapacity {
            max_sessions: 64,
            max_participants: 256,
            degraded_admit_frac: 0.7,
        }
    }

    /// Utilization of the participant envelope for `attached` users.
    pub fn utilization(&self, attached: u32) -> f64 {
        if self.max_participants == 0 {
            return 1.0;
        }
        attached as f64 / self.max_participants as f64
    }

    /// Participant headroom left while healthy.
    pub fn headroom(&self, attached: u32) -> u32 {
        self.max_participants.saturating_sub(attached)
    }
}

impl Default for SiteCapacity {
    fn default() -> Self {
        Self::regional()
    }
}

const fn site(provider: Provider, label: &'static str, name: &'static str, lat: f64, lon: f64) -> ServerSite {
    ServerSite {
        provider,
        label,
        city: City {
            name,
            location: GeoPoint {
                lat_deg: lat,
                lon_deg: lon,
            },
        },
    }
}

/// The per-provider US fleets observed by the paper.
#[derive(Clone, Debug)]
pub struct SiteRegistry {
    sites: Vec<ServerSite>,
}

impl Default for SiteRegistry {
    fn default() -> Self {
        Self::us_fleet()
    }
}

impl SiteRegistry {
    /// The US server fleets as counted in §4.1: FaceTime 4, Zoom 2,
    /// Webex 3, Teams 1.
    pub fn us_fleet() -> Self {
        let sites = vec![
            site(Provider::FaceTime, "W", "San Jose, CA", 37.3382, -121.8863),
            site(Provider::FaceTime, "M1", "Elk Grove Village, IL", 42.0040, -87.9703),
            site(Provider::FaceTime, "M2", "Columbus, OH", 39.9612, -82.9988),
            site(Provider::FaceTime, "E", "Ashburn, VA", 39.0438, -77.4874),
            site(Provider::Zoom, "W", "San Jose, CA", 37.3382, -121.8863),
            site(Provider::Zoom, "E", "Ashburn, VA", 39.0438, -77.4874),
            site(Provider::Webex, "W", "Santa Clara, CA", 37.3541, -121.9552),
            site(Provider::Webex, "M", "Chicago, IL", 41.8500, -87.6500),
            site(Provider::Webex, "E", "Richmond, VA", 37.5407, -77.4360),
            site(Provider::Teams, "W", "Quincy, WA", 47.2343, -119.8526),
        ];
        SiteRegistry { sites }
    }

    /// A hypothetical geo-distributed fleet (the §4.1 proposed fix): one
    /// site per region for a single provider, used by the placement
    /// ablation.
    pub fn geo_distributed(provider: Provider) -> Self {
        let sites = vec![
            site(provider, "W", "San Jose, CA", 37.3382, -121.8863),
            site(provider, "M", "Dallas, TX", 32.7767, -96.7970),
            site(provider, "E", "Ashburn, VA", 39.0438, -77.4874),
            site(provider, "EU", "Frankfurt, DE", 50.1109, 8.6821),
            site(provider, "AS", "Tokyo, JP", 35.6762, 139.6503),
        ];
        SiteRegistry { sites }
    }

    /// All sites.
    pub fn sites(&self) -> &[ServerSite] {
        &self.sites
    }

    /// Sites owned by `provider`, in registry order (Table 1 column order).
    pub fn for_provider(&self, provider: Provider) -> Vec<ServerSite> {
        self.sites
            .iter()
            .filter(|s| s.provider == provider)
            .copied()
            .collect()
    }

    /// The site of `provider` geographically closest to `point`. This is
    /// the assignment the paper observed: "all platforms consistently assign
    /// a server that is closest to the initiating user."
    pub fn nearest(&self, provider: Provider, point: &GeoPoint) -> Option<ServerSite> {
        self.for_provider(provider)
            .into_iter()
            .min_by(|a, b| {
                let da = a.location().distance_km(point);
                let db = b.location().distance_km(point);
                da.partial_cmp(&db).expect("finite distances")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities;

    #[test]
    fn fleet_counts_match_section_4_1() {
        let reg = SiteRegistry::us_fleet();
        assert_eq!(reg.for_provider(Provider::FaceTime).len(), 4);
        assert_eq!(reg.for_provider(Provider::Zoom).len(), 2);
        assert_eq!(reg.for_provider(Provider::Webex).len(), 3);
        assert_eq!(reg.for_provider(Provider::Teams).len(), 1);
    }

    #[test]
    fn facetime_labels_match_table1_columns() {
        let labels: Vec<_> = SiteRegistry::us_fleet()
            .for_provider(Provider::FaceTime)
            .iter()
            .map(|s| s.label)
            .collect();
        assert_eq!(labels, vec!["W", "M1", "M2", "E"]);
    }

    #[test]
    fn nearest_site_for_west_initiator_is_west() {
        let reg = SiteRegistry::us_fleet();
        let sf = cities::by_name("San Francisco, CA").unwrap();
        for p in Provider::ALL {
            let s = reg.nearest(p, &sf.location).unwrap();
            assert_eq!(s.region(), Region::UsWest, "{p}");
        }
    }

    #[test]
    fn nearest_site_for_east_initiator_prefers_east_when_available() {
        let reg = SiteRegistry::us_fleet();
        let nyc = cities::by_name("New York, NY").unwrap();
        for p in [Provider::FaceTime, Provider::Zoom, Provider::Webex] {
            let s = reg.nearest(p, &nyc.location).unwrap();
            assert_eq!(s.region(), Region::UsEast, "{p}");
        }
        // Teams only has one (Western) US site, so even an Eastern
        // initiator lands on it.
        let t = reg.nearest(Provider::Teams, &nyc.location).unwrap();
        assert_eq!(t.region(), Region::UsWest);
    }

    #[test]
    fn geo_distributed_covers_regions() {
        let reg = SiteRegistry::geo_distributed(Provider::FaceTime);
        let regions: Vec<Region> = reg.sites().iter().map(|s| s.region()).collect();
        assert!(regions.contains(&Region::UsWest));
        assert!(regions.contains(&Region::UsMiddle));
        assert!(regions.contains(&Region::UsEast));
        assert!(regions.contains(&Region::Europe));
        assert!(regions.contains(&Region::AsiaEast));
    }

    #[test]
    fn capacity_utilization_and_headroom_are_consistent() {
        let cap = SiteCapacity {
            max_sessions: 4,
            max_participants: 10,
            degraded_admit_frac: 0.5,
        };
        assert_eq!(cap.utilization(0), 0.0);
        assert_eq!(cap.utilization(5), 0.5);
        assert_eq!(cap.utilization(10), 1.0);
        assert_eq!(cap.headroom(3), 7);
        assert_eq!(cap.headroom(12), 0);
        // A zero-size site is always saturated, never dividing by zero.
        let empty = SiteCapacity {
            max_sessions: 0,
            max_participants: 0,
            degraded_admit_frac: 0.5,
        };
        assert_eq!(empty.utilization(0), 1.0);
    }

    #[test]
    fn provider_overheads_are_positive_and_teams_is_highest() {
        let mut worst = (Provider::FaceTime, 0.0f64);
        for p in Provider::ALL {
            let o = p.server_overhead_ms();
            assert!(o > 0.0);
            if o > worst.1 {
                worst = (p, o);
            }
        }
        assert_eq!(worst.0, Provider::Teams);
    }
}
