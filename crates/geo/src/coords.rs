//! Geographic coordinates and great-circle geometry.

use std::fmt;

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6_371.008_8;

/// A point on the Earth's surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north, in `[-90, 90]`.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east, in `[-180, 180]`.
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Construct a point, validating ranges.
    ///
    /// # Panics
    /// If latitude or longitude is outside its valid range or non-finite.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!(
            lat_deg.is_finite() && (-90.0..=90.0).contains(&lat_deg),
            "invalid latitude {lat_deg}"
        );
        assert!(
            lon_deg.is_finite() && (-180.0..=180.0).contains(&lon_deg),
            "invalid longitude {lon_deg}"
        );
        GeoPoint { lat_deg, lon_deg }
    }

    /// Great-circle distance to `other` in kilometres (haversine).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat_deg, self.lon_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf() -> GeoPoint {
        GeoPoint::new(37.7749, -122.4194)
    }
    fn nyc() -> GeoPoint {
        GeoPoint::new(40.7128, -74.0060)
    }

    #[test]
    fn distance_to_self_is_zero() {
        assert!(sf().distance_km(&sf()) < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        assert!((sf().distance_km(&nyc()) - nyc().distance_km(&sf())).abs() < 1e-9);
    }

    #[test]
    fn sf_to_nyc_is_about_4130_km() {
        let d = sf().distance_km(&nyc());
        assert!((d - 4_130.0).abs() < 20.0, "d = {d}");
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid latitude")]
    fn rejects_bad_latitude() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid longitude")]
    fn rejects_bad_longitude() {
        GeoPoint::new(0.0, 200.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        let chi = GeoPoint::new(41.8781, -87.6298);
        let direct = sf().distance_km(&nyc());
        let via = sf().distance_km(&chi) + chi.distance_km(&nyc());
        assert!(direct <= via + 1e-6);
    }
}
