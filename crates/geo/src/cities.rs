//! Vantage-city registry.
//!
//! The paper's measurement clients sit in eight US locations (two Western,
//! three Middle, three Eastern) plus three "test users" — one per region —
//! for the Table 1 RTT matrix. The registry also carries the
//! intercontinental cities used by the §4.1 discussion of cross-continent
//! delay (Europe–Asia one-way >100 ms).

use crate::coords::GeoPoint;
use crate::regions::Region;

/// A named city with coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct City {
    /// Human-readable name.
    pub name: &'static str,
    /// Location.
    pub location: GeoPoint,
}

impl City {
    const fn new(name: &'static str, lat: f64, lon: f64) -> City {
        City {
            name,
            location: GeoPoint {
                lat_deg: lat,
                lon_deg: lon,
            },
        }
    }

    /// The region this city falls in.
    pub fn region(&self) -> Region {
        Region::of(&self.location)
    }
}

/// Western-US vantage cities (the paper used two).
pub const US_WEST: [City; 2] = [
    City::new("San Francisco, CA", 37.7749, -122.4194),
    City::new("Seattle, WA", 47.6062, -122.3321),
];

/// Middle-US vantage cities (the paper used three).
pub const US_MIDDLE: [City; 3] = [
    City::new("Chicago, IL", 41.8781, -87.6298),
    City::new("Dallas, TX", 32.7767, -96.7970),
    City::new("Kansas City, MO", 39.0997, -94.5786),
];

/// Eastern-US vantage cities (the paper used three).
pub const US_EAST: [City; 3] = [
    City::new("New York, NY", 40.7128, -74.0060),
    City::new("Washington, DC", 38.9072, -77.0369),
    City::new("Miami, FL", 25.7617, -80.1918),
];

/// Intercontinental cities for the cross-continent delay discussion.
pub const WORLD: [City; 4] = [
    City::new("London, UK", 51.5074, -0.1278),
    City::new("Frankfurt, DE", 50.1109, 8.6821),
    City::new("Tokyo, JP", 35.6762, 139.6503),
    City::new("Singapore, SG", 1.3521, 103.8198),
];

/// All eight US vantage cities, in region order W, M, E.
pub fn us_vantages() -> Vec<City> {
    US_WEST
        .iter()
        .chain(US_MIDDLE.iter())
        .chain(US_EAST.iter())
        .copied()
        .collect()
}

/// The three Table 1 "test users": the first vantage city of each region
/// (San Francisco, Chicago, New York).
pub fn table1_test_users() -> [City; 3] {
    [US_WEST[0], US_MIDDLE[0], US_EAST[0]]
}

/// Look up a city by (case-sensitive) name across every registry.
pub fn by_name(name: &str) -> Option<City> {
    us_vantages()
        .into_iter()
        .chain(WORLD.iter().copied())
        .find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vantage_counts_match_paper() {
        assert_eq!(US_WEST.len(), 2);
        assert_eq!(US_MIDDLE.len(), 3);
        assert_eq!(US_EAST.len(), 3);
        assert_eq!(us_vantages().len(), 8);
    }

    #[test]
    fn every_vantage_classifies_into_its_region() {
        for c in US_WEST {
            assert_eq!(c.region(), Region::UsWest, "{}", c.name);
        }
        for c in US_MIDDLE {
            assert_eq!(c.region(), Region::UsMiddle, "{}", c.name);
        }
        for c in US_EAST {
            assert_eq!(c.region(), Region::UsEast, "{}", c.name);
        }
    }

    #[test]
    fn test_users_cover_all_regions() {
        let users = table1_test_users();
        let regions: Vec<Region> = users.iter().map(|c| c.region()).collect();
        assert_eq!(
            regions,
            vec![Region::UsWest, Region::UsMiddle, Region::UsEast]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("Chicago, IL").is_some());
        assert!(by_name("Tokyo, JP").is_some());
        assert!(by_name("Atlantis").is_none());
    }

    #[test]
    fn europe_asia_distance_supports_100ms_claim() {
        // §4.1: one-way propagation Europe↔Asia may exceed 100 ms. At
        // ~200,000 km/s in fiber with ~1.5x route inflation, that needs
        // ≥ ~9,300 km of great-circle distance; Frankfurt–Tokyo qualifies.
        let fra = by_name("Frankfurt, DE").unwrap();
        let tyo = by_name("Tokyo, JP").unwrap();
        assert!(fra.location.distance_km(&tyo.location) > 9_000.0);
    }
}
