//! Wide-area latency model.
//!
//! RTT between two points is modelled as
//!
//! ```text
//! rtt = 2 · distance_km · inflation / fiber_speed
//!     + client_access_overhead + server_overhead + jitter
//! ```
//!
//! * `fiber_speed` ≈ 200,000 km/s (light in glass, ~2/3 c).
//! * `inflation` captures route stretch (fiber does not follow great
//!   circles). It is sampled *per path* from a deterministic hash of the
//!   endpoints so repeated probes of one path agree (Table 1 reports
//!   σ < 7 ms) while different paths show realistic diversity.
//! * `client_access_overhead` models WiFi + last-mile queuing at the AP
//!   vantage (the paper probes from the APs).
//! * per-probe `jitter` is half-normal, keeping each path's σ small.

use crate::coords::GeoPoint;
use visionsim_core::rng::SimRng;
use visionsim_core::time::SimDuration;

/// Speed of light in fiber, km/s.
pub const FIBER_KM_PER_S: f64 = 200_000.0;

/// Parameters of the latency model.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// Minimum route-inflation factor (≥ 1).
    pub inflation_min: f64,
    /// Maximum route-inflation factor.
    pub inflation_max: f64,
    /// Client-side access overhead added to each RTT, ms.
    pub access_overhead_ms: f64,
    /// Scale of the per-probe half-normal jitter, ms.
    pub jitter_sigma_ms: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            inflation_min: 1.25,
            inflation_max: 1.9,
            access_overhead_ms: 4.0,
            jitter_sigma_ms: 1.5,
        }
    }
}

/// The latency characteristics of one path (endpoint pair).
#[derive(Clone, Copy, Debug)]
pub struct PathLatency {
    /// Great-circle distance, km.
    pub distance_km: f64,
    /// The path's (deterministic) route-inflation factor.
    pub inflation: f64,
    /// Base RTT excluding jitter, ms.
    pub base_rtt_ms: f64,
}

impl LatencyModel {
    /// Deterministic per-path inflation in `[inflation_min, inflation_max]`,
    /// derived by hashing the endpoint coordinates. Short paths (same metro)
    /// skew toward the low end — intra-city routes are direct.
    fn path_inflation(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [a.lat_deg, a.lon_deg, b.lat_deg, b.lon_deg] {
            // Quantize to ~100 m so that a==b hashes symmetric paths equally.
            let q = (v * 1_000.0).round() as i64 as u64;
            h ^= q;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Make the hash order-independent by mixing both directions.
        let mut h2: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [b.lat_deg, b.lon_deg, a.lat_deg, a.lon_deg] {
            let q = (v * 1_000.0).round() as i64 as u64;
            h2 ^= q;
            h2 = h2.wrapping_mul(0x1000_0000_01b3);
        }
        let mixed = h ^ h2;
        let unit = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        self.inflation_min + unit * (self.inflation_max - self.inflation_min)
    }

    /// The deterministic path characteristics between `a` and `b` toward a
    /// server with the given processing overhead.
    pub fn path(&self, a: &GeoPoint, b: &GeoPoint, server_overhead_ms: f64) -> PathLatency {
        let distance_km = a.distance_km(b);
        let inflation = self.path_inflation(a, b);
        let prop_ms = 2.0 * distance_km * inflation / FIBER_KM_PER_S * 1_000.0;
        PathLatency {
            distance_km,
            inflation,
            base_rtt_ms: prop_ms + self.access_overhead_ms + server_overhead_ms,
        }
    }

    /// One RTT probe (base + half-normal jitter), in milliseconds.
    pub fn probe_rtt_ms(
        &self,
        a: &GeoPoint,
        b: &GeoPoint,
        server_overhead_ms: f64,
        rng: &mut SimRng,
    ) -> f64 {
        let path = self.path(a, b, server_overhead_ms);
        path.base_rtt_ms + rng.normal(0.0, self.jitter_sigma_ms).abs()
    }

    /// One-way propagation delay (half of the jitter-free RTT) as a
    /// [`SimDuration`], for configuring network links.
    pub fn one_way(&self, a: &GeoPoint, b: &GeoPoint) -> SimDuration {
        let path = self.path(a, b, 0.0);
        SimDuration::from_millis_f64(path.base_rtt_ms / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities;

    fn model() -> LatencyModel {
        LatencyModel::default()
    }

    fn loc(name: &str) -> GeoPoint {
        cities::by_name(name).unwrap().location
    }

    #[test]
    fn inflation_is_deterministic_and_symmetric() {
        let m = model();
        let a = loc("San Francisco, CA");
        let b = loc("New York, NY");
        let i1 = m.path(&a, &b, 0.0).inflation;
        let i2 = m.path(&a, &b, 0.0).inflation;
        let i3 = m.path(&b, &a, 0.0).inflation;
        assert_eq!(i1, i2);
        assert_eq!(i1, i3);
        assert!(i1 >= m.inflation_min && i1 <= m.inflation_max);
    }

    #[test]
    fn different_paths_get_different_inflation() {
        let m = model();
        let sf = loc("San Francisco, CA");
        let i_ny = m.path(&sf, &loc("New York, NY"), 0.0).inflation;
        let i_chi = m.path(&sf, &loc("Chicago, IL"), 0.0).inflation;
        assert_ne!(i_ny, i_chi);
    }

    #[test]
    fn coast_to_coast_rtt_lands_in_table1_band() {
        // Table 1's W↔E entries are ~71-79 ms.
        let m = model();
        let rtt = m.path(&loc("San Francisco, CA"), &loc("New York, NY"), 2.0).base_rtt_ms;
        assert!((50.0..95.0).contains(&rtt), "rtt = {rtt}");
    }

    #[test]
    fn same_metro_rtt_is_single_digit() {
        // Table 1 diagonal entries are 5.9-8.8 ms.
        let m = model();
        let sf = loc("San Francisco, CA");
        let sj = GeoPoint::new(37.3382, -121.8863); // San Jose
        let rtt = m.path(&sf, &sj, 2.0).base_rtt_ms;
        assert!((4.0..12.0).contains(&rtt), "rtt = {rtt}");
    }

    #[test]
    fn probe_jitter_is_small_and_positive() {
        let m = model();
        let mut rng = SimRng::seed_from_u64(1);
        let a = loc("San Francisco, CA");
        let b = loc("New York, NY");
        let base = m.path(&a, &b, 2.0).base_rtt_ms;
        let probes: Vec<f64> = (0..200)
            .map(|_| m.probe_rtt_ms(&a, &b, 2.0, &mut rng))
            .collect();
        for &p in &probes {
            assert!(p >= base, "jitter must not reduce RTT");
        }
        let mean = probes.iter().sum::<f64>() / probes.len() as f64;
        let std =
            (probes.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / probes.len() as f64).sqrt();
        // Table 1: "standard deviation of all results is <7 ms".
        assert!(std < 7.0, "std = {std}");
    }

    #[test]
    fn europe_asia_one_way_exceeds_100ms() {
        // §4.1: "the one-way propagation delay between Europe and Asia may
        // already exceed 100 ms".
        let m = model();
        let d = m.one_way(&loc("Frankfurt, DE"), &loc("Tokyo, JP"));
        assert!(d.as_millis_f64() > 60.0, "one-way = {d}");
    }

    #[test]
    fn rtt_monotone_in_distance_for_same_inflation() {
        let mut m = model();
        m.inflation_min = 1.5;
        m.inflation_max = 1.5; // fix inflation to isolate distance
        let sf = loc("San Francisco, CA");
        let near = m.path(&sf, &loc("Seattle, WA"), 0.0).base_rtt_ms;
        let far = m.path(&sf, &loc("New York, NY"), 0.0).base_rtt_ms;
        assert!(near < far);
    }
}
