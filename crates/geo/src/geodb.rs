//! Geolocation database substitute.
//!
//! The paper geolocates the servers it discovers with MaxMind and
//! ipinfo.io. The simulator's analogue: every simulated endpoint carries a
//! synthetic [`NetAddr`], and [`GeoDb`] maps registered addresses back to a
//! [`GeoRecord`] (org + city + region). Address blocks are allocated
//! per-region so that classifiers can also fall back to prefix heuristics,
//! as real geo-IP databases do.

use crate::coords::GeoPoint;
use crate::regions::Region;
use std::collections::BTreeMap;
use std::fmt;

/// A synthetic IPv4-style address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetAddr(pub u32);

impl NetAddr {
    /// The /8 prefix octet.
    pub fn prefix(&self) -> u8 {
        (self.0 >> 24) as u8
    }
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{}.{}.{}.{}",
            o >> 24,
            (o >> 16) & 0xff,
            (o >> 8) & 0xff,
            o & 0xff
        )
    }
}

/// What a geolocation lookup returns.
#[derive(Clone, Debug, PartialEq)]
pub struct GeoRecord {
    /// Owning organization ("Apple Inc.", "Zoom Video", ...).
    pub org: String,
    /// City name.
    pub city: String,
    /// Location.
    pub location: GeoPoint,
    /// Region classification.
    pub region: Region,
}

/// Region-coded /8 prefixes for synthetic address allocation.
fn region_prefix(region: Region) -> u8 {
    match region {
        Region::UsWest => 13,
        Region::UsMiddle => 23,
        Region::UsEast => 34,
        Region::Europe => 82,
        Region::AsiaEast => 110,
    }
}

/// A registry of address → record mappings with per-region allocation.
#[derive(Clone, Debug, Default)]
pub struct GeoDb {
    records: BTreeMap<NetAddr, GeoRecord>,
    next_host: BTreeMap<u8, u32>,
}

impl GeoDb {
    /// An empty database.
    pub fn new() -> Self {
        GeoDb::default()
    }

    /// Allocate a fresh address in the region-coded block for `location`
    /// and register it.
    pub fn allocate(&mut self, org: &str, city: &str, location: GeoPoint) -> NetAddr {
        let region = Region::of(&location);
        let prefix = region_prefix(region);
        let host = self.next_host.entry(prefix).or_insert(1);
        let addr = NetAddr(((prefix as u32) << 24) | *host);
        *host += 1;
        self.records.insert(
            addr,
            GeoRecord {
                org: org.to_string(),
                city: city.to_string(),
                location,
                region,
            },
        );
        addr
    }

    /// Look up a registered address.
    pub fn lookup(&self, addr: NetAddr) -> Option<&GeoRecord> {
        self.records.get(&addr)
    }

    /// Prefix-only fallback (region inference without a full record), as
    /// real geo-IP databases degrade to when a /32 is unknown.
    pub fn region_of_prefix(&self, addr: NetAddr) -> Option<Region> {
        Region::ALL
            .into_iter()
            .find(|r| region_prefix(*r) == addr.prefix())
    }

    /// Number of registered addresses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no addresses are registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All registered addresses whose org matches `org`.
    pub fn addrs_of_org(&self, org: &str) -> Vec<NetAddr> {
        self.records
            .iter()
            .filter(|(_, r)| r.org == org)
            .map(|(a, _)| *a)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_registers_and_looks_up() {
        let mut db = GeoDb::new();
        let sf = GeoPoint::new(37.7749, -122.4194);
        let a = db.allocate("Apple Inc.", "San Francisco", sf);
        let rec = db.lookup(a).unwrap();
        assert_eq!(rec.org, "Apple Inc.");
        assert_eq!(rec.region, Region::UsWest);
    }

    #[test]
    fn addresses_are_unique() {
        let mut db = GeoDb::new();
        let p = GeoPoint::new(41.88, -87.63);
        let a = db.allocate("X", "Chicago", p);
        let b = db.allocate("Y", "Chicago", p);
        assert_ne!(a, b);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn prefixes_encode_regions() {
        let mut db = GeoDb::new();
        let west = db.allocate("X", "SF", GeoPoint::new(37.77, -122.42));
        let east = db.allocate("X", "NYC", GeoPoint::new(40.71, -74.01));
        assert_ne!(west.prefix(), east.prefix());
        assert_eq!(db.region_of_prefix(west), Some(Region::UsWest));
        assert_eq!(db.region_of_prefix(east), Some(Region::UsEast));
    }

    #[test]
    fn unknown_lookup_is_none() {
        let db = GeoDb::new();
        assert!(db.lookup(NetAddr(0x7f000001)).is_none());
        assert!(db.region_of_prefix(NetAddr(0x7f000001)).is_none());
    }

    #[test]
    fn org_query_filters() {
        let mut db = GeoDb::new();
        let p = GeoPoint::new(37.77, -122.42);
        db.allocate("Apple Inc.", "SF", p);
        db.allocate("Zoom Video", "SF", p);
        db.allocate("Apple Inc.", "SF", p);
        assert_eq!(db.addrs_of_org("Apple Inc.").len(), 2);
        assert_eq!(db.addrs_of_org("Zoom Video").len(), 1);
    }

    #[test]
    fn display_is_dotted_quad() {
        assert_eq!(format!("{}", NetAddr(0x0d000001)), "13.0.0.1");
    }
}
