//! Region taxonomy.
//!
//! The paper partitions the US into Western (W), Middle (M), and Eastern (E)
//! regions for Table 1 and discusses intercontinental deployments (Europe /
//! Asia) in §4.1, so the taxonomy covers both.

use crate::coords::GeoPoint;
use std::fmt;

/// A coarse geographic region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// Western US (roughly west of 110°W).
    UsWest,
    /// Middle US (roughly 110°W to 81.5°W — includes Chicago, Dallas,
    /// Kansas City, Columbus).
    UsMiddle,
    /// Eastern US (roughly east of 81.5°W — the seaboard from Miami up).
    UsEast,
    /// Western/Central Europe.
    Europe,
    /// East Asia.
    AsiaEast,
}

impl Region {
    /// All regions, in display order.
    pub const ALL: [Region; 5] = [
        Region::UsWest,
        Region::UsMiddle,
        Region::UsEast,
        Region::Europe,
        Region::AsiaEast,
    ];

    /// The three US regions used by Table 1, in the paper's row order.
    pub const US: [Region; 3] = [Region::UsWest, Region::UsMiddle, Region::UsEast];

    /// Classify a point into a region. US longitude bands follow the paper's
    /// W/M/E split; non-US points fall into the continental buckets by
    /// longitude.
    pub fn of(point: &GeoPoint) -> Region {
        let lon = point.lon_deg;
        let lat = point.lat_deg;
        if (24.0..=50.0).contains(&lat) && (-125.0..=-66.0).contains(&lon) {
            if lon < -110.0 {
                Region::UsWest
            } else if lon < -81.5 {
                Region::UsMiddle
            } else {
                Region::UsEast
            }
        } else if (-15.0..=45.0).contains(&lon) {
            Region::Europe
        } else if (95.0..=150.0).contains(&lon) {
            Region::AsiaEast
        } else if lon < -110.0 {
            Region::UsWest
        } else if lon < -81.5 {
            Region::UsMiddle
        } else {
            Region::UsEast
        }
    }

    /// The paper's single-letter abbreviation (W/M/E); continental regions
    /// get two letters.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Region::UsWest => "W",
            Region::UsMiddle => "M",
            Region::UsEast => "E",
            Region::Europe => "EU",
            Region::AsiaEast => "AS",
        }
    }

    /// True for the three US regions.
    pub fn is_us(&self) -> bool {
        matches!(self, Region::UsWest | Region::UsMiddle | Region::UsEast)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Region::UsWest => "Western US",
            Region::UsMiddle => "Middle US",
            Region::UsEast => "Eastern US",
            Region::Europe => "Europe",
            Region::AsiaEast => "East Asia",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_us_cities() {
        assert_eq!(Region::of(&GeoPoint::new(37.77, -122.42)), Region::UsWest); // SF
        assert_eq!(Region::of(&GeoPoint::new(41.88, -87.63)), Region::UsMiddle); // Chicago
        assert_eq!(Region::of(&GeoPoint::new(40.71, -74.01)), Region::UsEast); // NYC
    }

    #[test]
    fn classifies_continental_cities() {
        assert_eq!(Region::of(&GeoPoint::new(48.85, 2.35)), Region::Europe); // Paris
        assert_eq!(Region::of(&GeoPoint::new(35.68, 139.69)), Region::AsiaEast); // Tokyo
    }

    #[test]
    fn dallas_is_middle() {
        assert_eq!(Region::of(&GeoPoint::new(32.78, -96.80)), Region::UsMiddle);
    }

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(Region::UsWest.abbrev(), "W");
        assert_eq!(Region::UsMiddle.abbrev(), "M");
        assert_eq!(Region::UsEast.abbrev(), "E");
    }

    #[test]
    fn us_predicate() {
        assert!(Region::UsWest.is_us());
        assert!(!Region::Europe.is_us());
        assert_eq!(Region::US.len(), 3);
    }
}
