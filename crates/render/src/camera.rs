//! The viewer: pose, frustum, and gaze.
//!
//! Vision Pro is a video see-through headset with an approximately 100°
//! horizontal field of view; its internal cameras track the eyes, giving
//! the renderer a gaze direction for foveation. The viewer model keeps
//! exactly what the visibility pipeline needs: where the head is, where it
//! points, and where within the view the eyes point.

use visionsim_mesh::geometry::Vec3;

/// Default horizontal field of view, degrees.
pub const DEFAULT_FOV_DEG: f32 = 100.0;
/// Foveal region half-angle, degrees: eccentricities beyond this render at
/// peripheral quality. The human fovea is ~2.5°, but practical foveated
/// renderers keep a generous high-quality center.
pub const FOVEA_DEG: f32 = 18.0;

/// A viewer (one headset wearer).
#[derive(Clone, Copy, Debug)]
pub struct Viewer {
    /// Head position.
    pub position: Vec3,
    /// View (head) direction, unit length.
    pub forward: Vec3,
    /// Gaze direction, unit length (defaults to `forward`).
    pub gaze: Vec3,
    /// Horizontal field of view, degrees.
    pub fov_deg: f32,
}

impl Viewer {
    /// A viewer at `position` looking along `forward` with centered gaze.
    pub fn looking(position: Vec3, forward: Vec3) -> Self {
        let f = forward.normalized();
        assert!(f.length() > 0.0, "forward must be non-zero");
        Viewer {
            position,
            forward: f,
            gaze: f,
            fov_deg: DEFAULT_FOV_DEG,
        }
    }

    /// Set the gaze direction (normalized).
    pub fn with_gaze(mut self, gaze: Vec3) -> Self {
        let g = gaze.normalized();
        assert!(g.length() > 0.0, "gaze must be non-zero");
        self.gaze = g;
        self
    }

    /// Angle in degrees between the view axis and the direction to `point`.
    pub fn view_angle_deg(&self, point: &Vec3) -> f32 {
        let dir = (*point - self.position).normalized();
        if dir.length() == 0.0 {
            return 0.0;
        }
        self.forward.dot(&dir).clamp(-1.0, 1.0).acos().to_degrees()
    }

    /// Angle in degrees between the gaze ray and the direction to `point` —
    /// the retinal eccentricity foveation keys off.
    pub fn eccentricity_deg(&self, point: &Vec3) -> f32 {
        let dir = (*point - self.position).normalized();
        if dir.length() == 0.0 {
            return 0.0;
        }
        self.gaze.dot(&dir).clamp(-1.0, 1.0).acos().to_degrees()
    }

    /// Whether a sphere (center, radius) intersects the view frustum,
    /// approximated as the view cone of half-angle `fov/2` (the paper's
    /// viewport-adaptation experiment only needs in/out of view).
    pub fn sees(&self, center: &Vec3, radius: f32) -> bool {
        let to = *center - self.position;
        let dist = to.length();
        if dist <= radius {
            return true; // inside the object
        }
        let half_fov = (self.fov_deg / 2.0).to_radians();
        // Angular radius of the sphere widens the acceptance cone.
        let ang = self.view_angle_deg(center).to_radians();
        let ang_radius = (radius / dist).min(1.0).asin();
        ang <= half_fov + ang_radius
    }

    /// Distance to a point, metres.
    pub fn distance_to(&self, point: &Vec3) -> f32 {
        self.position.distance(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_origin_looking_z() -> Viewer {
        Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0))
    }

    #[test]
    fn straight_ahead_is_zero_angle() {
        let v = at_origin_looking_z();
        let p = Vec3::new(0.0, 0.0, -2.0);
        assert!(v.view_angle_deg(&p) < 1e-3);
        assert!(v.eccentricity_deg(&p) < 1e-3);
    }

    #[test]
    fn behind_is_180_degrees() {
        let v = at_origin_looking_z();
        let p = Vec3::new(0.0, 0.0, 5.0);
        assert!((v.view_angle_deg(&p) - 180.0).abs() < 1e-3);
    }

    #[test]
    fn sees_within_fov_not_behind() {
        let v = at_origin_looking_z();
        assert!(v.sees(&Vec3::new(0.0, 0.0, -1.0), 0.1));
        // 45° off-axis is inside a 100° horizontal FOV.
        assert!(v.sees(&Vec3::new(1.0, 0.0, -1.0), 0.1));
        // Directly behind is not.
        assert!(!v.sees(&Vec3::new(0.0, 0.0, 2.0), 0.1));
        // 90° to the side is outside the 50° half-angle.
        assert!(!v.sees(&Vec3::new(2.0, 0.0, 0.0), 0.1));
    }

    #[test]
    fn large_spheres_widen_the_cone() {
        let v = at_origin_looking_z();
        let side = Vec3::new(2.0, 0.0, -0.5); // ~76° off-axis
        assert!(!v.sees(&side, 0.05));
        assert!(v.sees(&side, 1.5));
    }

    #[test]
    fn viewer_inside_sphere_always_sees_it() {
        let v = at_origin_looking_z();
        assert!(v.sees(&Vec3::new(0.0, 0.0, 1.0), 5.0));
    }

    #[test]
    fn gaze_decouples_from_head() {
        let v = at_origin_looking_z().with_gaze(Vec3::new(1.0, 0.0, -1.0));
        let p = Vec3::new(0.0, 0.0, -3.0);
        assert!(v.view_angle_deg(&p) < 1e-3);
        assert!((v.eccentricity_deg(&p) - 45.0).abs() < 0.1);
    }

    #[test]
    fn distance_is_euclidean() {
        let v = at_origin_looking_z();
        assert!((v.distance_to(&Vec3::new(3.0, 4.0, 0.0)) - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_forward() {
        Viewer::looking(Vec3::ZERO, Vec3::ZERO);
    }
}
