//! The calibrated frame-cost model.
//!
//! GPU time per frame decomposes into a fixed pass cost, per-vertex work
//! (∝ rendered triangles), and per-fragment work (∝ screen coverage ×
//! shading rate). The three anchor constants are fitted to Figure 5's four
//! measurements:
//!
//! ```text
//! BL (78,030 tri, 1 m, foveal)    = 6.55 ms
//! V  (36 tri, off-screen)         = 2.68 ms
//! F  (21,036 tri, 1 m, periphery) = 3.97 ms
//! D  (45,036 tri, >3 m, foveal)   = 3.91 ms
//! ```
//!
//! yielding base ≈ 2.678 ms, ≈ 2.2e-5 ms/triangle, ≈ 2.15 ms per unit of
//! 1-metre screen coverage, and a peripheral shading rate of ≈ 0.38 (the
//! variable-rate-shading saving of foveation). Figure 6's multi-user
//! scaling is *not* fitted — it emerges from summing per-persona loads.
//!
//! CPU time models the receive path: a fixed simulation/UI cost plus
//! per-received-byte processing plus per-persona bookkeeping, anchored to
//! Figure 6(b)'s two endpoints (5.67 ms at 2 users, 6.76 ms at 5).

use crate::counters::FRAME_DEADLINE;
use crate::visibility::{LodClass, PersonaRender};
use visionsim_core::rng::SimRng;
use visionsim_core::time::SimDuration;

/// Cost-model constants (public so ablations can perturb them).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fixed GPU pass cost, ms (compositor, pass-through, UI).
    pub gpu_base_ms: f64,
    /// GPU per-triangle (vertex/geometry) cost, ms.
    pub gpu_per_triangle_ms: f64,
    /// GPU fragment cost for one persona filling 1-metre coverage at full
    /// shading rate, ms.
    pub gpu_fragment_ms: f64,
    /// Shading-rate multiplier in the periphery (foveated VRS).
    pub peripheral_shading: f64,
    /// Fixed CPU cost, ms.
    pub cpu_base_ms: f64,
    /// CPU per received byte, ms.
    pub cpu_per_byte_ms: f64,
    /// CPU per rendered persona, ms.
    pub cpu_per_persona_ms: f64,
    /// Multiplicative measurement noise (relative sigma) applied to both
    /// times, reproducing the paper's ±0.05–1.3 ms spreads.
    pub noise_rel: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gpu_base_ms: 2.678,
            gpu_per_triangle_ms: 2.2e-5,
            gpu_fragment_ms: 2.153,
            peripheral_shading: 0.384,
            cpu_base_ms: 5.33,
            cpu_per_byte_ms: 1.5e-4,
            cpu_per_persona_ms: 0.2,
            noise_rel: 0.015,
        }
    }
}

/// One frame's simulated costs.
#[derive(Clone, Copy, Debug)]
pub struct FrameCost {
    /// GPU time, ms.
    pub gpu_ms: f64,
    /// CPU time, ms.
    pub cpu_ms: f64,
    /// Triangles rendered.
    pub triangles: usize,
    /// Whether the frame missed the 90 FPS deadline.
    pub missed_deadline: bool,
}

impl CostModel {
    /// Compute a frame's cost from the visibility pipeline's per-persona
    /// decisions and the bytes received since the previous frame.
    pub fn frame(
        &self,
        renders: &[PersonaRender],
        rx_bytes: usize,
        rng: &mut SimRng,
    ) -> FrameCost {
        let mut gpu = self.gpu_base_ms;
        let mut triangles = 0usize;
        for r in renders {
            gpu += r.triangles as f64 * self.gpu_per_triangle_ms;
            let shading = if r.class == LodClass::Peripheral {
                self.peripheral_shading
            } else {
                1.0
            };
            gpu += r.coverage as f64 * self.gpu_fragment_ms * shading;
            triangles += r.triangles;
        }
        let cpu = self.cpu_base_ms
            + rx_bytes as f64 * self.cpu_per_byte_ms
            + renders.len() as f64 * self.cpu_per_persona_ms;
        let gpu_ms = (gpu * rng.jitter(1.0, self.noise_rel * 1.7)).max(0.1);
        let cpu_ms = (cpu * rng.jitter(1.0, self.noise_rel * 1.7)).max(0.1);
        FrameCost {
            gpu_ms,
            cpu_ms,
            triangles,
            missed_deadline: gpu_ms.max(cpu_ms) > FRAME_DEADLINE.as_millis_f64(),
        }
    }

    /// Deterministic (noise-free) GPU time for a render set — used by the
    /// calibration tests.
    pub fn gpu_ms_exact(&self, renders: &[PersonaRender]) -> f64 {
        let mut gpu = self.gpu_base_ms;
        for r in renders {
            gpu += r.triangles as f64 * self.gpu_per_triangle_ms;
            let shading = if r.class == LodClass::Peripheral {
                self.peripheral_shading
            } else {
                1.0
            };
            gpu += r.coverage as f64 * self.gpu_fragment_ms * shading;
        }
        gpu
    }

    /// Time still available in the frame after `cost`, at the 90 FPS
    /// deadline.
    pub fn headroom(cost: &FrameCost) -> SimDuration {
        let spent = SimDuration::from_millis_f64(cost.gpu_ms.max(cost.cpu_ms));
        FRAME_DEADLINE.saturating_sub(spent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Viewer;
    use crate::visibility::{PersonaInstance, VisibilityFlags, VisibilityPipeline};
    use visionsim_mesh::geometry::Vec3;

    fn render_one(x: f32, z: f32, gaze: Option<Vec3>) -> Vec<PersonaRender> {
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let mut v = Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        if let Some(g) = gaze {
            v = v.with_gaze(g);
        }
        pipe.evaluate(&v, &[PersonaInstance::paper_ladder(Vec3::new(x, 0.0, z))])
    }

    #[test]
    fn baseline_matches_figure5_anchor() {
        // BL: 78,030 tri at 1 m, foveal → 6.55±0.11 ms.
        let m = CostModel::default();
        let gpu = m.gpu_ms_exact(&render_one(0.0, -1.0, None));
        assert!((gpu - 6.55).abs() < 0.15, "BL gpu = {gpu}");
    }

    #[test]
    fn viewport_cull_matches_figure5_anchor() {
        // V: 36 tri proxy → 2.68±0.05 ms (−59%).
        let m = CostModel::default();
        let gpu = m.gpu_ms_exact(&render_one(0.0, 2.0, None));
        assert!((gpu - 2.68).abs() < 0.1, "V gpu = {gpu}");
    }

    #[test]
    fn foveated_matches_figure5_anchor() {
        // F: 21,036 tri, peripheral shading → 3.97±0.07 ms (−39%).
        let m = CostModel::default();
        let gpu = m.gpu_ms_exact(&render_one(-0.8, -1.0, Some(Vec3::new(0.7, 0.0, -1.0))));
        assert!((gpu - 3.97).abs() < 0.35, "F gpu = {gpu}");
    }

    #[test]
    fn distance_matches_figure5_anchor() {
        // D: 45,036 tri beyond 3 m → 3.91±0.05 ms (−40%).
        let m = CostModel::default();
        let gpu = m.gpu_ms_exact(&render_one(0.0, -3.5, None));
        assert!((gpu - 3.91).abs() < 0.35, "D gpu = {gpu}");
    }

    #[test]
    fn reduction_percentages_match_paper() {
        let m = CostModel::default();
        let bl = m.gpu_ms_exact(&render_one(0.0, -1.0, None));
        let v = m.gpu_ms_exact(&render_one(0.0, 2.0, None));
        let reduction = (bl - v) / bl * 100.0;
        // Paper: 59% GPU-time reduction for viewport adaptation.
        assert!((reduction - 59.0).abs() < 4.0, "reduction {reduction}%");
    }

    #[test]
    fn cpu_scales_with_received_bytes_and_personas() {
        let m = CostModel::default();
        let mut rng = SimRng::seed_from_u64(1);
        let one = render_one(0.0, -1.0, None);
        let few_bytes = m.frame(&one, 930, &mut rng).cpu_ms;
        let many_bytes = m.frame(&one, 4 * 930, &mut rng).cpu_ms;
        assert!(many_bytes > few_bytes);
        // 2-user anchor: ~5.67 ms with one persona and ~930 B/frame.
        assert!((few_bytes - 5.67).abs() < 0.4, "cpu = {few_bytes}");
    }

    #[test]
    fn five_user_gpu_lands_in_figure6_band() {
        // Four personas spread across the view at ~1.5 m: Figure 6(b)
        // reports 7.62±1.29 ms with p95 > 9 ms.
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let v = Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let personas: Vec<PersonaInstance> = [-0.9f32, -0.3, 0.3, 0.9]
            .iter()
            .map(|&x| PersonaInstance::paper_ladder(Vec3::new(x, 0.0, -1.4)))
            .collect();
        let renders = pipe.evaluate(&v, &personas);
        let m = CostModel::default();
        let gpu = m.gpu_ms_exact(&renders);
        assert!((5.5..10.5).contains(&gpu), "5-user gpu = {gpu}");
    }

    #[test]
    fn deadline_detection() {
        let m = CostModel::default();
        let mut rng = SimRng::seed_from_u64(2);
        // Ten full-detail personas blow the 11.1 ms budget.
        let pipe = VisibilityPipeline::new(VisibilityFlags::none());
        let v = Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let personas: Vec<PersonaInstance> = (0..10)
            .map(|i| PersonaInstance::paper_ladder(Vec3::new(i as f32 * 0.1, 0.0, -1.0)))
            .collect();
        let renders = pipe.evaluate(&v, &personas);
        let cost = m.frame(&renders, 10_000, &mut rng);
        assert!(cost.missed_deadline);
        assert_eq!(CostModel::headroom(&cost), SimDuration::ZERO);
    }

    #[test]
    fn noise_is_small_and_multiplicative() {
        let m = CostModel::default();
        let mut rng = SimRng::seed_from_u64(3);
        let renders = render_one(0.0, -1.0, None);
        let samples: Vec<f64> = (0..500).map(|_| m.frame(&renders, 930, &mut rng).gpu_ms).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let sd = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / samples.len() as f64)
            .sqrt();
        // Paper reports ±0.11 ms on the 6.55 ms baseline.
        assert!(sd < 0.25, "sd = {sd}");
        assert!(sd > 0.01, "noise missing");
    }
}
