//! # visionsim-render
//!
//! The headset-side rendering simulator: what RealityKit's performance
//! tooling observes in the paper, rebuilt as a mechanism.
//!
//! * [`camera`] — the viewer: head pose, view frustum, gaze direction,
//!   eccentricity math.
//! * [`visibility`] — the visibility-aware optimization pipeline of §4.4:
//!   viewport adaptation, foveated rendering, distance-aware LOD, and
//!   (optional — the real system does *not* enable it) occlusion culling.
//!   Each optimization independently toggleable for the Figure 5 ablation.
//! * [`cost`] — the calibrated frame-cost model: GPU time from per-vertex
//!   (triangle) and per-fragment (screen-coverage × shading-rate) load,
//!   CPU time from received-bytes processing. Anchor constants are fitted
//!   to the paper's Figure 5 measurements; scaling *shape* (Figure 6)
//!   emerges from the mechanism.
//! * [`counters`] — per-frame counters (triangles, CPU/GPU ms, deadline
//!   misses at the 90 FPS target), the RealityKit-tool analogue.

pub mod camera;
pub mod cost;
pub mod counters;
pub mod visibility;

pub use camera::Viewer;
pub use cost::{CostModel, FrameCost};
pub use counters::{FrameCounters, SessionCounters, FRAME_DEADLINE};
pub use visibility::{LodClass, PersonaInstance, VisibilityFlags, VisibilityPipeline};
