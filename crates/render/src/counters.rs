//! Per-frame counters — the RealityKit performance-tool analogue.
//!
//! The paper reads rendered-triangle counts and CPU/GPU frame times from
//! Apple's RealityKit tooling over a paired Xcode session. The simulator
//! exposes the same counters, accumulated per session so the experiment
//! runners can pull Figure 5/6-style distributions.

use crate::cost::FrameCost;
use visionsim_core::stats::{BoxplotSummary, Percentiles};
use visionsim_core::time::{SimDuration, SimTime};

/// The 90 FPS frame deadline (~11.1 ms).
pub const FRAME_DEADLINE: SimDuration = SimDuration::FRAME_90FPS;

/// Counters for one frame.
#[derive(Clone, Copy, Debug)]
pub struct FrameCounters {
    /// Frame timestamp.
    pub at: SimTime,
    /// Triangles rendered.
    pub triangles: usize,
    /// GPU time, ms.
    pub gpu_ms: f64,
    /// CPU time, ms.
    pub cpu_ms: f64,
    /// Deadline missed?
    pub missed: bool,
}

/// Session-long accumulation.
#[derive(Clone, Debug, Default)]
pub struct SessionCounters {
    frames: Vec<FrameCounters>,
}

impl SessionCounters {
    /// An empty accumulator.
    pub fn new() -> Self {
        SessionCounters::default()
    }

    /// Record one frame.
    pub fn record(&mut self, at: SimTime, cost: &FrameCost) {
        self.frames.push(FrameCounters {
            at,
            triangles: cost.triangles,
            gpu_ms: cost.gpu_ms,
            cpu_ms: cost.cpu_ms,
            missed: cost.missed_deadline,
        });
    }

    /// Number of frames recorded.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// All frames.
    pub fn frames(&self) -> &[FrameCounters] {
        &self.frames
    }

    /// Fraction of frames that missed the deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().filter(|f| f.missed).count() as f64 / self.frames.len() as f64
    }

    /// Effective FPS given the deadline misses (a missed frame displays at
    /// the next vsync, halving its rate contribution).
    pub fn effective_fps(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let target = 1.0 / FRAME_DEADLINE.as_secs_f64();
        let penalty: f64 = self
            .frames
            .iter()
            .map(|f| if f.missed { 0.5 } else { 1.0 })
            .sum::<f64>()
            / self.frames.len() as f64;
        target * penalty
    }

    /// Boxplot of rendered triangles (Figure 6a's unit).
    pub fn triangles_boxplot(&self) -> BoxplotSummary {
        let mut p =
            Percentiles::from_samples(self.frames.iter().map(|f| f.triangles as f64).collect());
        p.boxplot()
    }

    /// Boxplot of GPU ms (Figures 5b / 6b).
    pub fn gpu_boxplot(&self) -> BoxplotSummary {
        let mut p = Percentiles::from_samples(self.frames.iter().map(|f| f.gpu_ms).collect());
        p.boxplot()
    }

    /// Boxplot of CPU ms (Figure 6b).
    pub fn cpu_boxplot(&self) -> BoxplotSummary {
        let mut p = Percentiles::from_samples(self.frames.iter().map(|f| f.cpu_ms).collect());
        p.boxplot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(gpu: f64, cpu: f64, tris: usize) -> FrameCost {
        FrameCost {
            gpu_ms: gpu,
            cpu_ms: cpu,
            triangles: tris,
            missed_deadline: gpu.max(cpu) > FRAME_DEADLINE.as_millis_f64(),
        }
    }

    #[test]
    fn deadline_is_11_1_ms() {
        assert!((FRAME_DEADLINE.as_millis_f64() - 11.111).abs() < 0.001);
    }

    #[test]
    fn records_and_counts() {
        let mut s = SessionCounters::new();
        for i in 0..10 {
            s.record(
                SimTime::from_millis(i * 11),
                &cost(6.0, 5.0, 78_030),
            );
        }
        assert_eq!(s.frame_count(), 10);
        assert_eq!(s.miss_rate(), 0.0);
        assert!((s.effective_fps() - 90.0).abs() < 0.1);
    }

    #[test]
    fn misses_reduce_effective_fps() {
        let mut s = SessionCounters::new();
        for i in 0..10 {
            let gpu = if i % 2 == 0 { 12.0 } else { 6.0 };
            s.record(SimTime::from_millis(i * 11), &cost(gpu, 5.0, 50_000));
        }
        assert_eq!(s.miss_rate(), 0.5);
        assert!(s.effective_fps() < 70.0);
    }

    #[test]
    fn boxplots_summarize_distributions() {
        let mut s = SessionCounters::new();
        for i in 0..100 {
            s.record(
                SimTime::from_millis(i * 11),
                &cost(5.0 + (i % 10) as f64 * 0.2, 5.0, 40_000 + i as usize * 100),
            );
        }
        let g = s.gpu_boxplot();
        assert!(g.p5 <= g.median && g.median <= g.p95);
        let t = s.triangles_boxplot();
        assert!(t.mean > 40_000.0);
    }

    #[test]
    fn empty_session_is_safe() {
        let s = SessionCounters::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.effective_fps(), 0.0);
    }
}
