//! The visibility-aware optimization pipeline (§4.4).
//!
//! For each remote persona the pipeline picks a quality class:
//!
//! | class | trigger | Figure 5 anchor |
//! |---|---|---|
//! | `Full` | in viewport, foveal, near | 78,030 triangles |
//! | `Distance` | viewing distance > 3 m | 45,036 (−42%) |
//! | `Peripheral` | eccentricity > fovea | 21,036 (−73%) |
//! | `Proxy` | outside the viewport | 36 (−59% GPU time) |
//!
//! When several triggers apply, the coarsest class wins. Occlusion culling
//! exists as a flag because the paper *tests for it and finds it absent* —
//! the default configuration mirrors the measured system (off), and the
//! ablation benches turn it on to quantify what Apple left on the table.

use crate::camera::{Viewer, FOVEA_DEG};
use visionsim_mesh::geometry::Vec3;
use visionsim_mesh::lod::LodChain;

/// Distance beyond which the distance-aware LOD engages (§4.4: "beyond
/// three meters, a lower quality spatial persona is displayed").
pub const DISTANCE_LOD_M: f32 = 3.0;

/// Which optimizations are active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VisibilityFlags {
    /// Viewport adaptation (cull to a 36-triangle proxy off-screen).
    pub viewport: bool,
    /// Foveated rendering (peripheral LOD).
    pub foveated: bool,
    /// Distance-aware LOD.
    pub distance: bool,
    /// Occlusion culling (NOT adopted by the measured system).
    pub occlusion: bool,
}

impl VisibilityFlags {
    /// What the paper measured on Vision Pro: viewport + foveation +
    /// distance on, occlusion off.
    pub fn vision_pro() -> Self {
        VisibilityFlags {
            viewport: true,
            foveated: true,
            distance: true,
            occlusion: false,
        }
    }

    /// Everything off (the Figure 5 baseline behaviourally — a close,
    /// centred, foveal persona renders Full either way).
    pub fn none() -> Self {
        VisibilityFlags {
            viewport: false,
            foveated: false,
            distance: false,
            occlusion: false,
        }
    }
}

/// Quality class selected for one persona in one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LodClass {
    /// Full detail.
    Full,
    /// Distance-reduced.
    Distance,
    /// Peripheral (foveated).
    Peripheral,
    /// Out-of-viewport proxy.
    Proxy,
}

impl LodClass {
    /// Index into a 4-level LOD chain (full, distance, peripheral, proxy).
    pub fn chain_level(&self) -> usize {
        match self {
            LodClass::Full => 0,
            LodClass::Distance => 1,
            LodClass::Peripheral => 2,
            LodClass::Proxy => 3,
        }
    }
}

/// A remote persona placed in the viewer's space.
#[derive(Clone, Debug)]
pub struct PersonaInstance {
    /// Persona (head) center position.
    pub position: Vec3,
    /// Bounding radius, metres.
    pub radius: f32,
    /// Triangle counts per quality class: [full, distance, peripheral,
    /// proxy].
    pub lod_triangles: [usize; 4],
}

impl PersonaInstance {
    /// The paper's persona LOD ladder (78,030 / 45,036 / 21,036 / 36).
    pub fn paper_ladder(position: Vec3) -> Self {
        PersonaInstance {
            position,
            radius: 0.15,
            lod_triangles: [78_030, 45_036, 21_036, 36],
        }
    }

    /// Build from a real [`LodChain`] (expects ≥ 4 levels; missing levels
    /// clamp to the coarsest).
    pub fn from_chain(position: Vec3, radius: f32, chain: &LodChain) -> Self {
        let counts = chain.triangle_counts();
        let level = |i: usize| *counts.get(i).unwrap_or(counts.last().expect("non-empty"));
        PersonaInstance {
            position,
            radius,
            lod_triangles: [level(0), level(1), level(2), level(3)],
        }
    }

    /// Triangles rendered at a given class.
    pub fn triangles_at(&self, class: LodClass) -> usize {
        self.lod_triangles[class.chain_level()]
    }
}

/// Per-persona pipeline decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PersonaRender {
    /// Chosen class.
    pub class: LodClass,
    /// Triangles rendered.
    pub triangles: usize,
    /// Viewing distance, metres.
    pub distance_m: f32,
    /// Gaze eccentricity, degrees.
    pub eccentricity_deg: f32,
    /// Screen-coverage factor relative to a persona at 1 m (inverse-square
    /// falloff, clamped) — the fragment-load input to the cost model.
    pub coverage: f32,
    /// Whether the persona was skipped entirely by occlusion culling.
    pub occluded: bool,
}

/// The visibility pipeline.
#[derive(Clone, Copy, Debug)]
pub struct VisibilityPipeline {
    /// Active optimizations.
    pub flags: VisibilityFlags,
    /// Foveal half-angle, degrees.
    pub fovea_deg: f32,
    /// Distance threshold, metres.
    pub distance_m: f32,
}

impl VisibilityPipeline {
    /// A pipeline with the given flags and the paper's thresholds.
    pub fn new(flags: VisibilityFlags) -> Self {
        VisibilityPipeline {
            flags,
            fovea_deg: FOVEA_DEG,
            distance_m: DISTANCE_LOD_M,
        }
    }

    /// Does the segment viewer→target pass within any *other* persona's
    /// bounding sphere? (Cheap sphere-ray occlusion.)
    fn is_occluded(viewer: &Viewer, target: &PersonaInstance, others: &[PersonaInstance]) -> bool {
        let to_target = target.position - viewer.position;
        let dist = to_target.length();
        if dist <= f32::EPSILON {
            return false;
        }
        let dir = to_target * (1.0 / dist);
        for o in others {
            if std::ptr::eq(o, target) {
                continue;
            }
            let to_o = o.position - viewer.position;
            let t = to_o.dot(&dir);
            // Occluder must lie strictly between viewer and target.
            if t <= 0.0 || t >= dist - target.radius {
                continue;
            }
            let closest = viewer.position + dir * t;
            if closest.distance(&o.position) < o.radius {
                return true;
            }
        }
        false
    }

    /// Evaluate the pipeline for every persona in the scene.
    pub fn evaluate(&self, viewer: &Viewer, personas: &[PersonaInstance]) -> Vec<PersonaRender> {
        personas
            .iter()
            .map(|p| {
                let distance_m = viewer.distance_to(&p.position);
                let eccentricity_deg = viewer.eccentricity_deg(&p.position);
                let visible = viewer.sees(&p.position, p.radius);
                let occluded = self.flags.occlusion
                    && Self::is_occluded(viewer, p, personas);

                let mut class = LodClass::Full;
                if self.flags.distance && distance_m > self.distance_m {
                    class = class.max(LodClass::Distance);
                }
                if self.flags.foveated && eccentricity_deg > self.fovea_deg {
                    class = class.max(LodClass::Peripheral);
                }
                if (self.flags.viewport && !visible) || occluded {
                    class = class.max(LodClass::Proxy);
                }
                let coverage = if class == LodClass::Proxy {
                    0.0
                } else {
                    (1.0 / distance_m.max(0.3).powi(2)).min(4.0)
                };
                PersonaRender {
                    class,
                    triangles: p.triangles_at(class),
                    distance_m,
                    eccentricity_deg,
                    coverage,
                    occluded,
                }
            })
            .collect()
    }

    /// Total triangles across a scene evaluation.
    pub fn total_triangles(renders: &[PersonaRender]) -> usize {
        renders.iter().map(|r| r.triangles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viewer() -> Viewer {
        Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0))
    }

    fn persona_at(x: f32, z: f32) -> PersonaInstance {
        PersonaInstance::paper_ladder(Vec3::new(x, 0.0, z))
    }

    #[test]
    fn baseline_close_centred_is_full_detail() {
        // Figure 5 BL: staring from one metre.
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let r = pipe.evaluate(&viewer(), &[persona_at(0.0, -1.0)]);
        assert_eq!(r[0].class, LodClass::Full);
        assert_eq!(r[0].triangles, 78_030);
    }

    #[test]
    fn viewport_adaptation_drops_to_proxy() {
        // Figure 5 V: head turned away → 36 triangles.
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let r = pipe.evaluate(&viewer(), &[persona_at(0.0, 2.0)]); // behind
        assert_eq!(r[0].class, LodClass::Proxy);
        assert_eq!(r[0].triangles, 36);
        assert_eq!(r[0].coverage, 0.0);
    }

    #[test]
    fn foveation_reduces_peripheral_personas() {
        // Figure 5 F: persona at the viewport corner while gazing away.
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let v = viewer().with_gaze(Vec3::new(0.7, 0.0, -1.0)); // gaze right
        let r = pipe.evaluate(&v, &[persona_at(-0.8, -1.0)]); // persona left
        assert_eq!(r[0].class, LodClass::Peripheral);
        assert_eq!(r[0].triangles, 21_036);
    }

    #[test]
    fn distance_lod_engages_beyond_three_metres() {
        // Figure 5 D.
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let near = pipe.evaluate(&viewer(), &[persona_at(0.0, -2.9)]);
        let far = pipe.evaluate(&viewer(), &[persona_at(0.0, -3.2)]);
        assert_eq!(near[0].class, LodClass::Full);
        assert_eq!(far[0].class, LodClass::Distance);
        assert_eq!(far[0].triangles, 45_036);
    }

    #[test]
    fn coarsest_applicable_class_wins() {
        // Far AND peripheral → peripheral (coarser than distance).
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let v = viewer().with_gaze(Vec3::new(0.9, 0.0, -0.4));
        let r = pipe.evaluate(&v, &[persona_at(-2.0, -4.0)]);
        assert_eq!(r[0].class, LodClass::Peripheral);
    }

    #[test]
    fn disabled_flags_do_nothing() {
        let pipe = VisibilityPipeline::new(VisibilityFlags::none());
        let v = viewer().with_gaze(Vec3::new(0.9, 0.0, -0.4));
        // Far, peripheral, even behind: still Full with everything off.
        for p in [persona_at(0.0, -8.0), persona_at(-3.0, -1.0), persona_at(0.0, 3.0)] {
            let r = pipe.evaluate(&v, &[p]);
            assert_eq!(r[0].class, LodClass::Full);
        }
    }

    #[test]
    fn occlusion_is_off_in_the_measured_configuration() {
        // §4.4: U2..U5 in a line; U1 in front. Without occlusion culling
        // the hidden personas still render at full class.
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let line: Vec<PersonaInstance> =
            (1..=4).map(|i| persona_at(0.0, -(i as f32))).collect();
        let r = pipe.evaluate(&viewer(), &line);
        let total = VisibilityPipeline::total_triangles(&r);
        // All four render (U2 near-full; the rest behind it still counted).
        assert!(total > 3 * 21_036, "hidden personas were culled: {total}");
        assert!(r.iter().all(|x| !x.occluded));
    }

    #[test]
    fn occlusion_flag_culls_hidden_personas() {
        let mut flags = VisibilityFlags::vision_pro();
        flags.occlusion = true;
        let pipe = VisibilityPipeline::new(flags);
        let line: Vec<PersonaInstance> =
            (1..=4).map(|i| persona_at(0.0, -(i as f32))).collect();
        let r = pipe.evaluate(&viewer(), &line);
        // The nearest persona renders; the ones behind it collapse to proxy.
        assert_eq!(r[0].class, LodClass::Full);
        assert!(r[1..].iter().all(|x| x.occluded && x.class == LodClass::Proxy));
    }

    #[test]
    fn coverage_falls_with_distance_squared() {
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let near = pipe.evaluate(&viewer(), &[persona_at(0.0, -1.0)])[0].coverage;
        let far = pipe.evaluate(&viewer(), &[persona_at(0.0, -2.0)])[0].coverage;
        assert!((near / far - 4.0).abs() < 0.01, "{near} vs {far}");
    }

    #[test]
    fn from_chain_uses_real_counts() {
        use visionsim_mesh::generate::head_mesh;
        let mesh = head_mesh(10_000, 1);
        let chain = LodChain::build(&mesh, &[5_000, 2_000, 36]);
        let p = PersonaInstance::from_chain(Vec3::new(0.0, 0.0, -1.0), 0.15, &chain);
        assert_eq!(p.lod_triangles[0], 10_000);
        assert!(p.lod_triangles[1] > p.lod_triangles[2]);
    }
}
