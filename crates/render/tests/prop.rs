//! Randomized property tests for the visibility pipeline and cost model,
//! driven by deterministic SimRng cases.

use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_mesh::geometry::Vec3;
use visionsim_render::camera::Viewer;
use visionsim_render::cost::CostModel;
use visionsim_render::visibility::{LodClass, PersonaInstance, VisibilityFlags, VisibilityPipeline};

const CASES: u64 = 256;

fn case_rng(label: &str, i: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(0x004E_4DE4, label, i))
}

fn arb_dir(rng: &mut SimRng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.uniform_range(-1.0, 1.0) as f32,
            rng.uniform_range(-1.0, 1.0) as f32,
            rng.uniform_range(-1.0, 1.0) as f32,
        );
        if v.length() > 0.1 {
            return v.normalized();
        }
    }
}

fn arb_pos(rng: &mut SimRng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.uniform_range(-8.0, 8.0) as f32,
            rng.uniform_range(-2.0, 2.0) as f32,
            rng.uniform_range(-8.0, 8.0) as f32,
        );
        if v.length() > 0.4 {
            return v;
        }
    }
}

/// More optimizations never render more triangles than fewer.
#[test]
fn flags_are_monotone() {
    for i in 0..CASES {
        let mut rng = case_rng("flags_monotone", i);
        let forward = arb_dir(&mut rng);
        let gaze = arb_dir(&mut rng);
        let pos = arb_pos(&mut rng);
        let viewer = Viewer::looking(Vec3::ZERO, forward).with_gaze(gaze);
        let persona = [PersonaInstance::paper_ladder(pos)];
        let none = VisibilityPipeline::new(VisibilityFlags::none()).evaluate(&viewer, &persona);
        let all = VisibilityPipeline::new(VisibilityFlags::vision_pro()).evaluate(&viewer, &persona);
        assert!(all[0].triangles <= none[0].triangles);
        assert_eq!(none[0].class, LodClass::Full);
    }
}

/// The chosen class is consistent with the geometric predicates.
#[test]
fn class_matches_geometry() {
    for i in 0..CASES {
        let mut rng = case_rng("class_geometry", i);
        let forward = arb_dir(&mut rng);
        let gaze = arb_dir(&mut rng);
        let pos = arb_pos(&mut rng);
        let viewer = Viewer::looking(Vec3::ZERO, forward).with_gaze(gaze);
        let persona = PersonaInstance::paper_ladder(pos);
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let r = &pipe.evaluate(&viewer, std::slice::from_ref(&persona))[0];
        let visible = viewer.sees(&persona.position, persona.radius);
        if !visible {
            assert_eq!(r.class, LodClass::Proxy);
        } else if r.class == LodClass::Full {
            assert!(r.distance_m <= pipe.distance_m + 1e-4);
            assert!(r.eccentricity_deg <= pipe.fovea_deg + 1e-3);
        }
        // Coverage is zero exactly for proxies.
        assert_eq!(r.coverage == 0.0, r.class == LodClass::Proxy);
    }
}

/// GPU cost is monotone in the render set: adding a persona never
/// reduces frame cost.
#[test]
fn cost_is_monotone_in_personas() {
    for i in 0..CASES {
        let mut rng = case_rng("cost_monotone", i);
        let n = rng.uniform_u64(1, 5) as usize;
        let positions: Vec<Vec3> = (0..n).map(|_| arb_pos(&mut rng)).collect();
        let viewer = Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let model = CostModel::default();
        let mut last = 0.0;
        for k in 1..=positions.len() {
            let personas: Vec<PersonaInstance> = positions[..k]
                .iter()
                .map(|&p| PersonaInstance::paper_ladder(p))
                .collect();
            let renders = pipe.evaluate(&viewer, &personas);
            let gpu = model.gpu_ms_exact(&renders);
            assert!(gpu >= last - 1e-9, "cost decreased: {gpu} < {last}");
            last = gpu;
        }
    }
}

/// Frame costs are always positive and noise stays multiplicative.
#[test]
fn frame_costs_positive() {
    for i in 0..CASES {
        let mut rng = case_rng("frame_costs", i);
        let pos = arb_pos(&mut rng);
        let rx = rng.uniform_u64(0, 99_999) as usize;
        let seed = rng.next_u64();
        let viewer = Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let model = CostModel::default();
        let renders = pipe.evaluate(&viewer, &[PersonaInstance::paper_ladder(pos)]);
        let mut noise_rng = SimRng::seed_from_u64(seed);
        let cost = model.frame(&renders, rx, &mut noise_rng);
        assert!(cost.gpu_ms > 0.0);
        assert!(cost.cpu_ms > 0.0);
        let exact = model.gpu_ms_exact(&renders);
        assert!((cost.gpu_ms - exact).abs() < exact * 0.2 + 0.1);
    }
}

/// Eccentricity never exceeds the view angle + gaze-head divergence
/// (rough bound) and both are within [0, 180].
#[test]
fn angles_are_bounded() {
    for i in 0..CASES {
        let mut rng = case_rng("angles", i);
        let forward = arb_dir(&mut rng);
        let gaze = arb_dir(&mut rng);
        let pos = arb_pos(&mut rng);
        let viewer = Viewer::looking(Vec3::ZERO, forward).with_gaze(gaze);
        let va = viewer.view_angle_deg(&pos);
        let ec = viewer.eccentricity_deg(&pos);
        assert!((0.0..=180.0 + 1e-3).contains(&va));
        assert!((0.0..=180.0 + 1e-3).contains(&ec));
    }
}
