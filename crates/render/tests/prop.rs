//! Property-based tests for the visibility pipeline and cost model.

use proptest::prelude::*;
use visionsim_core::rng::SimRng;
use visionsim_mesh::geometry::Vec3;
use visionsim_render::camera::Viewer;
use visionsim_render::cost::CostModel;
use visionsim_render::visibility::{LodClass, PersonaInstance, VisibilityFlags, VisibilityPipeline};

fn arb_dir() -> impl Strategy<Value = Vec3> {
    (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0)
        .prop_filter_map("non-zero", |(x, y, z)| {
            let v = Vec3::new(x, y, z);
            if v.length() > 0.1 {
                Some(v.normalized())
            } else {
                None
            }
        })
}

fn arb_pos() -> impl Strategy<Value = Vec3> {
    (-8.0f32..8.0, -2.0f32..2.0, -8.0f32..8.0)
        .prop_filter_map("not at viewer", |(x, y, z)| {
            let v = Vec3::new(x, y, z);
            if v.length() > 0.4 {
                Some(v)
            } else {
                None
            }
        })
}

proptest! {
    /// More optimizations never render more triangles than fewer.
    #[test]
    fn flags_are_monotone(forward in arb_dir(), gaze in arb_dir(), pos in arb_pos()) {
        let viewer = Viewer::looking(Vec3::ZERO, forward).with_gaze(gaze);
        let persona = [PersonaInstance::paper_ladder(pos)];
        let none = VisibilityPipeline::new(VisibilityFlags::none()).evaluate(&viewer, &persona);
        let all = VisibilityPipeline::new(VisibilityFlags::vision_pro()).evaluate(&viewer, &persona);
        prop_assert!(all[0].triangles <= none[0].triangles);
        prop_assert_eq!(none[0].class, LodClass::Full);
    }

    /// The chosen class is consistent with the geometric predicates.
    #[test]
    fn class_matches_geometry(forward in arb_dir(), gaze in arb_dir(), pos in arb_pos()) {
        let viewer = Viewer::looking(Vec3::ZERO, forward).with_gaze(gaze);
        let persona = PersonaInstance::paper_ladder(pos);
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let r = &pipe.evaluate(&viewer, std::slice::from_ref(&persona))[0];
        let visible = viewer.sees(&persona.position, persona.radius);
        if !visible {
            prop_assert_eq!(r.class, LodClass::Proxy);
        } else if r.class == LodClass::Full {
            prop_assert!(r.distance_m <= pipe.distance_m + 1e-4);
            prop_assert!(r.eccentricity_deg <= pipe.fovea_deg + 1e-3);
        }
        // Coverage is zero exactly for proxies.
        prop_assert_eq!(r.coverage == 0.0, r.class == LodClass::Proxy);
    }

    /// GPU cost is monotone in the render set: adding a persona never
    /// reduces frame cost.
    #[test]
    fn cost_is_monotone_in_personas(positions in prop::collection::vec(arb_pos(), 1..6)) {
        let viewer = Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let model = CostModel::default();
        let mut last = 0.0;
        for k in 1..=positions.len() {
            let personas: Vec<PersonaInstance> = positions[..k]
                .iter()
                .map(|&p| PersonaInstance::paper_ladder(p))
                .collect();
            let renders = pipe.evaluate(&viewer, &personas);
            let gpu = model.gpu_ms_exact(&renders);
            prop_assert!(gpu >= last - 1e-9, "cost decreased: {gpu} < {last}");
            last = gpu;
        }
    }

    /// Frame costs are always positive and noise stays multiplicative.
    #[test]
    fn frame_costs_positive(pos in arb_pos(), rx in 0usize..100_000, seed in any::<u64>()) {
        let viewer = Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
        let model = CostModel::default();
        let renders = pipe.evaluate(&viewer, &[PersonaInstance::paper_ladder(pos)]);
        let mut rng = SimRng::seed_from_u64(seed);
        let cost = model.frame(&renders, rx, &mut rng);
        prop_assert!(cost.gpu_ms > 0.0);
        prop_assert!(cost.cpu_ms > 0.0);
        let exact = model.gpu_ms_exact(&renders);
        prop_assert!((cost.gpu_ms - exact).abs() < exact * 0.2 + 0.1);
    }

    /// Eccentricity never exceeds the view angle + gaze-head divergence
    /// (rough bound) and both are within [0, 180].
    #[test]
    fn angles_are_bounded(forward in arb_dir(), gaze in arb_dir(), pos in arb_pos()) {
        let viewer = Viewer::looking(Vec3::ZERO, forward).with_gaze(gaze);
        let va = viewer.view_angle_deg(&pos);
        let ec = viewer.eccentricity_deg(&pos);
        prop_assert!((0.0..=180.0 + 1e-3).contains(&va));
        prop_assert!((0.0..=180.0 + 1e-3).contains(&ec));
    }
}
