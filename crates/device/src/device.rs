//! Device kinds and capabilities.

use std::fmt;

/// The endpoint devices used in the paper's testbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Apple Vision Pro (video see-through MR headset, 90 FPS target).
    VisionPro,
    /// MacBook (laptop).
    MacBook,
    /// iPad (tablet).
    IPad,
    /// iPhone (phone).
    IPhone,
}

impl DeviceKind {
    /// All kinds the testbed uses.
    pub const ALL: [DeviceKind; 4] = [
        DeviceKind::VisionPro,
        DeviceKind::MacBook,
        DeviceKind::IPad,
        DeviceKind::IPhone,
    ];

    /// Only Vision Pro can capture a spatial persona (TrueDepth
    /// pre-capture + live face/eye tracking) and render others' spatial
    /// personas.
    pub fn supports_spatial_persona(&self) -> bool {
        matches!(self, DeviceKind::VisionPro)
    }

    /// Display refresh target, FPS.
    pub fn display_fps(&self) -> u32 {
        match self {
            DeviceKind::VisionPro => 90,
            DeviceKind::MacBook | DeviceKind::IPad | DeviceKind::IPhone => 60,
        }
    }

    /// True for the headset (video see-through pipeline applies).
    pub fn is_headset(&self) -> bool {
        matches!(self, DeviceKind::VisionPro)
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DeviceKind::VisionPro => "Vision Pro",
            DeviceKind::MacBook => "MacBook",
            DeviceKind::IPad => "iPad",
            DeviceKind::IPhone => "iPhone",
        };
        write!(f, "{name}")
    }
}

/// A concrete device owned by a participant.
#[derive(Clone, Debug)]
pub struct Device {
    /// What it is.
    pub kind: DeviceKind,
    /// Display label ("U1's Vision Pro").
    pub label: String,
}

impl Device {
    /// Construct a labelled device.
    pub fn new(kind: DeviceKind, label: &str) -> Self {
        Device {
            kind,
            label: label.to_string(),
        }
    }
}

/// True when *every* device in a session is a Vision Pro — the condition
/// under which FaceTime uses spatial personas over its QUIC transport
/// (§4.1).
pub fn all_vision_pro(devices: &[Device]) -> bool {
    !devices.is_empty() && devices.iter().all(|d| d.kind == DeviceKind::VisionPro)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_vision_pro_supports_spatial_persona() {
        assert!(DeviceKind::VisionPro.supports_spatial_persona());
        for k in [DeviceKind::MacBook, DeviceKind::IPad, DeviceKind::IPhone] {
            assert!(!k.supports_spatial_persona(), "{k}");
        }
    }

    #[test]
    fn vision_pro_targets_90fps() {
        assert_eq!(DeviceKind::VisionPro.display_fps(), 90);
        assert_eq!(DeviceKind::MacBook.display_fps(), 60);
    }

    #[test]
    fn all_vision_pro_predicate() {
        let avp = |l: &str| Device::new(DeviceKind::VisionPro, l);
        assert!(all_vision_pro(&[avp("U1"), avp("U2")]));
        assert!(!all_vision_pro(&[
            avp("U1"),
            Device::new(DeviceKind::MacBook, "U2")
        ]));
        assert!(!all_vision_pro(&[]));
    }

    #[test]
    fn headset_classification() {
        assert!(DeviceKind::VisionPro.is_headset());
        assert!(!DeviceKind::IPhone.is_headset());
    }
}
