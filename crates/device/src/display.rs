//! Video see-through display pipeline and the display-latency experiment.
//!
//! §4.3's decisive measurement: record what U1's headset shows, have U1
//! abruptly change viewport, and compare *when* the real-world objects and
//! *when* U2's persona are re-rendered for the new viewport, while `tc`
//! injects 0–1000 ms of extra network delay.
//!
//! * Real-world objects go camera → compositor → display: photon-to-photon
//!   latency, no network involvement.
//! * A **locally reconstructed** persona (3D state held on-device) is also
//!   re-rendered from the local state in the very next frame — so the
//!   difference stays under one frame (<16 ms) no matter the network.
//! * A **remote pre-rendered** persona must wait for the sender to learn
//!   the new viewport and ship the re-rendered view: the difference tracks
//!   the RTT.
//!
//! The paper measures <16 ms at every injected delay and concludes the
//! content is not sender-rendered video.

use visionsim_core::rng::SimRng;
use visionsim_core::time::SimDuration;

/// How the remote persona's pixels come to exist on this display.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Receiver holds 3D state and renders locally (semantic / 3D
    /// delivery).
    LocalReconstruction,
    /// Sender renders for the receiver's viewport and ships video.
    RemotePreRendered,
}

/// The display pipeline of a video see-through headset.
#[derive(Clone, Debug)]
pub struct DisplayModel {
    /// Display refresh interval.
    pub frame_interval: SimDuration,
    /// Camera-to-display (photon-to-photon) latency for the see-through
    /// feed.
    pub passthrough_latency: SimDuration,
}

impl Default for DisplayModel {
    fn default() -> Self {
        DisplayModel {
            frame_interval: SimDuration::FRAME_90FPS,
            passthrough_latency: SimDuration::from_millis(12),
        }
    }
}

impl DisplayModel {
    /// When, after an abrupt viewport change at t=0, the real-world
    /// objects are first shown for the new viewport: the passthrough
    /// latency plus alignment to the next vsync.
    pub fn real_world_update(&self, rng: &mut SimRng) -> SimDuration {
        let vsync_phase = SimDuration::from_nanos(
            rng.uniform_u64(0, self.frame_interval.as_nanos().saturating_sub(1)),
        );
        self.passthrough_latency + vsync_phase
    }

    /// When the remote persona is first shown for the new viewport.
    /// `one_way_delay` is the current network one-way latency (including
    /// any injected `tc` delay).
    pub fn persona_update(
        &self,
        mode: DeliveryMode,
        one_way_delay: SimDuration,
        rng: &mut SimRng,
    ) -> SimDuration {
        let vsync_phase = SimDuration::from_nanos(
            rng.uniform_u64(0, self.frame_interval.as_nanos().saturating_sub(1)),
        );
        match mode {
            // Local state: re-render next frame, same pipeline as the
            // passthrough compositor.
            DeliveryMode::LocalReconstruction => self.passthrough_latency + vsync_phase,
            // Remote: viewport info travels to the sender, the re-rendered
            // frame travels back, then displays at the next vsync.
            DeliveryMode::RemotePreRendered => {
                one_way_delay * 2 + self.passthrough_latency + vsync_phase
            }
        }
    }

    /// One sample of the §4.3 measurement: the absolute difference between
    /// the real-world update and the persona update after a viewport
    /// change.
    pub fn display_latency_difference(
        &self,
        mode: DeliveryMode,
        one_way_delay: SimDuration,
        rng: &mut SimRng,
    ) -> SimDuration {
        let world = self.real_world_update(rng);
        let persona = self.persona_update(mode, one_way_delay, rng);
        if persona >= world {
            persona - world
        } else {
            world - persona
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_reconstruction_difference_is_sub_frame_at_any_delay() {
        let d = DisplayModel::default();
        let mut rng = SimRng::seed_from_u64(1);
        for delay_ms in [0u64, 100, 250, 500, 1_000] {
            for _ in 0..50 {
                let diff = d.display_latency_difference(
                    DeliveryMode::LocalReconstruction,
                    SimDuration::from_millis(delay_ms),
                    &mut rng,
                );
                // Paper: consistently <16 ms.
                assert!(
                    diff < SimDuration::from_millis(16),
                    "diff {diff} at {delay_ms} ms"
                );
            }
        }
    }

    #[test]
    fn remote_rendering_difference_tracks_rtt() {
        let d = DisplayModel::default();
        let mut rng = SimRng::seed_from_u64(2);
        let delay = SimDuration::from_millis(250);
        let mut min = f64::MAX;
        for _ in 0..50 {
            let diff = d
                .display_latency_difference(DeliveryMode::RemotePreRendered, delay, &mut rng)
                .as_millis_f64();
            min = min.min(diff);
        }
        // RTT = 500 ms dominates; even the luckiest vsync alignment cannot
        // hide it.
        assert!(min > 400.0, "min diff {min}");
    }

    #[test]
    fn remote_at_zero_delay_is_indistinguishable_from_local() {
        // Control condition: with no network delay the two modes differ
        // only by vsync phase.
        let d = DisplayModel::default();
        let mut rng = SimRng::seed_from_u64(3);
        let diff = d.display_latency_difference(
            DeliveryMode::RemotePreRendered,
            SimDuration::ZERO,
            &mut rng,
        );
        assert!(diff < d.frame_interval);
    }

    #[test]
    fn real_world_update_is_never_instant() {
        let d = DisplayModel::default();
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(d.real_world_update(&mut rng) >= d.passthrough_latency);
        }
    }
}
