//! The Vision Pro camera suite (paper Figure 2) and the persona capture
//! pipeline.
//!
//! * Main cameras — the see-through view of the real world.
//! * Tracking cameras — position + extra surroundings.
//! * TrueDepth cameras — pre-capture the spatial persona *offline*.
//! * Downward cameras — monitor the user's face live.
//! * Internal cameras — track the eyes (enabling eye contact and
//!   foveation).
//!
//! The capture pipeline stitches these into the persona stream: an offline
//! TrueDepth scan yields the 78,030-triangle persona mesh (exchanged at
//! session setup), and at runtime the downward + internal cameras produce
//! the 74-keypoint semantic frames.

use std::sync::Arc;
use visionsim_core::rng::SimRng;
use visionsim_mesh::generate::PERSONA_TRIANGLES;
use visionsim_mesh::geometry::TriangleMesh;
use visionsim_sensor::capture::RgbdCapture;
use visionsim_sensor::keypoints::KeypointFrame;
use visionsim_sensor::motion::MotionConfig;

/// A camera class on the headset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CameraKind {
    /// Front main cameras (see-through feed).
    Main,
    /// Side tracking cameras (pose + surroundings).
    Tracking,
    /// TrueDepth cameras (offline persona pre-capture).
    TrueDepth,
    /// Downward cameras (live face monitoring).
    Downward,
    /// Internal cameras (eye tracking).
    Internal,
}

impl CameraKind {
    /// What the camera contributes to telepresence.
    pub fn role(&self) -> &'static str {
        match self {
            CameraKind::Main => "see-through view of the real world",
            CameraKind::Tracking => "user position and extra surroundings",
            CameraKind::TrueDepth => "offline spatial persona pre-capture",
            CameraKind::Downward => "live face monitoring",
            CameraKind::Internal => "eye tracking",
        }
    }

    /// Whether this camera feeds the *live* persona stream.
    pub fn feeds_live_persona(&self) -> bool {
        matches!(self, CameraKind::Downward | CameraKind::Internal)
    }
}

/// The full suite on one headset.
#[derive(Clone, Debug)]
pub struct CameraSuite {
    cams: Vec<CameraKind>,
}

impl Default for CameraSuite {
    fn default() -> Self {
        Self::vision_pro()
    }
}

impl CameraSuite {
    /// Vision Pro's suite per Figure 2.
    pub fn vision_pro() -> Self {
        CameraSuite {
            cams: vec![
                CameraKind::Main,
                CameraKind::Main,
                CameraKind::Tracking,
                CameraKind::Tracking,
                CameraKind::TrueDepth,
                CameraKind::TrueDepth,
                CameraKind::Downward,
                CameraKind::Downward,
                CameraKind::Internal,
                CameraKind::Internal,
            ],
        }
    }

    /// All cameras.
    pub fn cameras(&self) -> &[CameraKind] {
        &self.cams
    }

    /// Count of a given kind.
    pub fn count(&self, kind: CameraKind) -> usize {
        self.cams.iter().filter(|&&c| c == kind).count()
    }
}

/// The persona capture pipeline on one headset.
#[derive(Debug)]
pub struct PersonaCapturePipeline {
    /// The pre-captured persona mesh (offline TrueDepth scan; shared from
    /// the process-wide mesh cache — every session of the same user seed
    /// reuses one allocation).
    persona_mesh: Arc<TriangleMesh>,
    /// Live keypoint source (downward + internal cameras).
    live: RgbdCapture,
}

impl PersonaCapturePipeline {
    /// Run the offline pre-capture for a user identified by `seed` and set
    /// up live tracking.
    pub fn pre_capture(seed: u64) -> Self {
        PersonaCapturePipeline {
            persona_mesh: visionsim_mesh::cache::head(PERSONA_TRIANGLES, seed),
            live: RgbdCapture::new(MotionConfig::default()),
        }
    }

    /// The pre-captured persona mesh (what gets exchanged at session
    /// setup so remote peers can reconstruct locally).
    pub fn persona_mesh(&self) -> &TriangleMesh {
        &self.persona_mesh
    }

    /// Produce the next live semantic frame: the 74-point persona subset.
    pub fn capture_semantics(&mut self, rng: &mut SimRng) -> KeypointFrame {
        self.live.next_frame(rng).persona_subset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_figure2() {
        let s = CameraSuite::vision_pro();
        assert_eq!(s.count(CameraKind::Main), 2);
        assert_eq!(s.count(CameraKind::Tracking), 2);
        assert_eq!(s.count(CameraKind::TrueDepth), 2);
        assert_eq!(s.count(CameraKind::Downward), 2);
        assert_eq!(s.count(CameraKind::Internal), 2);
    }

    #[test]
    fn only_downward_and_internal_feed_live_persona() {
        for c in CameraSuite::vision_pro().cameras() {
            let expected =
                matches!(c, CameraKind::Downward | CameraKind::Internal);
            assert_eq!(c.feeds_live_persona(), expected, "{c:?}");
        }
    }

    #[test]
    fn roles_are_documented() {
        assert!(CameraKind::TrueDepth.role().contains("pre-capture"));
        assert!(CameraKind::Internal.role().contains("eye"));
    }

    #[test]
    fn pre_capture_yields_persona_budget_mesh() {
        let p = PersonaCapturePipeline::pre_capture(7);
        assert_eq!(p.persona_mesh().triangle_count(), PERSONA_TRIANGLES);
    }

    #[test]
    fn different_users_get_different_personas() {
        let a = PersonaCapturePipeline::pre_capture(1);
        let b = PersonaCapturePipeline::pre_capture(2);
        assert_ne!(a.persona_mesh().positions, b.persona_mesh().positions);
    }

    #[test]
    fn live_capture_emits_74_keypoints() {
        let mut p = PersonaCapturePipeline::pre_capture(3);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(p.capture_semantics(&mut rng).len(), 74);
    }
}
