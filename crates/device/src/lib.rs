//! # visionsim-device
//!
//! Endpoint device models. The paper's testbed pairs a Vision Pro (U1)
//! with a second device that is either another Vision Pro, a MacBook, an
//! iPad, or an iPhone — the device mix determines which persona type and
//! transport FaceTime uses (§4.1). This crate models:
//!
//! * [`device`] — device kinds and capabilities (only Vision Pro can
//!   capture *and* render spatial personas);
//! * [`cameras`] — the Vision Pro camera suite of Figure 2 and the persona
//!   capture pipeline (TrueDepth pre-capture offline, downward cameras for
//!   live face tracking, internal cameras for eye tracking);
//! * [`display`] — the video see-through display pipeline and the
//!   display-latency measurement of §4.3: with local reconstruction, the
//!   latency difference between real-world objects and the persona is
//!   bounded by one frame regardless of network delay; with remote
//!   (pre-rendered) delivery it tracks the RTT.

pub mod cameras;
pub mod device;
pub mod display;

pub use cameras::{CameraKind, CameraSuite, PersonaCapturePipeline};
pub use device::{Device, DeviceKind};
pub use display::{DeliveryMode, DisplayModel};
