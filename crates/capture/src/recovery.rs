//! Recovery metrics for chaos experiments.
//!
//! When a fault hits a session mid-run (link flap, rate cliff, server
//! death), the interesting numbers are not the steady-state averages but
//! the *transient* ones: how long until the session noticed, how long
//! until it was usable again, how many times it oscillated on the way,
//! and how much wall-clock was spent degraded. [`RecoveryTracker`] turns
//! a timeline of health samples — any boolean signal, e.g. "persona is
//! spatial" or "interval completeness ≥ 0.9" — into a [`RecoveryReport`]
//! relative to a known fault-injection instant.

use visionsim_core::time::{SimDuration, SimTime};

/// Accumulates a health timeline: one boolean sample per observation
/// instant, in non-decreasing time order.
#[derive(Clone, Debug, Default)]
pub struct RecoveryTracker {
    samples: Vec<(SimTime, bool)>,
}

/// The transient-response summary of one fault episode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Fault injection → first unhealthy sample at or after it. `None`
    /// when the signal never went unhealthy (the fault was absorbed).
    pub time_to_detect: Option<SimDuration>,
    /// Fault injection → start of the final healthy run (MTTR). `None`
    /// when the fault was absorbed, or when the timeline ends unhealthy
    /// (the session never recovered).
    pub time_to_recover: Option<SimDuration>,
    /// Healthy→unhealthy transitions across the whole timeline. A clean
    /// single-dip episode counts 1; oscillation counts each dip.
    pub flaps: u32,
    /// Total seconds spent unhealthy (each sample covers the interval up
    /// to the next sample; the final sample covers nothing).
    pub degraded_secs: f64,
}

impl RecoveryReport {
    /// True when the signal dipped and came back: the ideal chaos-drill
    /// outcome.
    pub fn recovered(&self) -> bool {
        self.time_to_detect.is_some() && self.time_to_recover.is_some()
    }
}

impl RecoveryTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build directly from a pre-collected timeline.
    pub fn from_samples(samples: Vec<(SimTime, bool)>) -> Self {
        let mut t = Self { samples };
        t.samples.sort_by_key(|&(at, _)| at);
        t
    }

    /// Append one observation. Samples must arrive in time order;
    /// out-of-order inserts are sorted in at report time by
    /// [`RecoveryTracker::from_samples`] but not here.
    pub fn record(&mut self, at: SimTime, healthy: bool) {
        self.samples.push((at, healthy));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summarize the transient response to a fault injected at `fault_at`.
    pub fn report(&self, fault_at: SimTime) -> RecoveryReport {
        // Detection: first unhealthy observation at/after the fault.
        let detect_at = self
            .samples
            .iter()
            .find(|&&(at, healthy)| at >= fault_at && !healthy)
            .map(|&(at, _)| at);

        // Recovery: start of the final healthy run *after* detection —
        // the first healthy sample following the last unhealthy one.
        let time_to_recover = detect_at.and_then(|d| {
            let last_bad = self
                .samples
                .iter()
                .rposition(|&(at, healthy)| at >= d && !healthy)?;
            let (rec_at, healthy) = *self.samples.get(last_bad + 1)?;
            healthy.then(|| rec_at.since(fault_at))
        });

        let mut flaps = 0u32;
        let mut degraded_secs = 0.0;
        for pair in self.samples.windows(2) {
            let ((at0, h0), (at1, h1)) = (pair[0], pair[1]);
            if h0 && !h1 {
                flaps += 1;
            }
            if !h0 {
                degraded_secs += at1.since(at0).as_secs_f64();
            }
        }
        // A timeline that *starts* unhealthy already dipped once.
        if self.samples.first().is_some_and(|&(_, h)| !h) {
            flaps += 1;
        }

        RecoveryReport {
            time_to_detect: detect_at.map(|d| d.since(fault_at)),
            time_to_recover,
            flaps,
            degraded_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(samples: &[(u64, bool)]) -> RecoveryTracker {
        RecoveryTracker::from_samples(
            samples
                .iter()
                .map(|&(ms, h)| (SimTime::from_millis(ms), h))
                .collect(),
        )
    }

    #[test]
    fn clean_dip_and_recovery() {
        // Healthy 0-2s, fault at 2s, unhealthy 2.5-4s, healthy from 4.5s.
        let t = timeline(&[
            (0, true),
            (1_000, true),
            (2_000, true),
            (2_500, false),
            (3_000, false),
            (3_500, false),
            (4_000, false),
            (4_500, true),
            (5_000, true),
            (6_000, true),
        ]);
        let r = t.report(SimTime::from_millis(2_000));
        assert_eq!(r.time_to_detect, Some(SimDuration::from_millis(500)));
        assert_eq!(r.time_to_recover, Some(SimDuration::from_millis(2_500)));
        assert_eq!(r.flaps, 1);
        assert!((r.degraded_secs - 2.0).abs() < 1e-9);
        assert!(r.recovered());
    }

    #[test]
    fn absorbed_fault_detects_nothing() {
        let t = timeline(&[(0, true), (1_000, true), (2_000, true), (3_000, true)]);
        let r = t.report(SimTime::from_millis(1_000));
        assert_eq!(r.time_to_detect, None);
        assert_eq!(r.time_to_recover, None);
        assert_eq!(r.flaps, 0);
        assert_eq!(r.degraded_secs, 0.0);
        assert!(!r.recovered());
    }

    #[test]
    fn never_recovering_yields_detect_but_no_mttr() {
        let t = timeline(&[(0, true), (1_000, false), (2_000, false), (3_000, false)]);
        let r = t.report(SimTime::from_millis(500));
        assert_eq!(r.time_to_detect, Some(SimDuration::from_millis(500)));
        assert_eq!(r.time_to_recover, None);
        assert!(!r.recovered());
        assert!((r.degraded_secs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn oscillation_counts_each_flap_and_recovers_at_the_last_run() {
        let t = timeline(&[
            (0, true),
            (1_000, false),
            (2_000, true),
            (3_000, false),
            (4_000, true),
            (5_000, true),
        ]);
        let r = t.report(SimTime::from_millis(900));
        assert_eq!(r.flaps, 2);
        // Recovery measured to the *final* healthy run, not the first
        // blip back up at 2s.
        assert_eq!(
            r.time_to_recover,
            Some(SimDuration::from_millis(4_000 - 900))
        );
        assert!((r.degraded_secs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline_is_harmless() {
        let t = RecoveryTracker::new();
        assert!(t.is_empty());
        let r = t.report(SimTime::from_millis(0));
        assert_eq!(r.time_to_detect, None);
        assert_eq!(r.flaps, 0);
    }

    #[test]
    fn fault_at_time_zero_with_unhealthy_first_sample() {
        // The fault lands at t=0 and the very first observation is already
        // unhealthy: detection latency is exactly zero, not skipped.
        let t = timeline(&[(0, false), (500, false), (1_000, true), (2_000, true)]);
        let r = t.report(SimTime::ZERO);
        assert_eq!(r.time_to_detect, Some(SimDuration::ZERO));
        assert_eq!(r.time_to_recover, Some(SimDuration::from_millis(1_000)));
        // Starting unhealthy counts as one dip, no phantom extra flap.
        assert_eq!(r.flaps, 1);
        assert!((r.degraded_secs - 1.0).abs() < 1e-9);
        assert!(r.recovered());
    }

    #[test]
    fn overlapping_faults_share_one_degraded_accounting() {
        // Two faults hit the same participant before the signal comes back:
        // fault A at 1s opens the dip, fault B at 2s lands inside it. Both
        // reports walk the same timeline, so degraded seconds are counted
        // once from the samples — never summed per fault, never negative.
        let t = timeline(&[
            (0, true),
            (1_500, false), // fault A (1s) detected here
            (2_500, false), // fault B (2s) lands inside the same dip
            (3_500, false),
            (4_000, true),
            (5_000, true),
        ]);
        let a = t.report(SimTime::from_millis(1_000));
        let b = t.report(SimTime::from_millis(2_000));
        assert_eq!(a.time_to_detect, Some(SimDuration::from_millis(500)));
        // Fault B's first unhealthy sample at/after injection is 2.5s.
        assert_eq!(b.time_to_detect, Some(SimDuration::from_millis(500)));
        assert_eq!(a.time_to_recover, Some(SimDuration::from_millis(3_000)));
        assert_eq!(b.time_to_recover, Some(SimDuration::from_millis(2_000)));
        // One dip, one flap — the overlapping fault does not re-open it.
        assert_eq!(a.flaps, 1);
        assert_eq!(b.flaps, 1);
        // 1.5s..4s unhealthy = 2.5 degraded seconds, identical under both
        // reports: no double-count from overlapping fault windows.
        assert!((a.degraded_secs - 2.5).abs() < 1e-9);
        assert_eq!(a.degraded_secs, b.degraded_secs);
        assert!(a.degraded_secs >= 0.0);
    }

    #[test]
    fn recovery_that_never_completes_keeps_degraded_exact() {
        // The timeline ends mid-outage: a healthy blip at 2s, then down for
        // good. MTTR must stay `None`, and degraded seconds must cover
        // exactly the observed unhealthy intervals — the final sample's
        // open-ended tail contributes nothing (so the sum can never run
        // negative or overshoot the timeline span).
        let t = timeline(&[
            (0, true),
            (1_000, false),
            (2_000, true),
            (3_000, false),
            (4_000, false),
            (5_000, false),
        ]);
        let r = t.report(SimTime::from_millis(500));
        assert_eq!(r.time_to_detect, Some(SimDuration::from_millis(500)));
        assert_eq!(r.time_to_recover, None);
        assert!(!r.recovered());
        assert_eq!(r.flaps, 2);
        // 1s..2s plus 3s..5s = 3.0s, strictly bounded by the 5s span.
        assert!((r.degraded_secs - 3.0).abs() < 1e-9);
        assert!(r.degraded_secs >= 0.0 && r.degraded_secs <= 5.0);
    }

    #[test]
    fn incremental_recording_matches_batch() {
        let mut inc = RecoveryTracker::new();
        for &(ms, h) in &[(0u64, true), (500, false), (1_000, true)] {
            inc.record(SimTime::from_millis(ms), h);
        }
        let batch = timeline(&[(0, true), (500, false), (1_000, true)]);
        assert_eq!(inc.report(SimTime::from_millis(0)), batch.report(SimTime::from_millis(0)));
        assert_eq!(inc.len(), 3);
    }
}
