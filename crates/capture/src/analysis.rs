//! Measurement reductions over a capture.
//!
//! [`CaptureAnalysis`] answers the questions the paper asks of its AP-side
//! captures:
//!
//! * What is the subject device's uplink/downlink throughput? (Figure 4,
//!   Figure 6c — reported as boxplot summaries over per-second samples.)
//! * Which protocol does each flow speak? (§4.1 — RTP vs QUIC.)
//! * Who are the peers, and where are they? (server discovery +
//!   geolocation, Table 1's first step; also the P2P-vs-SFU distinction —
//!   a P2P session's peer is another client, an SFU session's peer is a
//!   provider server.)

use crate::flow::{FlowKey, FlowTable};
use std::collections::BTreeMap;
use visionsim_core::stats::{BoxplotSummary, Percentiles};
use visionsim_core::units::{ByteSize, DataRate};
use visionsim_geo::geodb::{GeoDb, NetAddr};
use visionsim_geo::regions::Region;
use visionsim_net::tap::TapRecord;
use visionsim_transport::classify::WireProtocol;

/// Analysis of one capture with respect to one subject device.
#[derive(Debug)]
pub struct CaptureAnalysis {
    table: FlowTable,
    subject: NetAddr,
}

/// A discovered peer endpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct PeerInfo {
    /// Peer address.
    pub addr: NetAddr,
    /// Bytes exchanged with the subject (both directions).
    pub bytes: ByteSize,
    /// Geolocated org, if registered.
    pub org: Option<String>,
    /// Geolocated city, if registered.
    pub city: Option<String>,
    /// Geolocated region, if known.
    pub region: Option<Region>,
}

impl CaptureAnalysis {
    /// Build from tap records, analyzing traffic of `subject`.
    pub fn new<'a, I: IntoIterator<Item = &'a TapRecord>>(records: I, subject: NetAddr) -> Self {
        let mut table = FlowTable::new();
        table.ingest_all(records);
        CaptureAnalysis { table, subject }
    }

    /// The underlying flow table.
    pub fn flows(&self) -> &FlowTable {
        &self.table
    }

    /// Mean uplink rate of the subject (sum across its outgoing flows).
    pub fn uplink_rate(&self) -> DataRate {
        self.table
            .uplink_of(self.subject)
            .iter()
            .map(|(_, s)| s.mean_rate())
            .sum()
    }

    /// Mean downlink rate of the subject.
    pub fn downlink_rate(&self) -> DataRate {
        self.table
            .downlink_of(self.subject)
            .iter()
            .map(|(_, s)| s.mean_rate())
            .sum()
    }

    /// Boxplot of per-second uplink throughput samples, Mbps (the Figure 4
    /// presentation).
    pub fn uplink_boxplot_mbps(&self) -> BoxplotSummary {
        Percentiles::from_samples(self.direction_samples(true)).boxplot()
    }

    /// Boxplot of per-second downlink throughput samples, Mbps.
    pub fn downlink_boxplot_mbps(&self) -> BoxplotSummary {
        Percentiles::from_samples(self.direction_samples(false)).boxplot()
    }

    /// Raw per-second uplink throughput samples, Mbps, ramp-up/teardown
    /// seconds trimmed. Runners that pool across repeats should pool these
    /// rather than the boxplot skeleton, so pooled percentiles come from
    /// the real sample distribution.
    pub fn uplink_per_second_mbps(&self) -> Vec<f64> {
        self.direction_samples(true)
    }

    /// Raw per-second downlink throughput samples, Mbps (trimmed).
    pub fn downlink_per_second_mbps(&self) -> Vec<f64> {
        self.direction_samples(false)
    }

    fn direction_samples(&self, uplink: bool) -> Vec<f64> {
        // Sum same-second samples across flows of the direction.
        let flows = if uplink {
            self.table.uplink_of(self.subject)
        } else {
            self.table.downlink_of(self.subject)
        };
        let mut per_second: BTreeMap<usize, f64> = BTreeMap::new();
        for (_, stats) in flows {
            for (i, r) in stats.rate.rates().iter().enumerate() {
                *per_second.entry(i).or_insert(0.0) += r.as_mbps_f64();
            }
        }
        // Trim ramp-up/teardown seconds as the paper's methodology does.
        let mut samples: Vec<f64> = per_second.into_values().collect();
        if samples.len() > 2 {
            samples = samples[1..samples.len() - 1].to_vec();
        }
        samples
    }

    /// Per-flow protocol verdicts for the subject's flows (both
    /// directions).
    pub fn protocols(&self) -> Vec<(FlowKey, WireProtocol)> {
        self.table
            .flows()
            .filter(|(k, _)| k.src == self.subject || k.dst == self.subject)
            .map(|(k, s)| (*k, s.protocol()))
            .collect()
    }

    /// The dominant protocol across the subject's media flows (weighted by
    /// bytes).
    pub fn dominant_protocol(&self) -> WireProtocol {
        let mut weights: BTreeMap<u8, (u64, WireProtocol)> = BTreeMap::new();
        for (k, s) in self.table.flows() {
            if k.src != self.subject && k.dst != self.subject {
                continue;
            }
            let proto = s.protocol();
            let tag = match proto {
                WireProtocol::Rtp(_) => 0,
                WireProtocol::Quic => 1,
                WireProtocol::Rtcp => 2,
                WireProtocol::Unknown => 3,
            };
            let e = weights.entry(tag).or_insert((0, proto));
            e.0 += s.bytes.as_bytes();
        }
        weights
            .into_values()
            .max_by_key(|(b, _)| *b)
            .map(|(_, p)| p)
            .unwrap_or(WireProtocol::Unknown)
    }

    /// Discover the subject's peers, geolocating them through `geodb` —
    /// the server-discovery step of §4.1.
    pub fn peers(&self, geodb: &GeoDb) -> Vec<PeerInfo> {
        let mut acc: BTreeMap<NetAddr, u64> = BTreeMap::new();
        for (k, s) in self.table.flows() {
            let peer = if k.src == self.subject {
                k.dst
            } else if k.dst == self.subject {
                k.src
            } else {
                continue;
            };
            *acc.entry(peer).or_insert(0) += s.bytes.as_bytes();
        }
        acc.into_iter()
            .map(|(addr, bytes)| {
                let rec = geodb.lookup(addr);
                PeerInfo {
                    addr,
                    bytes: ByteSize::from_bytes(bytes),
                    org: rec.map(|r| r.org.clone()),
                    city: rec.map(|r| r.city.clone()),
                    region: rec.map(|r| r.region),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::time::SimTime;
    use visionsim_net::packet::PortPair;
    use visionsim_net::tap::TapDirection;
    use visionsim_transport::rtp::{PayloadType, RtpStream};

    fn rtp_records(src: u32, dst: u32, n: usize, bytes_each: u64) -> Vec<TapRecord> {
        let mut s = RtpStream::video(PayloadType::H264Video, src);
        (0..n)
            .map(|i| {
                let wire = s.packetize(i as f64 / 90.0, vec![0; 64], true).to_bytes();
                TapRecord {
                    at: SimTime::from_millis(i as u64 * 100),
                    src: NetAddr(src),
                    dst: NetAddr(dst),
                    ports: PortPair::new(5004, 5004),
                    wire_size: ByteSize::from_bytes(bytes_each),
                    header_snippet: visionsim_net::tap::HeaderSnippet::from_payload(&wire[..16]),
                    direction: TapDirection::Transit,
                    corrupted: false,
                }
            })
            .collect()
    }

    #[test]
    fn uplink_downlink_separate() {
        let subject = NetAddr(1);
        let mut recs = rtp_records(1, 2, 40, 125_000); // 10 Mbps up
        recs.extend(rtp_records(2, 1, 40, 25_000)); // 2 Mbps down
        let a = CaptureAnalysis::new(recs.iter(), subject);
        assert!((a.uplink_rate().as_mbps_f64() - 10.0).abs() < 0.6);
        assert!((a.downlink_rate().as_mbps_f64() - 2.0).abs() < 0.2);
    }

    #[test]
    fn boxplot_of_steady_stream_is_tight() {
        let subject = NetAddr(1);
        let recs = rtp_records(1, 2, 100, 125_000);
        let a = CaptureAnalysis::new(recs.iter(), subject);
        let b = a.uplink_boxplot_mbps();
        assert!((b.median - 10.0).abs() < 0.5, "{b}");
        assert!(b.p95 - b.p5 < 1.0, "{b}");
    }

    #[test]
    fn protocol_identification_per_flow() {
        let subject = NetAddr(1);
        let recs = rtp_records(1, 2, 10, 1_000);
        let a = CaptureAnalysis::new(recs.iter(), subject);
        let protos = a.protocols();
        assert_eq!(protos.len(), 1);
        assert!(protos[0].1.is_rtp());
        assert!(a.dominant_protocol().is_rtp());
    }

    #[test]
    fn peer_discovery_with_geolocation() {
        let subject = NetAddr(0x0d00_0001);
        let mut db = GeoDb::new();
        let server = db.allocate(
            "Apple Inc.",
            "San Jose",
            visionsim_geo::coords::GeoPoint::new(37.33, -121.88),
        );
        let recs = rtp_records(0x0d00_0001, server.0, 10, 1_000);
        let a = CaptureAnalysis::new(recs.iter(), subject);
        let peers = a.peers(&db);
        assert_eq!(peers.len(), 1);
        assert_eq!(peers[0].org.as_deref(), Some("Apple Inc."));
        assert_eq!(peers[0].region, Some(Region::UsWest));
        assert_eq!(peers[0].bytes, ByteSize::from_bytes(10_000));
    }

    #[test]
    fn unrelated_flows_are_ignored() {
        let subject = NetAddr(99);
        let recs = rtp_records(1, 2, 10, 1_000);
        let a = CaptureAnalysis::new(recs.iter(), subject);
        assert_eq!(a.uplink_rate(), DataRate::ZERO);
        assert!(a.protocols().is_empty());
        assert!(a.peers(&GeoDb::new()).is_empty());
    }
}
