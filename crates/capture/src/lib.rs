//! # visionsim-capture
//!
//! AP-side traffic analysis — what the paper does with Wireshark at each
//! user's WiFi access point. Raw [`visionsim_net::TapRecord`]s become:
//!
//! * [`flow`] — a flow table keyed by (addresses, ports), accumulating
//!   packets, bytes, and per-second throughput per flow;
//! * [`analysis`] — the measurement reductions the paper reports: uplink /
//!   downlink throughput for a subject device (Figure 4 / Figure 6c),
//!   passive protocol identification per flow (§4.1's QUIC-vs-RTP
//!   finding), and peer/server discovery for geolocation (Table 1's
//!   methodology);
//! * [`log`] — a text dump of captured packets (one tshark-style line
//!   each), for the examples and for eyeballing traces;
//! * [`pcap`] — binary libpcap export, so simulated traces open in
//!   Wireshark itself;
//! * [`qoe`] — passive QoE estimation from packet timing alone (frame
//!   rate, stalls), the §5-suggested methodology for encrypted traffic;
//! * [`recovery`] — transient-response metrics (time-to-detect, MTTR,
//!   flap count, degraded seconds) for chaos/fault experiments.

pub mod analysis;
pub mod flow;
pub mod log;
pub mod pcap;
pub mod qoe;
pub mod recovery;

pub use analysis::CaptureAnalysis;
pub use flow::{FlowKey, FlowStats, FlowTable};
pub use recovery::{RecoveryReport, RecoveryTracker};
