//! pcap-style text dump of a capture.
//!
//! A human-readable trace (one line per packet) for the examples and for
//! debugging experiment wiring — the moral equivalent of
//! `tshark -r capture.pcap`.

use visionsim_net::tap::{TapDirection, TapRecord};
use visionsim_transport::classify::{classify, WireProtocol};

/// Render one record as a trace line.
pub fn format_record(rec: &TapRecord) -> String {
    let dir = match rec.direction {
        TapDirection::Egress => "→",
        TapDirection::Ingress => "←",
        TapDirection::Transit => "⇄",
    };
    let proto = match classify(&rec.header_snippet) {
        WireProtocol::Rtp(pt) => format!("RTP(pt={})", pt.code()),
        WireProtocol::Quic => "QUIC".to_string(),
        WireProtocol::Rtcp => "RTCP".to_string(),
        WireProtocol::Unknown => "?".to_string(),
    };
    format!(
        "{:>12.3}ms {dir} {}:{} > {}:{} {:>6}B {proto}{}",
        rec.at.as_millis_f64(),
        rec.src,
        rec.ports.src,
        rec.dst,
        rec.ports.dst,
        rec.wire_size.as_bytes(),
        if rec.corrupted { " [corrupt]" } else { "" },
    )
}

/// Render a whole capture.
pub fn format_capture<'a, I: IntoIterator<Item = &'a TapRecord>>(records: I) -> String {
    records
        .into_iter()
        .map(format_record)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::time::SimTime;
    use visionsim_core::units::ByteSize;
    use visionsim_geo::geodb::NetAddr;
    use visionsim_net::packet::PortPair;

    fn rec() -> TapRecord {
        TapRecord {
            at: SimTime::from_millis(1_234),
            src: NetAddr(0x0d000001),
            dst: NetAddr(0x22000002),
            ports: PortPair::new(443, 5004),
            wire_size: ByteSize::from_bytes(1_028),
            header_snippet: visionsim_net::tap::HeaderSnippet::from_payload(&[0x80, 96, 0, 0]),
            direction: TapDirection::Egress,
            corrupted: false,
        }
    }

    #[test]
    fn line_contains_the_essentials() {
        let line = format_record(&rec());
        assert!(line.contains("13.0.0.1:443"));
        assert!(line.contains("1028B"));
        assert!(line.contains("RTP(pt=96)"));
        assert!(line.contains("→"));
    }

    #[test]
    fn corrupt_packets_are_marked() {
        let mut r = rec();
        r.corrupted = true;
        assert!(format_record(&r).contains("[corrupt]"));
    }

    #[test]
    fn capture_is_one_line_per_packet() {
        let records = [rec(), rec(), rec()];
        let dump = format_capture(records.iter());
        assert_eq!(dump.lines().count(), 3);
    }
}
