//! Flow table.
//!
//! A *flow* is the unidirectional 4-tuple (src addr, dst addr, src port,
//! dst port). The table accumulates per-flow packet/byte counts, retains
//! header snippets for protocol classification, and buckets bytes into a
//! per-second [`RateSeries`] — the same reduction Wireshark's conversation
//! statistics perform.

use std::collections::BTreeMap;
use std::sync::OnceLock;
use visionsim_core::metrics::{self, Class};
use visionsim_core::series::RateSeries;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};
use visionsim_geo::geodb::NetAddr;
use visionsim_net::packet::PortPair;
use visionsim_net::tap::{HeaderSnippet, TapRecord};
use visionsim_transport::classify::{classify_flow, WireProtocol};

/// Cached handles into the metrics registry: distinct-flow count plus a
/// tally per classification verdict. All [`Class::Sim`] — classification
/// is a pure function of captured bytes.
struct CaptureMetrics {
    flows: metrics::Counter,
    classified_rtp: metrics::Counter,
    classified_rtcp: metrics::Counter,
    classified_quic: metrics::Counter,
    classified_unknown: metrics::Counter,
}

fn capture_metrics() -> &'static CaptureMetrics {
    static M: OnceLock<CaptureMetrics> = OnceLock::new();
    M.get_or_init(|| CaptureMetrics {
        flows: metrics::counter("capture/flows", Class::Sim),
        classified_rtp: metrics::counter("capture/classified_rtp", Class::Sim),
        classified_rtcp: metrics::counter("capture/classified_rtcp", Class::Sim),
        classified_quic: metrics::counter("capture/classified_quic", Class::Sim),
        classified_unknown: metrics::counter("capture/classified_unknown", Class::Sim),
    })
}

/// Unidirectional flow key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    /// Source address.
    pub src: NetAddr,
    /// Destination address.
    pub dst: NetAddr,
    /// Ports.
    pub ports: PortPair,
}

/// Accumulated statistics for one flow.
#[derive(Debug)]
pub struct FlowStats {
    /// Packets seen.
    pub packets: u64,
    /// Total wire bytes.
    pub bytes: ByteSize,
    /// First packet time.
    pub first_seen: SimTime,
    /// Last packet time.
    pub last_seen: SimTime,
    /// Per-second throughput.
    pub rate: RateSeries,
    /// Retained header snippets (capped — classification needs a sample,
    /// not the universe). Inline `Copy` values: retention is a plain push,
    /// never a per-packet allocation.
    snippets: Vec<HeaderSnippet>,
}

/// How many snippets a flow retains for classification.
const SNIPPET_CAP: usize = 64;

impl FlowStats {
    fn new(at: SimTime) -> Self {
        FlowStats {
            packets: 0,
            bytes: ByteSize::ZERO,
            first_seen: at,
            last_seen: at,
            rate: RateSeries::per_second(),
            snippets: Vec::new(),
        }
    }

    /// Mean throughput over the flow's lifetime.
    pub fn mean_rate(&self) -> DataRate {
        self.rate.mean_rate()
    }

    /// Flow duration.
    pub fn duration(&self) -> SimDuration {
        self.last_seen.since(self.first_seen)
    }

    /// Majority-vote protocol verdict over retained snippets.
    pub fn protocol(&self) -> WireProtocol {
        let verdict = classify_flow(self.snippets.iter().map(|s| s.as_slice())).0;
        let m = capture_metrics();
        match verdict {
            WireProtocol::Rtp(_) => m.classified_rtp.inc(),
            WireProtocol::Rtcp => m.classified_rtcp.inc(),
            WireProtocol::Quic => m.classified_quic.inc(),
            WireProtocol::Unknown => m.classified_unknown.inc(),
        }
        verdict
    }
}

/// The flow table.
#[derive(Debug, Default)]
pub struct FlowTable {
    flows: BTreeMap<FlowKey, FlowStats>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Ingest one tap record.
    pub fn ingest(&mut self, rec: &TapRecord) {
        let key = FlowKey {
            src: rec.src,
            dst: rec.dst,
            ports: rec.ports,
        };
        let stats = self.flows.entry(key).or_insert_with(|| {
            capture_metrics().flows.inc();
            FlowStats::new(rec.at)
        });
        stats.packets += 1;
        stats.bytes += rec.wire_size;
        stats.last_seen = rec.at;
        stats.rate.record(rec.at, rec.wire_size);
        if stats.snippets.len() < SNIPPET_CAP {
            stats.snippets.push(rec.header_snippet);
        }
    }

    /// Ingest a batch.
    pub fn ingest_all<'a, I: IntoIterator<Item = &'a TapRecord>>(&mut self, records: I) {
        for r in records {
            self.ingest(r);
        }
    }

    /// All flows.
    pub fn flows(&self) -> impl Iterator<Item = (&FlowKey, &FlowStats)> {
        self.flows.iter()
    }

    /// Number of distinct flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no packets have been ingested.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Flows with `addr` as the source (its uplink).
    pub fn uplink_of(&self, addr: NetAddr) -> Vec<(&FlowKey, &FlowStats)> {
        self.flows.iter().filter(|(k, _)| k.src == addr).collect()
    }

    /// Flows with `addr` as the destination (its downlink).
    pub fn downlink_of(&self, addr: NetAddr) -> Vec<(&FlowKey, &FlowStats)> {
        self.flows.iter().filter(|(k, _)| k.dst == addr).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_net::tap::TapDirection;

    fn record(src: u32, dst: u32, at_ms: u64, size: u64, snippet: &[u8]) -> TapRecord {
        TapRecord {
            at: SimTime::from_millis(at_ms),
            src: NetAddr(src),
            dst: NetAddr(dst),
            ports: PortPair::new(5004, 5004),
            wire_size: ByteSize::from_bytes(size),
            header_snippet: HeaderSnippet::from_payload(snippet),
            direction: TapDirection::Transit,
            corrupted: false,
        }
    }

    #[test]
    fn flows_aggregate_by_tuple() {
        let mut t = FlowTable::new();
        t.ingest(&record(1, 2, 0, 100, &[]));
        t.ingest(&record(1, 2, 10, 200, &[]));
        t.ingest(&record(2, 1, 20, 50, &[]));
        assert_eq!(t.len(), 2);
        let up = t.uplink_of(NetAddr(1));
        assert_eq!(up.len(), 1);
        assert_eq!(up[0].1.packets, 2);
        assert_eq!(up[0].1.bytes, ByteSize::from_bytes(300));
    }

    #[test]
    fn throughput_reduction_matches_hand_math() {
        let mut t = FlowTable::new();
        // 125 KB per 100 ms for 4 s = 10 Mbps.
        for i in 0..40 {
            t.ingest(&record(1, 2, i * 100, 125_000, &[]));
        }
        let (_, stats) = t.flows().next().unwrap();
        let rate = stats.mean_rate().as_mbps_f64();
        assert!((rate - 10.0).abs() < 0.5, "rate {rate}");
        assert_eq!(stats.duration(), SimDuration::from_millis(3_900));
    }

    #[test]
    fn protocol_verdict_from_snippets() {
        use visionsim_transport::rtp::{PayloadType, RtpStream};
        let mut s = RtpStream::video(PayloadType::H264Video, 9);
        let mut t = FlowTable::new();
        for i in 0..10 {
            let wire = s.packetize(i as f64 / 90.0, vec![0; 100], true).to_bytes();
            t.ingest(&record(1, 2, i, 128, &wire[..16]));
        }
        let (_, stats) = t.flows().next().unwrap();
        assert_eq!(
            stats.protocol(),
            WireProtocol::Rtp(PayloadType::H264Video)
        );
    }

    #[test]
    fn snippet_retention_is_capped() {
        let mut t = FlowTable::new();
        for i in 0..1_000 {
            t.ingest(&record(1, 2, i, 100, &[0x80, 96]));
        }
        let (_, stats) = t.flows().next().unwrap();
        assert!(stats.snippets.len() <= SNIPPET_CAP);
        assert_eq!(stats.packets, 1_000);
    }

    #[test]
    fn empty_table_is_empty() {
        let t = FlowTable::new();
        assert!(t.is_empty());
        assert_eq!(t.uplink_of(NetAddr(1)).len(), 0);
    }
}
