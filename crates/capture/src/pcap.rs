//! Binary pcap export.
//!
//! Captured tap records serialize to a standard libpcap file (linktype
//! RAW-IPv4), so traces from the simulator open in Wireshark/tshark — the
//! same tooling the paper's methodology is built on. IPv4 + UDP headers
//! are synthesized from the record metadata; the retained header snippet
//! becomes the visible payload prefix and `orig_len` preserves the true
//! wire size, exactly like a snaplen-truncated capture.

use visionsim_net::tap::TapRecord;

/// libpcap magic (microsecond timestamps, little-endian).
pub const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_RAW: packets begin with an IPv4/IPv6 header.
pub const LINKTYPE_RAW: u32 = 101;

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

// Width-checked reads for the parser. `None` on a short slice, so every
// field access below is provably panic-free — no length-guarded
// `try_into().expect(...)` an edit three functions away can invalidate.

fn le_u32_at(bytes: &[u8], pos: usize) -> Option<u32> {
    let b: &[u8; 4] = bytes.get(pos..pos + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(*b))
}

fn be_u32_at(bytes: &[u8], pos: usize) -> Option<u32> {
    let b: &[u8; 4] = bytes.get(pos..pos + 4)?.try_into().ok()?;
    Some(u32::from_be_bytes(*b))
}

fn be_u16_at(bytes: &[u8], pos: usize) -> Option<u16> {
    let b: &[u8; 2] = bytes.get(pos..pos + 2)?.try_into().ok()?;
    Some(u16::from_be_bytes(*b))
}

/// Serialize records into a pcap file image.
pub fn to_pcap<'a, I: IntoIterator<Item = &'a TapRecord>>(records: I) -> Vec<u8> {
    let mut out = Vec::new();
    // Global header.
    push_u32(&mut out, PCAP_MAGIC);
    push_u16(&mut out, 2); // major
    push_u16(&mut out, 4); // minor
    push_u32(&mut out, 0); // thiszone
    push_u32(&mut out, 0); // sigfigs
    push_u32(&mut out, 65_535); // snaplen
    push_u32(&mut out, LINKTYPE_RAW);

    for rec in records {
        let payload = rec.header_snippet.as_slice();
        let ip_len = 20 + 8 + payload.len();
        let orig_len = rec.wire_size.as_bytes() as u32;
        let ts_us = rec.at.as_nanos() / 1_000;
        // Record header.
        push_u32(&mut out, (ts_us / 1_000_000) as u32);
        push_u32(&mut out, (ts_us % 1_000_000) as u32);
        push_u32(&mut out, ip_len as u32); // incl_len (snaplen-truncated)
        push_u32(&mut out, orig_len.max(ip_len as u32));
        // IPv4 header (20 bytes, big-endian fields).
        let total_len = orig_len.max(28) as u16;
        out.push(0x45); // v4, IHL 5
        out.push(0); // DSCP
        out.extend_from_slice(&total_len.to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]); // id + flags/frag
        out.push(64); // TTL
        out.push(17); // UDP
        out.extend_from_slice(&[0, 0]); // checksum (0 = unset, as tcpdump -w does for offloaded)
        out.extend_from_slice(&rec.src.0.to_be_bytes());
        out.extend_from_slice(&rec.dst.0.to_be_bytes());
        // UDP header.
        out.extend_from_slice(&rec.ports.src.to_be_bytes());
        out.extend_from_slice(&rec.ports.dst.to_be_bytes());
        out.extend_from_slice(&(total_len - 20).to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum
        out.extend_from_slice(payload);
    }
    out
}

/// One packet parsed back from a pcap image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapPacket {
    /// Timestamp, microseconds.
    pub ts_us: u64,
    /// Source IPv4 (raw u32).
    pub src: u32,
    /// Destination IPv4 (raw u32).
    pub dst: u32,
    /// Source UDP port.
    pub src_port: u16,
    /// Destination UDP port.
    pub dst_port: u16,
    /// Original wire length.
    pub orig_len: u32,
    /// Captured payload (post-UDP bytes).
    pub payload: Vec<u8>,
}

/// Why a pcap image failed to parse. Every variant is a property of the
/// *input bytes* — hostile or truncated files report an error; they never
/// panic the parser.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PcapError {
    /// Fewer than the 24 global-header bytes.
    TooShort,
    /// Magic number is not little-endian microsecond libpcap.
    BadMagic(u32),
    /// Linktype is not RAW-IPv4 (the only one this reader handles).
    BadLinktype(u32),
    /// A record header promised more bytes than the file contains.
    TruncatedRecord {
        /// Byte offset of the offending record header.
        offset: usize,
        /// Bytes the record claimed to include.
        claimed: usize,
        /// Bytes actually remaining in the file.
        available: usize,
    },
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::TooShort => write!(f, "pcap shorter than its 24-byte global header"),
            PcapError::BadMagic(m) => write!(f, "unrecognized pcap magic {m:#010x}"),
            PcapError::BadLinktype(l) => write!(f, "unsupported linktype {l} (want RAW=101)"),
            PcapError::TruncatedRecord {
                offset,
                claimed,
                available,
            } => write!(
                f,
                "record at offset {offset} claims {claimed} bytes but only {available} remain"
            ),
        }
    }
}

impl std::error::Error for PcapError {}

/// Parse a pcap image produced by [`to_pcap`] (or any raw-IPv4/UDP pcap).
///
/// Malformed input — wrong magic, foreign linktype, records whose length
/// field runs past the end of the buffer — returns a [`PcapError`];
/// non-IPv4/UDP frames inside a well-formed file are skipped silently
/// (as a display filter would).
pub fn parse_pcap(bytes: &[u8]) -> Result<Vec<PcapPacket>, PcapError> {
    if bytes.len() < 24 {
        return Err(PcapError::TooShort);
    }
    let magic = le_u32_at(bytes, 0).ok_or(PcapError::TooShort)?;
    if magic != PCAP_MAGIC {
        return Err(PcapError::BadMagic(magic));
    }
    let linktype = le_u32_at(bytes, 20).ok_or(PcapError::TooShort)?;
    if linktype != LINKTYPE_RAW {
        return Err(PcapError::BadLinktype(linktype));
    }
    let mut pos = 24;
    let mut packets = Vec::new();
    while pos < bytes.len() {
        let truncated_header = PcapError::TruncatedRecord {
            offset: pos,
            claimed: 16,
            available: bytes.len() - pos,
        };
        let sec = le_u32_at(bytes, pos).ok_or(truncated_header)? as u64;
        let usec = le_u32_at(bytes, pos + 4).ok_or(truncated_header)? as u64;
        let incl = le_u32_at(bytes, pos + 8).ok_or(truncated_header)? as usize;
        let orig_len = le_u32_at(bytes, pos + 12).ok_or(truncated_header)?;
        let header_at = pos;
        pos += 16;
        let Some(frame) = bytes.get(pos..pos.saturating_add(incl)) else {
            return Err(PcapError::TruncatedRecord {
                offset: header_at,
                claimed: incl,
                available: bytes.len() - pos,
            });
        };
        pos += incl;
        if frame.len() < 28 || frame[0] >> 4 != 4 || frame[9] != 17 {
            continue; // not IPv4/UDP; skip
        }
        // The frame is ≥ 28 bytes here, so these reads cannot fail; the
        // `continue` keeps the "skip foreign frames" display-filter
        // semantics if that guard ever drifts.
        let (Some(src), Some(dst), Some(src_port), Some(dst_port)) = (
            be_u32_at(frame, 12),
            be_u32_at(frame, 16),
            be_u16_at(frame, 20),
            be_u16_at(frame, 22),
        ) else {
            continue;
        };
        packets.push(PcapPacket {
            ts_us: sec * 1_000_000 + usec,
            src,
            dst,
            src_port,
            dst_port,
            orig_len,
            payload: frame[28..].to_vec(),
        });
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::time::SimTime;
    use visionsim_core::units::ByteSize;
    use visionsim_geo::geodb::NetAddr;
    use visionsim_net::packet::PortPair;
    use visionsim_net::tap::{HeaderSnippet, TapDirection};

    fn rec(at_ms: u64, src: u32, dst: u32, size: u64) -> TapRecord {
        TapRecord {
            at: SimTime::from_millis(at_ms),
            src: NetAddr(src),
            dst: NetAddr(dst),
            ports: PortPair::new(5_000, 443),
            wire_size: ByteSize::from_bytes(size),
            header_snippet: HeaderSnippet::from_payload(&[0x40, 1, 2, 3, 4, 5, 6, 7]),
            direction: TapDirection::Transit,
            corrupted: false,
        }
    }

    #[test]
    fn round_trips_through_pcap() {
        let records = [rec(100, 0x0d000001, 0x22000002, 900),
            rec(111, 0x22000002, 0x0d000001, 120)];
        let image = to_pcap(records.iter());
        let parsed = parse_pcap(&image).expect("own output parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].ts_us, 100_000);
        assert_eq!(parsed[0].src, 0x0d000001);
        assert_eq!(parsed[0].dst, 0x22000002);
        assert_eq!(parsed[0].src_port, 5_000);
        assert_eq!(parsed[0].dst_port, 443);
        assert_eq!(parsed[0].orig_len, 900);
        assert_eq!(parsed[0].payload, records[0].header_snippet.as_slice());
    }

    #[test]
    fn global_header_is_wireshark_compatible() {
        let image = to_pcap(std::iter::empty());
        assert_eq!(image.len(), 24);
        assert_eq!(u32::from_le_bytes(image[0..4].try_into().unwrap()), PCAP_MAGIC);
        assert_eq!(u16::from_le_bytes(image[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(image[6..8].try_into().unwrap()), 4);
        assert_eq!(
            u32::from_le_bytes(image[20..24].try_into().unwrap()),
            LINKTYPE_RAW
        );
    }

    #[test]
    fn parse_rejects_wrong_magic_or_linktype() {
        let mut image = to_pcap(std::iter::empty());
        image[0] ^= 0xFF;
        assert!(matches!(parse_pcap(&image), Err(PcapError::BadMagic(_))));
        let mut image = to_pcap(std::iter::empty());
        image[20] = 1; // Ethernet
        assert_eq!(parse_pcap(&image), Err(PcapError::BadLinktype(1)));
        assert_eq!(parse_pcap(&[]), Err(PcapError::TooShort));
    }

    #[test]
    fn truncated_record_is_an_error_not_a_panic() {
        let image = to_pcap([rec(1, 1, 2, 100)].iter());
        let cut = &image[..image.len() - 3];
        assert!(matches!(
            parse_pcap(cut),
            Err(PcapError::TruncatedRecord { .. })
        ));
        // Cutting inside the record *header* is also reported, not a slice
        // panic.
        let cut = &image[..24 + 7];
        assert!(matches!(
            parse_pcap(cut),
            Err(PcapError::TruncatedRecord { .. })
        ));
    }

    #[test]
    fn hostile_length_field_is_an_error_not_a_panic() {
        let mut image = to_pcap([rec(1, 1, 2, 100)].iter());
        // Claim 4 GiB of included bytes.
        image[24 + 8..24 + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        match parse_pcap(&image) {
            Err(PcapError::TruncatedRecord { claimed, .. }) => {
                assert_eq!(claimed, u32::MAX as usize);
            }
            other => panic!("expected TruncatedRecord, got {other:?}"),
        }
    }

    #[test]
    fn timestamps_are_microsecond_accurate() {
        let r = TapRecord {
            at: SimTime::from_nanos(1_234_567_890),
            ..rec(0, 1, 2, 64)
        };
        let parsed = parse_pcap(&to_pcap([r].iter())).unwrap();
        assert_eq!(parsed[0].ts_us, 1_234_567);
    }
}
