//! Passive QoE estimation from packet timing.
//!
//! The paper's §5 points at IP-header and packet-pattern analysis (Sharma
//! et al.; Michel et al.) as the way to study encrypted telepresence
//! traffic. This module implements the core of that methodology for the
//! simulator's captures: from nothing but packet timestamps and sizes of
//! one media flow, estimate the media frame rate, detect stalls, and
//! derive a QoE grade — no payload inspection.
//!
//! Mechanism: media sources emit one frame per display tick; each frame
//! becomes one or more back-to-back packets. Inter-packet gaps therefore
//! cluster at ~0 (intra-frame) and at the frame interval (inter-frame).
//! A gap threshold splits the two populations, giving frame boundaries.

use visionsim_core::stats::Percentiles;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_net::tap::TapRecord;

/// Gap above which two packets belong to different media frames.
const FRAME_GAP: SimDuration = SimDuration::from_millis(4);

/// Passive estimate for one media flow.
#[derive(Clone, Debug)]
pub struct QoeEstimate {
    /// Inferred media frames.
    pub frames: usize,
    /// Estimated frame rate over the observation span.
    pub fps: f64,
    /// Stalls: inter-frame gaps exceeding 3 nominal intervals.
    pub stalls: usize,
    /// Longest inter-frame gap, ms.
    pub worst_gap_ms: f64,
    /// Inferred frame-interval percentiles, ms.
    pub interval_ms: Percentiles,
}

impl QoeEstimate {
    /// A coarse MOS-like grade in `[1, 5]` from fps and stalls: full marks
    /// at the nominal rate with no stalls, degrading with both.
    pub fn grade(&self, nominal_fps: f64) -> f64 {
        if self.frames == 0 {
            return 1.0;
        }
        let rate_factor = (self.fps / nominal_fps).clamp(0.0, 1.0);
        let stall_penalty = (self.stalls as f64 * 0.25).min(2.0);
        (1.0 + 4.0 * rate_factor - stall_penalty).clamp(1.0, 5.0)
    }
}

/// Estimate QoE for the packets of one flow (filtered by the caller),
/// given the nominal media frame rate.
pub fn estimate<'a, I: IntoIterator<Item = &'a TapRecord>>(
    records: I,
    nominal_fps: f64,
) -> QoeEstimate {
    assert!(nominal_fps > 0.0, "nominal fps must be positive");
    let mut times: Vec<SimTime> = records.into_iter().map(|r| r.at).collect();
    times.sort_unstable();
    if times.is_empty() {
        return QoeEstimate {
            frames: 0,
            fps: 0.0,
            stalls: 0,
            worst_gap_ms: 0.0,
            interval_ms: Percentiles::new(),
        };
    }
    // Frame boundaries: gaps larger than FRAME_GAP.
    let mut frame_starts = vec![times[0]];
    for w in times.windows(2) {
        if w[1].since(w[0]) > FRAME_GAP {
            frame_starts.push(w[1]);
        }
    }
    let nominal = SimDuration::from_secs_f64(1.0 / nominal_fps);
    let mut interval_ms = Percentiles::new();
    let mut stalls = 0usize;
    let mut worst_gap_ms = 0.0f64;
    for w in frame_starts.windows(2) {
        let gap = w[1].since(w[0]);
        interval_ms.push(gap.as_millis_f64());
        worst_gap_ms = worst_gap_ms.max(gap.as_millis_f64());
        if gap > nominal * 3 {
            stalls += 1;
        }
    }
    // `frame_starts` is seeded with `times[0]` above, so first/last always
    // exist — but prove it structurally instead of asserting it.
    let span = match (frame_starts.first(), frame_starts.last()) {
        (Some(&first), Some(&last)) => last.since(first),
        _ => SimDuration::ZERO,
    };
    let fps = if span.is_zero() {
        0.0
    } else {
        (frame_starts.len() - 1) as f64 / span.as_secs_f64()
    };
    QoeEstimate {
        frames: frame_starts.len(),
        fps,
        stalls,
        worst_gap_ms,
        interval_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::units::ByteSize;
    use visionsim_geo::geodb::NetAddr;
    use visionsim_net::packet::PortPair;
    use visionsim_net::tap::TapDirection;

    fn rec_at(us: u64) -> TapRecord {
        TapRecord {
            at: SimTime::from_micros(us),
            src: NetAddr(1),
            dst: NetAddr(2),
            ports: PortPair::new(5_000, 443),
            wire_size: ByteSize::from_bytes(900),
            header_snippet: Default::default(),
            direction: TapDirection::Transit,
            corrupted: false,
        }
    }

    #[test]
    fn steady_90fps_flow_is_recognized() {
        // One packet per frame, 11.111 ms apart, for 3 s.
        let recs: Vec<TapRecord> = (0..270).map(|i| rec_at(i * 11_111)).collect();
        let q = estimate(recs.iter(), 90.0);
        assert_eq!(q.frames, 270);
        assert!((q.fps - 90.0).abs() < 1.0, "fps {}", q.fps);
        assert_eq!(q.stalls, 0);
        assert!(q.grade(90.0) > 4.8);
    }

    #[test]
    fn multi_packet_frames_group_correctly() {
        // Three packets back-to-back (0.2 ms apart) per 33.3 ms frame.
        let mut recs = Vec::new();
        for f in 0..90u64 {
            for p in 0..3u64 {
                recs.push(rec_at(f * 33_333 + p * 200));
            }
        }
        let q = estimate(recs.iter(), 30.0);
        assert_eq!(q.frames, 90);
        assert!((q.fps - 30.0).abs() < 0.5, "fps {}", q.fps);
    }

    #[test]
    fn stalls_are_detected() {
        let mut recs: Vec<TapRecord> = (0..90).map(|i| rec_at(i * 11_111)).collect();
        // A 200 ms freeze, then resume.
        recs.extend((0..90).map(|i| rec_at(1_000_000 + 200_000 + i * 11_111)));
        let q = estimate(recs.iter(), 90.0);
        assert!(q.stalls >= 1, "stall missed");
        assert!(q.worst_gap_ms > 150.0);
        assert!(q.grade(90.0) < 4.8);
    }

    #[test]
    fn empty_capture_grades_worst() {
        let q = estimate(std::iter::empty(), 90.0);
        assert_eq!(q.frames, 0);
        assert_eq!(q.grade(90.0), 1.0);
    }

    #[test]
    fn reduced_rate_lowers_grade() {
        // 30 FPS delivered where 90 was nominal.
        let recs: Vec<TapRecord> = (0..90).map(|i| rec_at(i * 33_333)).collect();
        let q = estimate(recs.iter(), 90.0);
        let g = q.grade(90.0);
        assert!(g < 3.0, "grade {g}");
        assert!(g >= 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_nominal() {
        estimate(std::iter::empty(), 0.0);
    }
}
