//! RTCP receiver reports (RFC 3550 §6.4, simplified).
//!
//! Every production VCA closes its adaptation loop with RTCP-class
//! feedback: the receiver periodically reports loss and reception volume
//! back to the sender. The session engine sends these *in-band* (they show
//! up at the AP taps on the RTP port + 1, just like real RTCP), and the
//! passive classifier can identify them — packet type 201 in the second
//! byte, version bits `10` like RTP.

/// RTCP packet type for receiver reports.
pub const PT_RECEIVER_REPORT: u8 = 201;

/// A (simplified) receiver report block for one source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReceiverReportPacket {
    /// SSRC of the reporting receiver.
    pub reporter_ssrc: u32,
    /// SSRC of the source being reported on.
    pub source_ssrc: u32,
    /// Fraction of packets lost since the last report, as a Q8 fixed-point
    /// value (0 = none, 255 ≈ 100%).
    pub fraction_lost: u8,
    /// Cumulative packets lost (24-bit on the wire).
    pub cumulative_lost: u32,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Bytes received since the last report (a receiver-estimation field
    /// real systems carry in extended reports; used for goodput).
    pub received_bytes: u32,
}

/// Serialized length.
pub const RR_LEN: usize = 24;

impl ReceiverReportPacket {
    /// Loss fraction in `[0, 1]`.
    pub fn loss(&self) -> f64 {
        self.fraction_lost as f64 / 255.0
    }

    /// Build the Q8 loss field from a fraction.
    pub fn q8_loss(fraction: f64) -> u8 {
        (fraction.clamp(0.0, 1.0) * 255.0).round() as u8
    }

    /// Serialize to wire form.
    pub fn to_bytes(&self) -> [u8; RR_LEN] {
        let mut b = [0u8; RR_LEN];
        b[0] = 0x81; // V=2, P=0, RC=1
        b[1] = PT_RECEIVER_REPORT;
        // length in 32-bit words minus one.
        b[2..4].copy_from_slice(&((RR_LEN as u16 / 4) - 1).to_be_bytes());
        b[4..8].copy_from_slice(&self.reporter_ssrc.to_be_bytes());
        b[8..12].copy_from_slice(&self.source_ssrc.to_be_bytes());
        b[12] = self.fraction_lost;
        b[13..16].copy_from_slice(&self.cumulative_lost.to_be_bytes()[1..4]);
        b[16..20].copy_from_slice(&self.highest_seq.to_be_bytes());
        b[20..24].copy_from_slice(&self.received_bytes.to_be_bytes());
        b
    }

    /// Parse from wire bytes.
    pub fn parse(bytes: &[u8]) -> Option<ReceiverReportPacket> {
        if bytes.len() < RR_LEN || bytes[0] >> 6 != 2 || bytes[1] != PT_RECEIVER_REPORT {
            return None;
        }
        Some(ReceiverReportPacket {
            reporter_ssrc: u32::from_be_bytes(bytes[4..8].try_into().ok()?),
            source_ssrc: u32::from_be_bytes(bytes[8..12].try_into().ok()?),
            fraction_lost: bytes[12],
            cumulative_lost: u32::from_be_bytes([0, bytes[13], bytes[14], bytes[15]]),
            highest_seq: u32::from_be_bytes(bytes[16..20].try_into().ok()?),
            received_bytes: u32::from_be_bytes(bytes[20..24].try_into().ok()?),
        })
    }

    /// True when a packet's first bytes look like RTCP (for the passive
    /// classifier: version 2 + packet type in the RTCP range 200..=207,
    /// which covers SR/RR/SDES/BYE/APP, the RTPFB/PSFB feedback types,
    /// and XR extended reports).
    pub fn looks_like_rtcp(snippet: &[u8]) -> bool {
        snippet.len() >= 2 && snippet[0] >> 6 == 2 && (200..=207).contains(&snippet[1])
    }
}

/// RTCP packet type for payload-specific feedback (RFC 4585).
pub const PT_PSFB: u8 = 206;

/// PSFB feedback message type for Picture Loss Indication.
pub const FMT_PLI: u8 = 1;

/// Serialized PLI length: the fixed feedback header only (PLI carries no
/// FCI payload).
pub const PLI_LEN: usize = 12;

/// A Picture Loss Indication (RFC 4585 §6.3.1): the receiver lost enough
/// of the picture that it cannot decode forward and asks the sender for a
/// fresh keyframe. This is the recovery path every production VCA uses
/// after a loss burst — decode state is resynchronised by one I-frame
/// instead of waiting out the GOP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PliPacket {
    /// SSRC of the receiver requesting the keyframe.
    pub reporter_ssrc: u32,
    /// SSRC of the media source being asked.
    pub source_ssrc: u32,
}

impl PliPacket {
    /// Serialize to wire form.
    pub fn to_bytes(&self) -> [u8; PLI_LEN] {
        let mut b = [0u8; PLI_LEN];
        b[0] = 0x80 | FMT_PLI; // V=2, P=0, FMT=1 (PLI)
        b[1] = PT_PSFB;
        b[2..4].copy_from_slice(&((PLI_LEN as u16 / 4) - 1).to_be_bytes());
        b[4..8].copy_from_slice(&self.reporter_ssrc.to_be_bytes());
        b[8..12].copy_from_slice(&self.source_ssrc.to_be_bytes());
        b
    }

    /// Parse from wire bytes.
    pub fn parse(bytes: &[u8]) -> Option<PliPacket> {
        if bytes.len() < PLI_LEN
            || bytes[0] >> 6 != 2
            || bytes[0] & 0x1F != FMT_PLI
            || bytes[1] != PT_PSFB
        {
            return None;
        }
        Some(PliPacket {
            reporter_ssrc: u32::from_be_bytes(bytes[4..8].try_into().ok()?),
            source_ssrc: u32::from_be_bytes(bytes[8..12].try_into().ok()?),
        })
    }
}

/// RTCP packet type for extended reports (RFC 3611).
pub const PT_XR: u8 = 207;

/// Serialized XR length.
pub const XR_LEN: usize = 20;

/// A (simplified) extended report carrying the congestion-control signals
/// a plain RR lacks: interarrival jitter and the receiver's arrival-rate
/// estimate. Sent alongside the RR on the same deterministic cadence; a
/// GCC/BBR-flavored controller uses the pair (RR loss + XR delay/rate) to
/// pick its next target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XrPacket {
    /// SSRC of the reporting receiver.
    pub reporter_ssrc: u32,
    /// SSRC of the source being reported on.
    pub source_ssrc: u32,
    /// Smoothed interarrival jitter, microseconds.
    pub jitter_us: u32,
    /// Arrival-rate estimate over the report interval, kbps.
    pub arrival_kbps: u32,
}

impl XrPacket {
    /// Serialize to wire form.
    pub fn to_bytes(&self) -> [u8; XR_LEN] {
        let mut b = [0u8; XR_LEN];
        b[0] = 0x80; // V=2, P=0, reserved=0
        b[1] = PT_XR;
        b[2..4].copy_from_slice(&((XR_LEN as u16 / 4) - 1).to_be_bytes());
        b[4..8].copy_from_slice(&self.reporter_ssrc.to_be_bytes());
        b[8..12].copy_from_slice(&self.source_ssrc.to_be_bytes());
        b[12..16].copy_from_slice(&self.jitter_us.to_be_bytes());
        b[16..20].copy_from_slice(&self.arrival_kbps.to_be_bytes());
        b
    }

    /// Parse from wire bytes.
    pub fn parse(bytes: &[u8]) -> Option<XrPacket> {
        if bytes.len() < XR_LEN || bytes[0] >> 6 != 2 || bytes[1] != PT_XR {
            return None;
        }
        Some(XrPacket {
            reporter_ssrc: u32::from_be_bytes(bytes[4..8].try_into().ok()?),
            source_ssrc: u32::from_be_bytes(bytes[8..12].try_into().ok()?),
            jitter_us: u32::from_be_bytes(bytes[12..16].try_into().ok()?),
            arrival_kbps: u32::from_be_bytes(bytes[16..20].try_into().ok()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rr() -> ReceiverReportPacket {
        ReceiverReportPacket {
            reporter_ssrc: 0xAABB_CCDD,
            source_ssrc: 0x1122_3344,
            fraction_lost: 64,
            cumulative_lost: 1_234,
            highest_seq: 99_999,
            received_bytes: 500_000,
        }
    }

    #[test]
    fn round_trips() {
        let r = rr();
        assert_eq!(ReceiverReportPacket::parse(&r.to_bytes()), Some(r));
    }

    #[test]
    fn loss_fraction_conversion() {
        assert_eq!(ReceiverReportPacket::q8_loss(0.0), 0);
        assert_eq!(ReceiverReportPacket::q8_loss(1.0), 255);
        assert_eq!(ReceiverReportPacket::q8_loss(2.5), 255);
        let r = ReceiverReportPacket {
            fraction_lost: ReceiverReportPacket::q8_loss(0.25),
            ..rr()
        };
        assert!((r.loss() - 0.25).abs() < 0.01);
    }

    #[test]
    fn cumulative_lost_is_24_bit() {
        let mut r = rr();
        r.cumulative_lost = 0x00FF_FFFF;
        assert_eq!(
            ReceiverReportPacket::parse(&r.to_bytes()).unwrap().cumulative_lost,
            0x00FF_FFFF
        );
    }

    #[test]
    fn parse_rejects_rtp_and_garbage() {
        assert!(ReceiverReportPacket::parse(&[0x80, 96, 0, 0]).is_none()); // RTP
        assert!(ReceiverReportPacket::parse(&[0u8; RR_LEN]).is_none());
        assert!(ReceiverReportPacket::parse(&rr().to_bytes()[..10]).is_none());
    }

    #[test]
    fn rtcp_detection() {
        assert!(ReceiverReportPacket::looks_like_rtcp(&rr().to_bytes()));
        assert!(!ReceiverReportPacket::looks_like_rtcp(&[0x80, 96])); // RTP PT 96
        assert!(!ReceiverReportPacket::looks_like_rtcp(&[0x41, 201])); // wrong version
        assert!(ReceiverReportPacket::looks_like_rtcp(&[0x81, 206])); // PSFB
        assert!(ReceiverReportPacket::looks_like_rtcp(&[0x80, 207])); // XR
        assert!(!ReceiverReportPacket::looks_like_rtcp(&[0x80, 208])); // out of range
    }

    #[test]
    fn pli_round_trips() {
        let pli = PliPacket {
            reporter_ssrc: 0xDEAD_BEEF,
            source_ssrc: 0x0102_0304,
        };
        assert_eq!(PliPacket::parse(&pli.to_bytes()), Some(pli));
        assert!(ReceiverReportPacket::looks_like_rtcp(&pli.to_bytes()));
    }

    #[test]
    fn pli_rejects_receiver_reports_and_garbage() {
        assert!(PliPacket::parse(&rr().to_bytes()).is_none());
        assert!(PliPacket::parse(&[0u8; PLI_LEN]).is_none());
        let pli = PliPacket {
            reporter_ssrc: 1,
            source_ssrc: 2,
        };
        assert!(PliPacket::parse(&pli.to_bytes()[..8]).is_none());
        // RR must not parse as PLI and vice versa even though both pass
        // the RTCP sniff test.
        assert!(ReceiverReportPacket::parse(&pli.to_bytes()).is_none());
    }
}
