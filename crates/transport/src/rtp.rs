//! RTP framing (RFC 3550) and the payload-type registry (RFC 3551).
//!
//! All four VCAs carry 2D persona media over RTP; FaceTime additionally
//! reverts to RTP whenever at least one participant is not on Vision Pro
//! (§4.1), keeping the PT field consistent with its traditional 2D video
//! calls — a fact the paper verifies and we expose through
//! [`RtpHeader::payload_type`].

/// Payload types relevant to the studied applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PayloadType {
    /// Opus audio (dynamic PT, conventionally 111).
    OpusAudio,
    /// H.264 video (dynamic PT, FaceTime's traditional video PT 96).
    H264Video,
    /// H.265/HEVC video (dynamic PT 98).
    H265Video,
    /// VP8 video (dynamic PT 100; used by some Webex/Teams modes).
    Vp8Video,
    /// Comfort noise (static PT 13).
    ComfortNoise,
    /// Another dynamic PT we do not further interpret.
    Dynamic(u8),
}

impl PayloadType {
    /// The 7-bit PT value on the wire.
    pub fn code(&self) -> u8 {
        match self {
            PayloadType::OpusAudio => 111,
            PayloadType::H264Video => 96,
            PayloadType::H265Video => 98,
            PayloadType::Vp8Video => 100,
            PayloadType::ComfortNoise => 13,
            PayloadType::Dynamic(c) => *c & 0x7F,
        }
    }

    /// Interpret a wire PT value.
    pub fn from_code(code: u8) -> PayloadType {
        match code & 0x7F {
            111 => PayloadType::OpusAudio,
            96 => PayloadType::H264Video,
            98 => PayloadType::H265Video,
            100 => PayloadType::Vp8Video,
            13 => PayloadType::ComfortNoise,
            other => PayloadType::Dynamic(other),
        }
    }

    /// True for video-class payloads.
    pub fn is_video(&self) -> bool {
        matches!(
            self,
            PayloadType::H264Video | PayloadType::H265Video | PayloadType::Vp8Video
        )
    }
}

/// The fixed 12-byte RTP header (no CSRC, no extensions — the studied flows
/// do not use them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtpHeader {
    /// Payload type.
    pub payload_type: PayloadType,
    /// Marker bit (end of frame for video).
    pub marker: bool,
    /// Sequence number.
    pub seq: u16,
    /// Media timestamp.
    pub timestamp: u32,
    /// Synchronization source.
    pub ssrc: u32,
}

/// RTP protocol version (always 2).
pub const RTP_VERSION: u8 = 2;
/// Serialized header length.
pub const RTP_HEADER_LEN: usize = 12;

impl RtpHeader {
    /// Serialize to the 12-byte wire form.
    pub fn to_bytes(&self) -> [u8; RTP_HEADER_LEN] {
        let mut b = [0u8; RTP_HEADER_LEN];
        b[0] = RTP_VERSION << 6; // V=2, P=0, X=0, CC=0
        b[1] = ((self.marker as u8) << 7) | self.payload_type.code();
        b[2..4].copy_from_slice(&self.seq.to_be_bytes());
        b[4..8].copy_from_slice(&self.timestamp.to_be_bytes());
        b[8..12].copy_from_slice(&self.ssrc.to_be_bytes());
        b
    }

    /// Parse from wire bytes; `None` if too short or not version 2.
    pub fn parse(bytes: &[u8]) -> Option<RtpHeader> {
        if bytes.len() < RTP_HEADER_LEN || bytes[0] >> 6 != RTP_VERSION {
            return None;
        }
        Some(RtpHeader {
            payload_type: PayloadType::from_code(bytes[1] & 0x7F),
            marker: bytes[1] & 0x80 != 0,
            seq: u16::from_be_bytes([bytes[2], bytes[3]]),
            timestamp: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            ssrc: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
        })
    }
}

/// A complete RTP packet (header + opaque payload).
#[derive(Clone, Debug, PartialEq)]
pub struct RtpPacket {
    /// The header.
    pub header: RtpHeader,
    /// Encrypted media payload (SRTP in reality; opaque bytes here).
    pub payload: Vec<u8>,
}

impl RtpPacket {
    /// Serialize header + payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.header.to_bytes().to_vec();
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse a full packet.
    pub fn parse(bytes: &[u8]) -> Option<RtpPacket> {
        let header = RtpHeader::parse(bytes)?;
        Some(RtpPacket {
            header,
            payload: bytes[RTP_HEADER_LEN..].to_vec(),
        })
    }
}

/// Stateful packetizer: stamps monotone sequence numbers and timestamps for
/// one SSRC.
#[derive(Clone, Debug)]
pub struct RtpStream {
    payload_type: PayloadType,
    ssrc: u32,
    next_seq: u16,
    clock_rate: u32,
}

impl RtpStream {
    /// A stream with the given PT, SSRC, and media clock rate (90 kHz for
    /// video per RFC 3551).
    pub fn new(payload_type: PayloadType, ssrc: u32, clock_rate: u32) -> Self {
        RtpStream {
            payload_type,
            ssrc,
            next_seq: 0,
            clock_rate,
        }
    }

    /// A 90 kHz video stream.
    pub fn video(payload_type: PayloadType, ssrc: u32) -> Self {
        Self::new(payload_type, ssrc, 90_000)
    }

    /// Packetize one media chunk captured at `media_time_s` seconds.
    /// `last_of_frame` sets the marker bit.
    pub fn packetize(
        &mut self,
        media_time_s: f64,
        payload: Vec<u8>,
        last_of_frame: bool,
    ) -> RtpPacket {
        let header = RtpHeader {
            payload_type: self.payload_type,
            marker: last_of_frame,
            seq: self.next_seq,
            timestamp: (media_time_s * self.clock_rate as f64) as u32,
            ssrc: self.ssrc,
        };
        self.next_seq = self.next_seq.wrapping_add(1);
        RtpPacket { header, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> RtpHeader {
        RtpHeader {
            payload_type: PayloadType::H264Video,
            marker: true,
            seq: 4_660,
            timestamp: 3_735_928_559,
            ssrc: 0x1122_3344,
        }
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        assert_eq!(RtpHeader::parse(&h.to_bytes()), Some(h));
    }

    #[test]
    fn version_bits_are_two() {
        let b = header().to_bytes();
        assert_eq!(b[0] >> 6, 2);
    }

    #[test]
    fn marker_and_pt_share_byte_one() {
        let b = header().to_bytes();
        assert_eq!(b[1], 0x80 | 96);
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let mut b = header().to_bytes();
        b[0] = 0x40; // version 1
        assert!(RtpHeader::parse(&b).is_none());
    }

    #[test]
    fn parse_rejects_short_input() {
        assert!(RtpHeader::parse(&[0x80; 11]).is_none());
    }

    #[test]
    fn payload_type_codes_round_trip() {
        for pt in [
            PayloadType::OpusAudio,
            PayloadType::H264Video,
            PayloadType::H265Video,
            PayloadType::Vp8Video,
            PayloadType::ComfortNoise,
            PayloadType::Dynamic(119),
        ] {
            assert_eq!(PayloadType::from_code(pt.code()), pt);
        }
    }

    #[test]
    fn video_classification() {
        assert!(PayloadType::H264Video.is_video());
        assert!(!PayloadType::OpusAudio.is_video());
    }

    #[test]
    fn packet_round_trips_with_payload() {
        let p = RtpPacket {
            header: header(),
            payload: vec![9, 8, 7, 6],
        };
        assert_eq!(RtpPacket::parse(&p.to_bytes()), Some(p));
    }

    #[test]
    fn stream_stamps_monotone_sequence() {
        let mut s = RtpStream::video(PayloadType::H264Video, 7);
        let a = s.packetize(0.0, vec![1], false);
        let b = s.packetize(1.0 / 30.0, vec![2], true);
        assert_eq!(a.header.seq + 1, b.header.seq);
        assert!(b.header.timestamp > a.header.timestamp);
        // 90 kHz clock: one 30 FPS frame = 3000 ticks.
        assert_eq!(b.header.timestamp - a.header.timestamp, 3_000);
        assert!(b.header.marker && !a.header.marker);
    }

    #[test]
    fn sequence_wraps_cleanly() {
        let mut s = RtpStream::video(PayloadType::H264Video, 7);
        s.next_seq = u16::MAX;
        let a = s.packetize(0.0, vec![], false);
        let b = s.packetize(0.0, vec![], false);
        assert_eq!(a.header.seq, u16::MAX);
        assert_eq!(b.header.seq, 0);
    }
}
