//! QUIC-like framing (RFC 9000 shapes: varints, long/short headers,
//! stream frames).
//!
//! §4.1: "When all users use Vision Pro, FaceTime delivers the content via
//! QUIC." The simulator's spatial-persona path frames its semantic payloads
//! exactly this way so that the passive classifier can make the same call
//! the paper made from its captures. Payload bytes are encrypted
//! ([`crate::cipher`]); only header structure is observable.

use crate::cipher;

/// The QUIC version value our long headers carry (QUIC v1).
pub const QUIC_V1: u32 = 0x0000_0001;

/// Encode an RFC 9000 variable-length integer.
pub fn write_varint(out: &mut Vec<u8>, v: u64) {
    match v {
        0..=0x3F => out.push(v as u8),
        0x40..=0x3FFF => out.extend_from_slice(&(0x4000u16 | v as u16).to_be_bytes()),
        0x4000..=0x3FFF_FFFF => {
            out.extend_from_slice(&(0x8000_0000u32 | v as u32).to_be_bytes())
        }
        0x4000_0000..=0x3FFF_FFFF_FFFF_FFFF => {
            out.extend_from_slice(&(0xC000_0000_0000_0000u64 | v).to_be_bytes())
        }
        _ => panic!("varint out of range: {v}"),
    }
}

/// Decode an RFC 9000 varint, returning `(value, bytes_consumed)`.
pub fn read_varint(bytes: &[u8]) -> Option<(u64, usize)> {
    let first = *bytes.first()?;
    let len = 1usize << (first >> 6);
    if bytes.len() < len {
        return None;
    }
    let mut v = (first & 0x3F) as u64;
    for &b in &bytes[1..len] {
        v = (v << 8) | b as u64;
    }
    Some((v, len))
}

/// Frames carried inside a QUIC packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuicFrame {
    /// PADDING (type 0x00).
    Padding(usize),
    /// PING (type 0x01).
    Ping,
    /// STREAM with explicit offset and length (type 0x0e).
    Stream {
        /// Stream identifier.
        stream_id: u64,
        /// Byte offset within the stream.
        offset: u64,
        /// Application data.
        data: Vec<u8>,
    },
}

impl QuicFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            QuicFrame::Padding(n) => out.extend(std::iter::repeat_n(0u8, *n)),
            QuicFrame::Ping => out.push(0x01),
            QuicFrame::Stream {
                stream_id,
                offset,
                data,
            } => {
                out.push(0x0E); // STREAM | OFF | LEN
                write_varint(out, *stream_id);
                write_varint(out, *offset);
                write_varint(out, data.len() as u64);
                out.extend_from_slice(data);
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<(QuicFrame, usize)> {
        let ty = *bytes.first()?;
        match ty {
            0x00 => {
                let n = bytes.iter().take_while(|&&b| b == 0).count();
                Some((QuicFrame::Padding(n), n))
            }
            0x01 => Some((QuicFrame::Ping, 1)),
            0x0E => {
                let mut pos = 1;
                let (stream_id, n) = read_varint(&bytes[pos..])?;
                pos += n;
                let (offset, n) = read_varint(&bytes[pos..])?;
                pos += n;
                let (len, n) = read_varint(&bytes[pos..])?;
                pos += n;
                let end = pos.checked_add(len as usize)?;
                let data = bytes.get(pos..end)?.to_vec();
                Some((
                    QuicFrame::Stream {
                        stream_id,
                        offset,
                        data,
                    },
                    end,
                ))
            }
            _ => None,
        }
    }
}

/// A QUIC-like packet: long header (handshake) or short header (1-RTT).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuicPacket {
    /// Long header — carries version and connection IDs.
    Long {
        /// Destination connection ID (≤ 20 bytes).
        dcid: Vec<u8>,
        /// Source connection ID (≤ 20 bytes).
        scid: Vec<u8>,
        /// Packet number.
        packet_number: u64,
        /// Frames (encrypted on the wire).
        frames: Vec<QuicFrame>,
    },
    /// Short header — the steady-state data packets.
    Short {
        /// Destination connection ID (fixed 8 bytes in our framing).
        dcid: [u8; 8],
        /// Packet number.
        packet_number: u64,
        /// Frames (encrypted on the wire).
        frames: Vec<QuicFrame>,
    },
}

/// First-byte pattern: long header (fixed bit + long bit).
const LONG_FIRST: u8 = 0b1100_0000;
/// First-byte pattern: short header (fixed bit only).
const SHORT_FIRST: u8 = 0b0100_0000;

impl QuicPacket {
    /// Serialize, encrypting the frame body under `key`. The header stays
    /// in the clear (as QUIC's invariant bytes do).
    pub fn to_bytes(&self, key: &cipher::Key) -> Vec<u8> {
        let mut out = Vec::new();
        let (packet_number, frames) = match self {
            QuicPacket::Long {
                dcid,
                scid,
                packet_number,
                frames,
            } => {
                assert!(dcid.len() <= 20 && scid.len() <= 20, "cid too long");
                out.push(LONG_FIRST);
                out.extend_from_slice(&QUIC_V1.to_be_bytes());
                out.push(dcid.len() as u8);
                out.extend_from_slice(dcid);
                out.push(scid.len() as u8);
                out.extend_from_slice(scid);
                (*packet_number, frames)
            }
            QuicPacket::Short {
                dcid,
                packet_number,
                frames,
            } => {
                out.push(SHORT_FIRST);
                out.extend_from_slice(dcid);
                (*packet_number, frames)
            }
        };
        write_varint(&mut out, packet_number);
        let mut body = Vec::new();
        for f in frames {
            f.encode(&mut body);
        }
        let nonce = cipher::packet_nonce(0xC0DE, packet_number);
        cipher::apply(key, &nonce, &mut body);
        out.extend_from_slice(&body);
        out
    }

    /// Parse and decrypt a packet produced by [`QuicPacket::to_bytes`].
    pub fn parse(bytes: &[u8], key: &cipher::Key) -> Option<QuicPacket> {
        let first = *bytes.first()?;
        if first & 0b0100_0000 == 0 {
            return None; // fixed bit must be set
        }
        let long = first & 0b1000_0000 != 0;
        let mut pos = 1usize;
        let mut dcid_long = Vec::new();
        let mut scid = Vec::new();
        let mut dcid_short = [0u8; 8];
        if long {
            let version = u32::from_be_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?);
            if version != QUIC_V1 {
                return None;
            }
            pos += 4;
            let dlen = *bytes.get(pos)? as usize;
            pos += 1;
            dcid_long = bytes.get(pos..pos + dlen)?.to_vec();
            pos += dlen;
            let slen = *bytes.get(pos)? as usize;
            pos += 1;
            scid = bytes.get(pos..pos + slen)?.to_vec();
            pos += slen;
        } else {
            dcid_short.copy_from_slice(bytes.get(pos..pos + 8)?);
            pos += 8;
        }
        let (packet_number, n) = read_varint(&bytes[pos..])?;
        pos += n;
        let mut body = bytes.get(pos..)?.to_vec();
        let nonce = cipher::packet_nonce(0xC0DE, packet_number);
        cipher::apply(key, &nonce, &mut body);
        let mut frames = Vec::new();
        let mut fpos = 0;
        while fpos < body.len() {
            let (frame, n) = QuicFrame::decode(&body[fpos..])?;
            frames.push(frame);
            fpos += n;
        }
        Some(if long {
            QuicPacket::Long {
                dcid: dcid_long,
                scid,
                packet_number,
                frames,
            }
        } else {
            QuicPacket::Short {
                dcid: dcid_short,
                packet_number,
                frames,
            }
        })
    }
}

/// A unidirectional QUIC-like stream sender: frames payloads into short
/// packets with monotone packet numbers and stream offsets.
#[derive(Clone, Debug)]
pub struct QuicStreamSender {
    dcid: [u8; 8],
    stream_id: u64,
    next_packet_number: u64,
    offset: u64,
    key: cipher::Key,
}

impl QuicStreamSender {
    /// A sender for one stream over one connection.
    pub fn new(dcid: [u8; 8], stream_id: u64, key: cipher::Key) -> Self {
        QuicStreamSender {
            dcid,
            stream_id,
            next_packet_number: 0,
            offset: 0,
            key,
        }
    }

    /// Wrap one application payload into a serialized short packet,
    /// returned as a shared buffer: the wire image is allocated exactly
    /// once per frame and every downstream consumer (the network send
    /// path, SFU fan-out, retransmission) shares it by refcount.
    pub fn send(&mut self, data: Vec<u8>) -> std::sync::Arc<[u8]> {
        let len = data.len() as u64;
        let pkt = QuicPacket::Short {
            dcid: self.dcid,
            packet_number: self.next_packet_number,
            frames: vec![QuicFrame::Stream {
                stream_id: self.stream_id,
                offset: self.offset,
                data,
            }],
        };
        self.next_packet_number += 1;
        self.offset += len;
        pkt.to_bytes(&self.key).into()
    }

    /// Packets sent so far.
    pub fn packets_sent(&self) -> u64 {
        self.next_packet_number
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: cipher::Key = [0xA5; 32];

    #[test]
    fn varint_round_trips_all_widths() {
        for v in [0u64, 63, 64, 16_383, 16_384, 0x3FFF_FFFF, 0x4000_0000, 0x3FFF_FFFF_FFFF_FFFF] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (got, n) = read_varint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn varint_rejects_oversize() {
        write_varint(&mut Vec::new(), u64::MAX);
    }

    #[test]
    fn varint_width_is_minimal() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 63);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varint(&mut buf, 64);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn short_packet_round_trips() {
        let pkt = QuicPacket::Short {
            dcid: *b"CONN0001",
            packet_number: 77,
            frames: vec![QuicFrame::Stream {
                stream_id: 4,
                offset: 1_024,
                data: vec![1, 2, 3, 4, 5],
            }],
        };
        let wire = pkt.to_bytes(&KEY);
        assert_eq!(QuicPacket::parse(&wire, &KEY), Some(pkt));
    }

    #[test]
    fn long_packet_round_trips() {
        let pkt = QuicPacket::Long {
            dcid: vec![1; 8],
            scid: vec![2; 8],
            packet_number: 0,
            frames: vec![QuicFrame::Ping, QuicFrame::Padding(16)],
        };
        let wire = pkt.to_bytes(&KEY);
        assert_eq!(QuicPacket::parse(&wire, &KEY), Some(pkt));
    }

    #[test]
    fn wrong_key_garbles_frames() {
        let pkt = QuicPacket::Short {
            dcid: *b"CONN0001",
            packet_number: 5,
            frames: vec![QuicFrame::Stream {
                stream_id: 4,
                offset: 0,
                data: vec![9; 100],
            }],
        };
        let wire = pkt.to_bytes(&KEY);
        let wrong = [0x5Au8; 32];
        // Decryption with the wrong key either fails to parse frames or
        // yields different content — never the plaintext.
        match QuicPacket::parse(&wire, &wrong) {
            None => {}
            Some(p) => assert_ne!(p, pkt),
        }
    }

    #[test]
    fn header_bits_match_quic_invariants() {
        let long = QuicPacket::Long {
            dcid: vec![],
            scid: vec![],
            packet_number: 0,
            frames: vec![],
        }
        .to_bytes(&KEY);
        assert_eq!(long[0] & 0b1100_0000, 0b1100_0000);
        let short = QuicPacket::Short {
            dcid: [0; 8],
            packet_number: 0,
            frames: vec![],
        }
        .to_bytes(&KEY);
        assert_eq!(short[0] & 0b1100_0000, 0b0100_0000);
    }

    #[test]
    fn parse_rejects_unset_fixed_bit() {
        assert!(QuicPacket::parse(&[0x00, 1, 2, 3], &KEY).is_none());
    }

    #[test]
    fn stream_sender_advances_offsets_and_numbers() {
        let mut s = QuicStreamSender::new(*b"PERSONA1", 0, KEY);
        let w1 = s.send(vec![0xAA; 100]);
        let w2 = s.send(vec![0xBB; 50]);
        assert_eq!(s.packets_sent(), 2);
        match QuicPacket::parse(&w2, &KEY).unwrap() {
            QuicPacket::Short {
                packet_number,
                frames,
                ..
            } => {
                assert_eq!(packet_number, 1);
                match &frames[0] {
                    QuicFrame::Stream { offset, data, .. } => {
                        assert_eq!(*offset, 100);
                        assert_eq!(data.len(), 50);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // Ciphertexts for same plaintext lengths differ (per-packet nonce).
        assert_ne!(w1[..20], w2[..20]);
    }
}
