//! Passive protocol identification from captured header bytes.
//!
//! The paper's Wireshark analysis distinguishes RTP flows from QUIC flows
//! and reads RTP payload types from headers — the only fields visible given
//! end-to-end encryption. [`classify`] does the same over the first bytes a
//! tap retains, using the protocols' first-byte invariants:
//!
//! * RTP: version bits `10` in the two MSBs of byte 0 and a plausible
//!   remainder (no CSRC/extension in the studied flows).
//! * QUIC long header: byte 0 starts `11`, followed by a known version.
//! * QUIC short header: byte 0 starts `01`.

use crate::quic::QUIC_V1;
use crate::rtcp::ReceiverReportPacket;
use crate::rtp::PayloadType;

/// Classifier verdict for one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireProtocol {
    /// RTP carrying the given payload type.
    Rtp(PayloadType),
    /// RTCP control traffic (receiver reports etc.).
    Rtcp,
    /// QUIC (long or short header).
    Quic,
    /// Unrecognized.
    Unknown,
}

impl WireProtocol {
    /// True for any RTP verdict.
    pub fn is_rtp(&self) -> bool {
        matches!(self, WireProtocol::Rtp(_))
    }

    /// True for the QUIC verdict.
    pub fn is_quic(&self) -> bool {
        matches!(self, WireProtocol::Quic)
    }
}

/// Classify a packet from its first bytes (a tap's header snippet).
pub fn classify(snippet: &[u8]) -> WireProtocol {
    let Some(&first) = snippet.first() else {
        return WireProtocol::Unknown;
    };
    match first >> 6 {
        0b10 => {
            // RTCP shares RTP's version bits but uses packet types
            // 200..=206 in byte 1; check it first (an RTCP type would
            // otherwise parse as an RTP marker + dynamic PT).
            if ReceiverReportPacket::looks_like_rtcp(snippet) {
                return WireProtocol::Rtcp;
            }
            // RTP v2. Reject headers with CSRC count or extension set —
            // the studied applications do not use them, and requiring this
            // cuts false positives on random ciphertext.
            if first & 0x3F == 0 && snippet.len() >= 2 {
                WireProtocol::Rtp(PayloadType::from_code(snippet[1] & 0x7F))
            } else {
                WireProtocol::Unknown
            }
        }
        0b11 => {
            // QUIC long header: check version.
            if snippet.len() >= 5 {
                let version = u32::from_be_bytes([snippet[1], snippet[2], snippet[3], snippet[4]]);
                if version == QUIC_V1 {
                    return WireProtocol::Quic;
                }
            }
            WireProtocol::Unknown
        }
        0b01 => WireProtocol::Quic, // short header (fixed bit set, long bit clear)
        _ => WireProtocol::Unknown,
    }
}

/// Majority-vote flow classification over many packet snippets: returns the
/// dominant verdict and its fraction.
pub fn classify_flow<'a, I>(snippets: I) -> (WireProtocol, f64)
where
    I: IntoIterator<Item = &'a [u8]>,
{
    use std::collections::HashMap;
    let mut votes: HashMap<WireProtocol, usize> = HashMap::new();
    let mut total = 0usize;
    for s in snippets {
        *votes.entry(classify(s)).or_insert(0) += 1;
        total += 1;
    }
    match votes
        .into_iter()
        .max_by_key(|&(p, c)| (c, matches!(p, WireProtocol::Unknown) as usize))
    {
        Some((proto, count)) => (proto, count as f64 / total as f64),
        // No snippets at all — an empty flow is simply unknown, never a
        // panic (tap records can legitimately be empty).
        None => (WireProtocol::Unknown, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    use crate::quic::{QuicFrame, QuicPacket, QuicStreamSender};
    use crate::rtp::{RtpPacket, RtpStream};

    #[test]
    fn classifies_rtp_with_payload_type() {
        let mut s = RtpStream::video(PayloadType::H264Video, 99);
        let wire = s.packetize(0.0, vec![0u8; 50], true).to_bytes();
        assert_eq!(
            classify(&wire),
            WireProtocol::Rtp(PayloadType::H264Video)
        );
    }

    #[test]
    fn classifies_quic_short_and_long() {
        let key = [1u8; 32];
        let mut sender = QuicStreamSender::new(*b"AVPSPAT1", 0, key);
        let short = sender.send(vec![0u8; 100]);
        assert_eq!(classify(&short), WireProtocol::Quic);
        let long = QuicPacket::Long {
            dcid: vec![1; 8],
            scid: vec![2; 8],
            packet_number: 0,
            frames: vec![QuicFrame::Ping],
        }
        .to_bytes(&key);
        assert_eq!(classify(&long), WireProtocol::Quic);
    }

    #[test]
    fn rejects_long_header_with_bogus_version() {
        let snippet = [0b1100_0000, 0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0];
        assert_eq!(classify(&snippet), WireProtocol::Unknown);
    }

    #[test]
    fn rejects_rtp_with_csrc_or_extension() {
        // Version 2 but CSRC count 3.
        assert_eq!(classify(&[0x83, 96, 0, 0]), WireProtocol::Unknown);
        // Version 2 but extension bit.
        assert_eq!(classify(&[0x90, 96, 0, 0]), WireProtocol::Unknown);
    }

    #[test]
    fn empty_and_garbage_are_unknown() {
        assert_eq!(classify(&[]), WireProtocol::Unknown);
        assert_eq!(classify(&[0x00, 1, 2]), WireProtocol::Unknown);
        assert_eq!(classify(&[0x3F]), WireProtocol::Unknown);
    }

    #[test]
    fn empty_flow_is_unknown_not_a_panic() {
        let (proto, frac) = classify_flow(std::iter::empty());
        assert_eq!(proto, WireProtocol::Unknown);
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn flow_majority_vote() {
        let mut s = RtpStream::video(PayloadType::H265Video, 7);
        let packets: Vec<Vec<u8>> = (0..20)
            .map(|i| s.packetize(i as f64 / 90.0, vec![0u8; 64], true).to_bytes())
            .collect();
        let mut snippets: Vec<&[u8]> = packets.iter().map(|p| &p[..16.min(p.len())]).collect();
        let garbage = [0u8; 16];
        snippets.push(&garbage);
        let (proto, frac) = classify_flow(snippets);
        assert_eq!(proto, WireProtocol::Rtp(PayloadType::H265Video));
        assert!(frac > 0.9);
    }

    #[test]
    fn pt_field_consistency_check_works_end_to_end() {
        // The paper verifies FaceTime's RTP PT matches traditional 2D
        // calls; we reproduce: two streams with the same PT classify
        // identically.
        let mut call_2d = RtpStream::video(PayloadType::H264Video, 1);
        let mut call_avp = RtpStream::video(PayloadType::H264Video, 2);
        let a = call_2d.packetize(0.0, vec![0; 10], true).to_bytes();
        let b = call_avp.packetize(0.0, vec![0; 10], true).to_bytes();
        assert_eq!(classify(&a), classify(&b));
    }

    #[test]
    fn rtp_parse_and_classify_agree() {
        let mut s = RtpStream::video(PayloadType::Vp8Video, 3);
        let wire = s.packetize(0.5, vec![1, 2, 3], false).to_bytes();
        let parsed = RtpPacket::parse(&wire).unwrap();
        match classify(&wire) {
            WireProtocol::Rtp(pt) => assert_eq!(pt, parsed.header.payload_type),
            other => panic!("unexpected {other:?}"),
        }
    }
}
