//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! Spatial persona traffic is end-to-end encrypted (paper §5: MITM cannot
//! obtain the TLS certificate, so contents are opaque). The simulator
//! encrypts semantic payloads with ChaCha20 so that taps and classifiers
//! genuinely cannot shortcut through payload inspection — the measurement
//! tooling must infer from headers and traffic patterns, as the paper does.

/// A 256-bit key.
pub type Key = [u8; 32];
/// A 96-bit nonce.
pub type Nonce = [u8; 12];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn block(key: &Key, nonce: &Nonce, counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes([
            key[4 * i],
            key[4 * i + 1],
            key[4 * i + 2],
            key[4 * i + 3],
        ]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` with the ChaCha20 keystream (encrypt == decrypt). The
/// keystream starts at block counter 1, per RFC 8439's AEAD convention.
pub fn apply(key: &Key, nonce: &Nonce, data: &mut [u8]) {
    let mut counter: u32 = 1;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, nonce, counter);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

/// Convenience: encrypt a payload, returning a new vector.
pub fn seal(key: &Key, nonce: &Nonce, plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    apply(key, nonce, &mut out);
    out
}

/// Convenience: decrypt (same operation as [`seal`]).
pub fn open(key: &Key, nonce: &Nonce, ciphertext: &[u8]) -> Vec<u8> {
    seal(key, nonce, ciphertext)
}

/// Derive a per-packet nonce from a stream id and packet number, the way
/// QUIC-style transports combine an IV with the packet number.
pub fn packet_nonce(stream_id: u32, packet_number: u64) -> Nonce {
    let mut n = [0u8; 12];
    n[..4].copy_from_slice(&stream_id.to_le_bytes());
    n[4..].copy_from_slice(&packet_number.to_le_bytes());
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector (keystream block).
    #[test]
    fn rfc8439_block_test_vector() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce: Nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, &nonce, 1);
        let expected_first16: [u8; 16] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&out[..16], &expected_first16);
    }

    /// RFC 8439 §2.4.2 encryption test vector (first bytes).
    #[test]
    fn rfc8439_encrypt_test_vector() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce: Nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = seal(&key, &nonce, plaintext);
        let expected_first8: [u8; 8] = [0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80];
        assert_eq!(&ct[..8], &expected_first8);
    }

    #[test]
    fn seal_open_round_trips() {
        let key = [7u8; 32];
        let nonce = packet_nonce(3, 42);
        let msg = b"74 keypoints at 90 fps".to_vec();
        let ct = seal(&key, &nonce, &msg);
        assert_ne!(ct, msg);
        assert_eq!(open(&key, &nonce, &ct), msg);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [7u8; 32];
        let msg = vec![0u8; 64];
        let a = seal(&key, &packet_nonce(1, 1), &msg);
        let b = seal(&key, &packet_nonce(1, 2), &msg);
        assert_ne!(a, b);
    }

    #[test]
    fn multi_block_messages_work() {
        let key = [1u8; 32];
        let nonce = packet_nonce(0, 0);
        let msg: Vec<u8> = (0..1_000u32).map(|i| i as u8).collect();
        assert_eq!(open(&key, &nonce, &seal(&key, &nonce, &msg)), msg);
    }

    #[test]
    fn empty_message_is_fine() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        assert!(seal(&key, &nonce, b"").is_empty());
    }

    #[test]
    fn ciphertext_looks_high_entropy() {
        let key = [9u8; 32];
        let nonce = packet_nonce(5, 5);
        let ct = seal(&key, &nonce, &vec![0u8; 4_096]);
        let mut counts = [0u32; 256];
        for &b in &ct {
            counts[b as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        // Uniform expectation is 16/byte; allow generous slack.
        assert!(max < 48, "suspiciously skewed keystream, max = {max}");
    }
}
