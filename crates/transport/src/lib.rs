//! # visionsim-transport
//!
//! Wire framing for the simulated VCAs, shaped after what the paper's
//! Wireshark captures can and cannot see:
//!
//! * [`rtp`] — RFC 3550-shaped RTP headers with the RFC 3551 payload-type
//!   registry. The paper identifies 2D persona delivery by its RTP framing
//!   and checks that FaceTime's PT field matches traditional 2D video
//!   calls.
//! * [`quic`] — a QUIC-like framing (RFC 9000 varints, long/short headers,
//!   stream frames) used by FaceTime when *all* participants wear Vision
//!   Pro. Payloads ride encrypted (TLS 1.3 in reality, [`cipher`] here), so
//!   the classifier sees headers only — matching the paper's §5 observation
//!   that content decryption is infeasible and analysis must rely on
//!   headers and traffic patterns.
//! * [`cipher`] — RFC 8439 ChaCha20, implemented from scratch, standing in
//!   for the end-to-end encryption of spatial persona payloads.
//! * [`mod@classify`] — the passive protocol identifier applied to tap
//!   records, reproducing the paper's protocol findings methodology.

pub mod cipher;
pub mod classify;
pub mod quic;
pub mod rtcp;
pub mod rtp;

pub use classify::{classify, WireProtocol};
pub use quic::{QuicFrame, QuicPacket};
pub use rtcp::{PliPacket, ReceiverReportPacket, XrPacket};
pub use rtp::{PayloadType, RtpHeader, RtpPacket};
