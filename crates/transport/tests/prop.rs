//! Property-based tests for wire framing: round-trips under arbitrary
//! field values, and parser robustness on arbitrary bytes.

use proptest::prelude::*;
use visionsim_transport::cipher;
use visionsim_transport::classify::classify;
use visionsim_transport::quic::{read_varint, write_varint, QuicFrame, QuicPacket};
use visionsim_transport::rtp::{PayloadType, RtpHeader, RtpPacket};

proptest! {
    #[test]
    fn rtp_header_round_trips(
        pt in 0u8..128,
        marker in any::<bool>(),
        seq in any::<u16>(),
        timestamp in any::<u32>(),
        ssrc in any::<u32>(),
    ) {
        let h = RtpHeader {
            payload_type: PayloadType::from_code(pt),
            marker,
            seq,
            timestamp,
            ssrc,
        };
        prop_assert_eq!(RtpHeader::parse(&h.to_bytes()), Some(h));
    }

    #[test]
    fn rtp_packet_round_trips(payload in prop::collection::vec(any::<u8>(), 0..2_000)) {
        let p = RtpPacket {
            header: RtpHeader {
                payload_type: PayloadType::H264Video,
                marker: true,
                seq: 1,
                timestamp: 2,
                ssrc: 3,
            },
            payload,
        };
        prop_assert_eq!(RtpPacket::parse(&p.to_bytes()), Some(p));
    }

    #[test]
    fn rtp_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = RtpHeader::parse(&bytes);
        let _ = RtpPacket::parse(&bytes);
    }

    #[test]
    fn quic_varint_round_trips(v in 0u64..0x4000_0000_0000_0000) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let (got, n) = read_varint(&buf).expect("wrote it");
        prop_assert_eq!(got, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn quic_short_packet_round_trips(
        dcid in any::<[u8; 8]>(),
        pn in 0u64..0x4000_0000,
        stream_id in 0u64..1_000,
        offset in 0u64..0x4000_0000,
        data in prop::collection::vec(any::<u8>(), 0..1_500),
        key in any::<[u8; 32]>(),
    ) {
        let pkt = QuicPacket::Short {
            dcid,
            packet_number: pn,
            frames: vec![QuicFrame::Stream { stream_id, offset, data }],
        };
        let wire = pkt.to_bytes(&key);
        prop_assert_eq!(QuicPacket::parse(&wire, &key), Some(pkt));
    }

    #[test]
    fn quic_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = QuicPacket::parse(&bytes, &[0u8; 32]);
    }

    #[test]
    fn classify_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..32)) {
        let _ = classify(&bytes);
    }

    #[test]
    fn chacha_round_trips(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        data in prop::collection::vec(any::<u8>(), 0..2_000),
    ) {
        let ct = cipher::seal(&key, &nonce, &data);
        prop_assert_eq!(ct.len(), data.len());
        prop_assert_eq!(cipher::open(&key, &nonce, &ct), data);
    }

    /// Ciphertext differs from plaintext for non-trivial inputs (the
    /// keystream is never the zero stream for these parameters).
    #[test]
    fn chacha_actually_encrypts(
        key in any::<[u8; 32]>(),
        data in prop::collection::vec(any::<u8>(), 64..256),
    ) {
        let nonce = [7u8; 12];
        let ct = cipher::seal(&key, &nonce, &data);
        prop_assert_ne!(ct, data);
    }

    /// Classifier verdicts on real framings are correct for arbitrary
    /// header field values.
    #[test]
    fn classify_identifies_real_framings(
        seq in any::<u16>(),
        ts in any::<u32>(),
        key in any::<[u8; 32]>(),
        payload in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let rtp = RtpPacket {
            header: RtpHeader {
                payload_type: PayloadType::H264Video,
                marker: false,
                seq,
                timestamp: ts,
                ssrc: 1,
            },
            payload: payload.clone(),
        }
        .to_bytes();
        prop_assert!(classify(&rtp).is_rtp());

        let quic = QuicPacket::Short {
            dcid: [1; 8],
            packet_number: seq as u64,
            frames: vec![QuicFrame::Stream { stream_id: 0, offset: 0, data: payload }],
        }
        .to_bytes(&key);
        prop_assert!(classify(&quic).is_quic());
    }
}
