//! Randomized property tests for wire framing: round-trips under arbitrary
//! field values, and parser robustness on arbitrary bytes. Cases are
//! deterministic SimRng draws.

use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_transport::cipher;
use visionsim_transport::classify::classify;
use visionsim_transport::quic::{read_varint, write_varint, QuicFrame, QuicPacket};
use visionsim_transport::rtp::{PayloadType, RtpHeader, RtpPacket};

const CASES: u64 = 128;

fn case_rng(label: &str, i: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(0x74A4_5907, label, i))
}

fn bytes(rng: &mut SimRng, min_len: u64, max_len: u64) -> Vec<u8> {
    let n = rng.uniform_u64(min_len, max_len) as usize;
    let mut v = vec![0u8; n];
    rng.fill_bytes(&mut v);
    v
}

fn array<const N: usize>(rng: &mut SimRng) -> [u8; N] {
    let mut a = [0u8; N];
    rng.fill_bytes(&mut a);
    a
}

#[test]
fn rtp_header_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("rtp_header", i);
        let h = RtpHeader {
            payload_type: PayloadType::from_code(rng.uniform_u64(0, 127) as u8),
            marker: rng.chance(0.5),
            seq: rng.next_u64() as u16,
            timestamp: rng.next_u32(),
            ssrc: rng.next_u32(),
        };
        assert_eq!(RtpHeader::parse(&h.to_bytes()), Some(h));
    }
}

#[test]
fn rtp_packet_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("rtp_packet", i);
        let p = RtpPacket {
            header: RtpHeader {
                payload_type: PayloadType::H264Video,
                marker: true,
                seq: 1,
                timestamp: 2,
                ssrc: 3,
            },
            payload: bytes(&mut rng, 0, 2_000),
        };
        assert_eq!(RtpPacket::parse(&p.to_bytes()), Some(p));
    }
}

#[test]
fn rtp_parse_never_panics() {
    for i in 0..CASES {
        let mut rng = case_rng("rtp_garbage", i);
        let garbage = bytes(&mut rng, 0, 64);
        let _ = RtpHeader::parse(&garbage);
        let _ = RtpPacket::parse(&garbage);
    }
}

#[test]
fn quic_varint_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("quic_varint", i);
        for _ in 0..16 {
            let v = rng.uniform_u64(0, 0x4000_0000_0000_0000 - 1);
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (got, n) = read_varint(&buf).expect("wrote it");
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }
}

#[test]
fn quic_short_packet_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("quic_short", i);
        let pkt = QuicPacket::Short {
            dcid: array::<8>(&mut rng),
            packet_number: rng.uniform_u64(0, 0x4000_0000 - 1),
            frames: vec![QuicFrame::Stream {
                stream_id: rng.uniform_u64(0, 999),
                offset: rng.uniform_u64(0, 0x4000_0000 - 1),
                data: bytes(&mut rng, 0, 1_500),
            }],
        };
        let key = array::<32>(&mut rng);
        let wire = pkt.to_bytes(&key);
        assert_eq!(QuicPacket::parse(&wire, &key), Some(pkt));
    }
}

#[test]
fn quic_parse_never_panics() {
    for i in 0..CASES {
        let mut rng = case_rng("quic_garbage", i);
        let garbage = bytes(&mut rng, 0, 128);
        let _ = QuicPacket::parse(&garbage, &[0u8; 32]);
    }
}

#[test]
fn classify_never_panics() {
    for i in 0..CASES {
        let mut rng = case_rng("classify_garbage", i);
        let garbage = bytes(&mut rng, 0, 32);
        let _ = classify(&garbage);
    }
}

#[test]
fn chacha_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("chacha", i);
        let key = array::<32>(&mut rng);
        let nonce = array::<12>(&mut rng);
        let data = bytes(&mut rng, 0, 2_000);
        let ct = cipher::seal(&key, &nonce, &data);
        assert_eq!(ct.len(), data.len());
        assert_eq!(cipher::open(&key, &nonce, &ct), data);
    }
}

/// Ciphertext differs from plaintext for non-trivial inputs (the
/// keystream is never the zero stream for these parameters).
#[test]
fn chacha_actually_encrypts() {
    for i in 0..CASES {
        let mut rng = case_rng("chacha_nonzero", i);
        let key = array::<32>(&mut rng);
        let data = bytes(&mut rng, 64, 256);
        let nonce = [7u8; 12];
        let ct = cipher::seal(&key, &nonce, &data);
        assert_ne!(ct, data);
    }
}

/// Classifier verdicts on real framings are correct for arbitrary
/// header field values.
#[test]
fn classify_identifies_real_framings() {
    for i in 0..CASES {
        let mut rng = case_rng("classify_real", i);
        let seq = rng.next_u64() as u16;
        let ts = rng.next_u32();
        let key = array::<32>(&mut rng);
        let payload = bytes(&mut rng, 0, 100);
        let rtp = RtpPacket {
            header: RtpHeader {
                payload_type: PayloadType::H264Video,
                marker: false,
                seq,
                timestamp: ts,
                ssrc: 1,
            },
            payload: payload.clone(),
        }
        .to_bytes();
        assert!(classify(&rtp).is_rtp());

        let quic = QuicPacket::Short {
            dcid: [1; 8],
            packet_number: seq as u64,
            frames: vec![QuicFrame::Stream {
                stream_id: 0,
                offset: 0,
                data: payload,
            }],
        }
        .to_bytes(&key);
        assert!(classify(&quic).is_quic());
    }
}
