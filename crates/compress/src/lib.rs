//! # visionsim-compress
//!
//! From-scratch lossless compression, built in-tree because the codecs are
//! part of the reproduction surface itself:
//!
//! * The paper compresses keypoint streams with **LZMA** (§4.3) —
//!   [`lzma_like`] implements the same construction (LZ77 match finding
//!   over a sliding window + adaptive binary range coding) and is what the
//!   semantic-communication codec uses.
//! * The paper compresses meshes with **Draco** — `visionsim-mesh` uses
//!   the static [`rans`] entropy coder from this crate for its
//!   quantize/delta/entropy pipeline.
//!
//! Layers, bottom-up: [`bitio`] (bit-level I/O), [`varint`]
//! (LEB128 + zigzag), [`lz77`] (hash-chain match finder),
//! [`range`] (carry-correct adaptive binary range coder),
//! [`rans`] (static table-based rANS), and [`lzma_like`]
//! (the assembled general-purpose codec).

pub mod bitio;
pub mod lz77;
pub mod lzma_like;
pub mod range;
pub mod rans;
pub mod varint;

pub use lzma_like::{compress, decompress};
