//! Static order-0 rANS entropy coder for byte symbols.
//!
//! Used by the mesh codec's Draco-style pipeline (Draco itself entropy-codes
//! with rANS). Frequencies are counted over the input, quantized to a
//! 12-bit table, written as a sparse header, and symbols are coded with a
//! byte-renormalizing rANS state — the `rans_byte` construction.
//!
//! Stream layout:
//!
//! ```text
//! varint n_symbols ‖ sparse freq table ‖ varint body_len ‖ body
//! ```

use crate::varint;
use visionsim_core::SimError;

/// Hard ceiling on a stream's claimed decoded length (256 MiB).
pub const MAX_DECODED_LEN: usize = 256 << 20;

const SCALE_BITS: u32 = 12;
const SCALE: u32 = 1 << SCALE_BITS;
/// Lower bound of the rANS state interval.
const RANS_L: u32 = 1 << 23;

/// Quantize raw counts to a table summing exactly to `SCALE`, keeping every
/// present symbol ≥ 1.
fn normalize(counts: &[u64; 256]) -> [u32; 256] {
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "cannot normalize empty histogram");
    let mut freqs = [0u32; 256];
    let mut assigned: u32 = 0;
    for i in 0..256 {
        if counts[i] == 0 {
            continue;
        }
        let f = ((counts[i] as u128 * SCALE as u128) / total as u128) as u32;
        freqs[i] = f.max(1);
        assigned += freqs[i];
    }
    // Fix the rounding drift by adjusting the most frequent symbol(s).
    while assigned != SCALE {
        if assigned > SCALE {
            // Shrink the largest freq > 1.
            let i = (0..256)
                .filter(|&i| freqs[i] > 1)
                .max_by_key(|&i| freqs[i])
                .expect("some symbol must have freq > 1");
            freqs[i] -= 1;
            assigned -= 1;
        } else {
            let i = (0..256).max_by_key(|&i| freqs[i]).expect("non-empty");
            freqs[i] += 1;
            assigned += 1;
        }
    }
    freqs
}

fn write_freq_table(out: &mut Vec<u8>, freqs: &[u32; 256]) {
    let present: Vec<usize> = (0..256).filter(|&i| freqs[i] > 0).collect();
    varint::write_u64(out, present.len() as u64);
    for &i in &present {
        out.push(i as u8);
        varint::write_u64(out, freqs[i] as u64);
    }
}

fn read_freq_table(input: &[u8]) -> Option<([u32; 256], usize)> {
    let (count, mut pos) = varint::read_u64(input)?;
    if count == 0 || count > 256 {
        return None;
    }
    let mut freqs = [0u32; 256];
    let mut sum: u64 = 0;
    for _ in 0..count {
        let sym = *input.get(pos)? as usize;
        pos += 1;
        let (f, n) = varint::read_u64(&input[pos..])?;
        pos += n;
        if f == 0 || f > SCALE as u64 || freqs[sym] != 0 {
            return None;
        }
        freqs[sym] = f as u32;
        sum += f;
    }
    if sum != SCALE as u64 {
        return None;
    }
    Some((freqs, pos))
}

/// Encode `data` with a static rANS model. Empty input yields a minimal
/// header-only stream.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    varint::write_u64(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let freqs = normalize(&counts);
    write_freq_table(&mut out, &freqs);
    let mut cum = [0u32; 257];
    for i in 0..256 {
        cum[i + 1] = cum[i] + freqs[i];
    }
    // rANS encodes in reverse.
    let mut state: u32 = RANS_L;
    let mut body_rev: Vec<u8> = Vec::new();
    for &b in data.iter().rev() {
        let f = freqs[b as usize];
        let start = cum[b as usize];
        // Renormalize: emit low bytes until state fits.
        let x_max = ((RANS_L >> SCALE_BITS) << 8) * f;
        while state >= x_max {
            body_rev.push((state & 0xFF) as u8);
            state >>= 8;
        }
        state = ((state / f) << SCALE_BITS) + (state % f) + start;
    }
    // Final state, little-endian, then the body (reversed back).
    let mut body = Vec::with_capacity(body_rev.len() + 4);
    body.extend_from_slice(&state.to_le_bytes());
    body.extend(body_rev.iter().rev());
    varint::write_u64(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    out
}

/// Decode a stream produced by [`encode`].
pub fn decode(input: &[u8]) -> Result<Vec<u8>, SimError> {
    let (n, mut pos) = varint::read_u64(input).ok_or(SimError::Truncated {
        what: "rans length header",
    })?;
    let n = usize::try_from(n).map_err(|_| SimError::Corrupt {
        what: "rans length header",
    })?;
    if n == 0 {
        return Ok(Vec::new());
    }
    // A single-symbol model legitimately costs ~0 bits/symbol, so output
    // size cannot be bounded by input size; cap the claim outright
    // instead (the workspace never encodes anything near this).
    if n > MAX_DECODED_LEN {
        return Err(SimError::LimitExceeded {
            what: "rans claimed decoded length",
            limit: MAX_DECODED_LEN as u64,
        });
    }
    let (freqs, table_len) = read_freq_table(&input[pos..]).ok_or(SimError::Corrupt {
        what: "rans frequency table",
    })?;
    pos += table_len;
    let (body_len, hdr) = varint::read_u64(&input[pos..]).ok_or(SimError::Truncated {
        what: "rans body length",
    })?;
    pos += hdr;
    let body = input
        .get(pos..pos.saturating_add(body_len as usize))
        .ok_or(SimError::Truncated { what: "rans body" })?;
    if body.len() < 4 {
        return Err(SimError::Truncated { what: "rans body" });
    }
    let mut cum = [0u32; 257];
    for i in 0..256 {
        cum[i + 1] = cum[i] + freqs[i];
    }
    // Symbol lookup by cumulative slot.
    let mut slot_to_sym = [0u8; SCALE as usize];
    for s in 0..256 {
        for slot in cum[s]..cum[s + 1] {
            slot_to_sym[slot as usize] = s as u8;
        }
    }
    let mut state = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
    let mut feed = body[4..].iter();
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let slot = state & (SCALE - 1);
        let sym = slot_to_sym[slot as usize];
        let f = freqs[sym as usize];
        let start = cum[sym as usize];
        state = f * (state >> SCALE_BITS) + slot - start;
        while state < RANS_L {
            let b = *feed.next().ok_or(SimError::Truncated { what: "rans body" })?;
            state = (state << 8) | b as u32;
        }
        out.push(sym);
    }
    if state != RANS_L {
        return Err(SimError::Corrupt {
            what: "rans final state", // mismatch ⇒ corrupt stream
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let e = encode(data);
        assert_eq!(decode(&e).as_deref(), Ok(data), "round trip failed");
        e.len()
    }

    #[test]
    fn empty_input() {
        round_trip(b"");
    }

    #[test]
    fn single_symbol_stream() {
        let data = vec![42u8; 10_000];
        let size = round_trip(&data);
        // One symbol at freq 4096 costs ~0 bits each; header dominates.
        assert!(size < 64, "size = {size}");
    }

    #[test]
    fn two_symbol_skew() {
        let data: Vec<u8> = (0..8_192).map(|i| if i % 16 == 0 { 1 } else { 0 }).collect();
        let size = round_trip(&data);
        // Entropy ≈ 0.337 bits/symbol → ~345 bytes + header.
        assert!(size < 500, "size = {size}");
    }

    #[test]
    fn uniform_bytes_do_not_expand_much() {
        let data: Vec<u8> = (0..16_384u32).map(|i| (i % 256) as u8).collect();
        let size = round_trip(&data);
        assert!(size < data.len() + 1_200, "size = {size}");
    }

    #[test]
    fn short_inputs() {
        round_trip(b"a");
        round_trip(b"abacabad");
    }

    #[test]
    fn quantized_residuals_compress() {
        // Mesh-codec-like residuals: zigzagged small deltas.
        let data: Vec<u8> = (0..50_000u32)
            .map(|i| match i % 10 {
                0..=5 => 0,
                6 | 7 => 1,
                8 => 2,
                _ => 3,
            })
            .collect();
        let size = round_trip(&data);
        assert!(size < data.len() / 3, "size = {size}");
    }

    #[test]
    fn truncated_stream_errors() {
        let e = encode(b"hello world hello world");
        for cut in 0..e.len().saturating_sub(1) {
            // Must never panic; usually Err, occasionally a short valid
            // prefix is impossible because length is in the header.
            let _ = decode(&e[..cut]);
        }
        assert!(decode(&e[..e.len() - 1]).is_err());
    }

    #[test]
    fn normalize_sums_to_scale() {
        let mut counts = [0u64; 256];
        counts[10] = 3;
        counts[20] = 1_000_000;
        counts[30] = 7;
        let freqs = normalize(&counts);
        assert_eq!(freqs.iter().sum::<u32>(), SCALE);
        assert!(freqs[10] >= 1 && freqs[30] >= 1);
        assert!(freqs[20] > 4_000);
    }
}
