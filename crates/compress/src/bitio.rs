//! MSB-first bit-level I/O over byte buffers.

/// Writes bits MSB-first into a growing byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the final partial byte (0 = none pending).
    pending_bits: u8,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Write a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.pending_bits == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.pending_bits);
        }
        self.pending_bits = (self.pending_bits + 1) % 8;
    }

    /// Write the `count` low bits of `value`, MSB-first. `count` ≤ 64.
    pub fn write_bits(&mut self, value: u64, count: u8) {
        assert!(count <= 64, "cannot write more than 64 bits");
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Total number of bits written.
    pub fn bit_len(&self) -> usize {
        if self.pending_bits == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.pending_bits as usize
        }
    }

    /// Finish, padding the final byte with zero bits.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos_bits: 0 }
    }

    /// Read one bit; `None` at end of input.
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos_bits / 8)?;
        let bit = (byte >> (7 - (self.pos_bits % 8))) & 1 == 1;
        self.pos_bits += 1;
        Some(bit)
    }

    /// Read `count` bits MSB-first into the low bits of a u64.
    pub fn read_bits(&mut self, count: u8) -> Option<u64> {
        assert!(count <= 64);
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEAD, 16);
        w.write_bits(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(16), Some(0xDEAD));
        assert_eq!(r.read_bits(1), Some(1));
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1000_0000, 8);
        assert_eq!(w.into_bytes(), vec![0x80]);
    }

    #[test]
    fn reading_past_end_is_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(4), None);
    }

    #[test]
    fn zero_count_reads_zero() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0), Some(0));
    }

    #[test]
    fn sixty_four_bit_value_round_trips() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX - 12345, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64), Some(u64::MAX - 12345));
    }
}
