//! LZ77 match finding over a sliding window.
//!
//! A hash-chain matcher in the zlib/LZMA lineage: positions are indexed by
//! a hash of their 3-byte prefix; candidate matches are walked newest-first
//! up to a bounded chain depth. Greedy parsing with a one-step lazy
//! heuristic (defer a match if the next position matches longer).

use visionsim_core::SimError;

/// Smallest useful match.
pub const MIN_MATCH: usize = 3;
/// Longest encodable match.
pub const MAX_MATCH: usize = 273;
/// Sliding window (maximum match distance).
pub const WINDOW: usize = 1 << 16;

const HASH_BITS: u32 = 15;
const CHAIN_DEPTH: usize = 64;

/// One parsed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Copy length, in `[MIN_MATCH, MAX_MATCH]`.
        len: usize,
        /// Distance back, in `[1, WINDOW]`.
        dist: usize,
    },
}

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(0x0185));
    (h >> (16 - HASH_BITS) & ((1 << HASH_BITS) - 1)) as usize
}

fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut n = 0;
    while n < max && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

/// Find the best match for position `i` using the hash chains.
fn best_match(
    data: &[u8],
    i: usize,
    head: &[i64],
    prev: &[i64],
) -> Option<(usize, usize)> {
    if i + MIN_MATCH > data.len() {
        return None;
    }
    let max_len = MAX_MATCH.min(data.len() - i);
    let mut best: Option<(usize, usize)> = None;
    let mut cand = head[hash3(data, i)];
    let mut depth = 0;
    while cand >= 0 && depth < CHAIN_DEPTH {
        let c = cand as usize;
        if i - c > WINDOW {
            break;
        }
        // Fast reject: to beat the current best, the candidate must agree
        // at the byte one past the best length (in-bounds: best < max_len,
        // else we would have broken out below). Skips the O(len) walk for
        // most chain entries.
        let plausible = match best {
            Some((bl, _)) => data[c + bl] == data[i + bl],
            None => true,
        };
        if plausible {
            let len = match_len(data, c, i, max_len);
            if len >= MIN_MATCH && best.is_none_or(|(bl, _)| len > bl) {
                best = Some((len, i - c));
                if len == max_len {
                    break;
                }
            }
        }
        cand = prev[c % WINDOW];
        depth += 1;
    }
    best
}

/// Parse `data` into LZ77 tokens.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let n = data.len();
    let mut head = vec![-1i64; 1 << HASH_BITS];
    let mut prev = vec![-1i64; WINDOW];
    let insert = |head: &mut [i64], prev: &mut [i64], i: usize| {
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            prev[i % WINDOW] = head[h];
            head[h] = i as i64;
        }
    };
    let mut i = 0;
    while i < n {
        let here = best_match(data, i, &head, &prev);
        let use_match = match here {
            None => None,
            Some((len, dist)) => {
                // Lazy heuristic: if the next position matches strictly
                // longer, emit a literal now and take that match next.
                if i + 1 < n {
                    insert(&mut head, &mut prev, i);
                    let next = best_match(data, i + 1, &head, &prev);
                    if let Some((nlen, _)) = next {
                        if nlen > len + 1 {
                            tokens.push(Token::Literal(data[i]));
                            i += 1;
                            continue;
                        }
                    }
                    // `i` already inserted; emit match and insert the rest.
                    for j in i + 1..i + len {
                        insert(&mut head, &mut prev, j);
                    }
                    tokens.push(Token::Match { len, dist });
                    i += len;
                    continue;
                }
                Some((len, dist))
            }
        };
        match use_match {
            Some((len, dist)) => {
                for j in i..i + len {
                    insert(&mut head, &mut prev, j);
                }
                tokens.push(Token::Match { len, dist });
                i += len;
            }
            None => {
                insert(&mut head, &mut prev, i);
                tokens.push(Token::Literal(data[i]));
                i += 1;
            }
        }
    }
    tokens
}

/// Reconstruct the original bytes from tokens. Fails on a match whose
/// distance reaches before the start of the output (hostile or corrupt
/// token streams).
pub fn detokenize(tokens: &[Token]) -> Result<Vec<u8>, SimError> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                if dist < 1 || dist > out.len() {
                    return Err(SimError::Inconsistent {
                        what: "lz77 match distance",
                    });
                }
                let start = out.len() - dist;
                // Overlapping copies are the point (run-length encoding).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let tokens = tokenize(data);
        assert_eq!(detokenize(&tokens).as_deref(), Ok(data));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_text_round_trips_and_finds_matches() {
        let data = b"the quick brown fox the quick brown fox the quick brown fox";
        let tokens = tokenize(data);
        assert_eq!(detokenize(&tokens).as_deref(), Ok(&data[..]));
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "no matches found in repetitive input"
        );
        assert!(tokens.len() < data.len() / 2);
    }

    #[test]
    fn overlapping_run_length_copy() {
        // "aaaa..." compresses to one literal + one overlapping match.
        let data = vec![b'a'; 300];
        let tokens = tokenize(&data);
        assert_eq!(detokenize(&tokens).as_deref(), Ok(&data[..]));
        assert!(tokens.len() <= 4, "run should collapse, got {tokens:?}");
    }

    #[test]
    fn incompressible_data_round_trips() {
        // A pseudo-random byte string (xorshift) has few matches.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..2_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn match_lengths_are_bounded() {
        let data = vec![7u8; 10_000];
        for t in tokenize(&data) {
            if let Token::Match { len, dist } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
                assert!((1..=WINDOW).contains(&dist));
            }
        }
    }

    #[test]
    fn periodic_binary_data_round_trips() {
        // Mimics the keypoint stream: small periodic deltas.
        let data: Vec<u8> = (0..5_000u32)
            .map(|i| ((i % 74) as u8).wrapping_add((i / 740) as u8))
            .collect();
        round_trip(&data);
        let tokens = tokenize(&data);
        assert!(tokens.len() < data.len() / 4);
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        assert_eq!(
            detokenize(&[Token::Match { len: 3, dist: 5 }]),
            Err(SimError::Inconsistent {
                what: "lz77 match distance"
            })
        );
    }
}
