//! The assembled LZMA-style codec: LZ77 tokens entropy-coded with the
//! adaptive binary range coder.
//!
//! Stream layout:
//!
//! ```text
//! varint original_length ‖ range-coded token stream
//! ```
//!
//! Token coding: one adaptive bit chooses literal vs match. Literals go
//! through a context-conditioned 8-bit tree (context = high nibble of the
//! previous byte — keypoint delta streams are strongly locally
//! correlated). Match lengths go through a 9-bit tree (lengths 3..=273);
//! distances as a 5-bit slot tree (log₂ bucket) plus direct remainder bits,
//! the same shape LZMA uses.

use crate::lz77::{self, Token, MIN_MATCH};
use crate::range::{BitModel, RangeDecoder, RangeEncoder};
use crate::varint;
use visionsim_core::SimError;

const LITERAL_CONTEXTS: usize = 16;

/// Hard ceiling on a stream's claimed decompressed length (256 MiB).
pub const MAX_DECODED_LEN: usize = 256 << 20;

struct Models {
    is_match: BitModel,
    literals: Vec<Vec<BitModel>>,
    len_tree: Vec<BitModel>,
    slot_tree: Vec<BitModel>,
}

impl Models {
    fn new() -> Self {
        Models {
            is_match: BitModel::new(),
            literals: vec![vec![BitModel::new(); 256]; LITERAL_CONTEXTS],
            len_tree: vec![BitModel::new(); 512],
            slot_tree: vec![BitModel::new(); 32],
        }
    }
}

fn literal_context(prev: u8) -> usize {
    (prev >> 4) as usize
}

/// Compress `data`. The empty input encodes to a 1-byte stream.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    varint::write_u64(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }
    let tokens = lz77::tokenize(data);
    let mut enc = RangeEncoder::new();
    let mut models = Models::new();
    let mut prev_byte: u8 = 0;
    let mut pos = 0usize;
    for t in &tokens {
        match *t {
            Token::Literal(b) => {
                enc.encode_bit(&mut models.is_match, false);
                let ctx = literal_context(prev_byte);
                enc.encode_tree(&mut models.literals[ctx], 8, b as u32);
                prev_byte = b;
                pos += 1;
            }
            Token::Match { len, dist } => {
                enc.encode_bit(&mut models.is_match, true);
                enc.encode_tree(&mut models.len_tree, 9, (len - MIN_MATCH) as u32);
                let slot = 63 - (dist as u64).leading_zeros(); // floor(log2)
                enc.encode_tree(&mut models.slot_tree, 5, slot);
                if slot > 0 {
                    let rem = dist as u32 - (1 << slot);
                    enc.encode_direct(rem, slot);
                }
                pos += len;
                prev_byte = data[pos - 1];
            }
        }
    }
    out.extend_from_slice(&enc.finish());
    out
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, SimError> {
    let (orig_len, header) = varint::read_u64(input).ok_or(SimError::Truncated {
        what: "lzma length header",
    })?;
    let orig_len = usize::try_from(orig_len).map_err(|_| SimError::Corrupt {
        what: "lzma length header",
    })?;
    if orig_len == 0 {
        return Ok(Vec::new());
    }
    // A hostile header can claim any length. Cap the claim outright (the
    // workspace never compresses anything near this), and bail out as soon
    // as the range decoder reads meaningfully past the end of a truncated
    // body rather than synthesizing output from phantom zero bytes.
    if orig_len > MAX_DECODED_LEN {
        return Err(SimError::LimitExceeded {
            what: "lzma claimed decompressed length",
            limit: MAX_DECODED_LEN as u64,
        });
    }
    let mut dec = RangeDecoder::new(&input[header..])?;
    let mut models = Models::new();
    let mut out: Vec<u8> = Vec::with_capacity(orig_len.min(1 << 20));
    let mut prev_byte: u8 = 0;
    while out.len() < orig_len {
        if dec.overrun() > 8 {
            return Err(SimError::Truncated {
                what: "lzma range-coded body",
            });
        }
        if dec.decode_bit(&mut models.is_match) {
            let len = dec.decode_tree(&mut models.len_tree, 9) as usize + MIN_MATCH;
            let slot = dec.decode_tree(&mut models.slot_tree, 5);
            let dist = if slot == 0 {
                1usize
            } else {
                (1usize << slot) + dec.decode_direct(slot) as usize
            };
            if dist > out.len() || out.len() + len > orig_len {
                return Err(SimError::Corrupt {
                    what: "lzma match reference",
                });
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
            prev_byte = *out.last().expect("non-empty after match");
        } else {
            let ctx = literal_context(prev_byte);
            let b = dec.decode_tree(&mut models.literals[ctx], 8) as u8;
            out.push(b);
            prev_byte = b;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "round trip failed");
        c.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(round_trip(b""), 1);
    }

    #[test]
    fn short_inputs() {
        round_trip(b"x");
        round_trip(b"ab");
        round_trip(b"hello, world");
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let data: Vec<u8> = b"spatial persona ".repeat(500);
        let size = round_trip(&data);
        assert!(size < data.len() / 10, "{} of {}", size, data.len());
    }

    #[test]
    fn keypoint_like_delta_stream_compresses_hard() {
        // Quantized keypoint deltas: mostly small signed values, strong
        // inter-frame repetition — the regime the paper's LZMA stage
        // exploits.
        let mut data = Vec::new();
        for frame in 0..200u32 {
            for kp in 0..74u32 {
                let delta = ((frame + kp) % 5) as i8 - 2;
                data.push(delta as u8);
                data.push((delta / 2) as u8);
            }
        }
        let size = round_trip(&data);
        assert!(size < data.len() / 8, "{} of {}", size, data.len());
    }

    #[test]
    fn pseudo_random_data_survives() {
        let mut x = 0xDEADBEEFu32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let size = round_trip(&data);
        // Incompressible: expect mild expansion at most.
        assert!(size < data.len() + data.len() / 8 + 16);
    }

    #[test]
    fn all_byte_values_round_trip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4_096).collect();
        round_trip(&data);
    }

    #[test]
    fn long_runs_round_trip() {
        let mut data = vec![0u8; 70_000]; // exceeds the LZ window
        data.extend_from_slice(&[1u8; 70_000]);
        round_trip(&data);
    }

    #[test]
    fn truncated_stream_errors_not_panics() {
        let c = compress(b"some reasonably long input to compress here");
        for cut in [0, 1, 2, c.len() / 2] {
            let r = decompress(&c[..cut]);
            // Either a clean error or (for cut beyond the meaningful data)
            // impossible; never a panic.
            if cut >= c.len() {
                continue;
            }
            assert!(r.is_err() || r.unwrap() != b"some reasonably long input to compress here");
        }
    }

    #[test]
    fn corrupt_body_is_detected_or_differs() {
        let data = b"the mesh of a spatial persona consists of 78,030 triangles".repeat(10);
        let mut c = compress(&data);
        let mid = c.len() / 2;
        c[mid] ^= 0xFF;
        match decompress(&c) {
            Err(_) => {}
            Ok(d) => assert_ne!(d, data),
        }
    }
}
