//! LEB128 varints and zigzag signed mapping.
//!
//! Used for codec headers (lengths, frequency tables) and for the
//! delta-coded keypoint/mesh residuals, where small magnitudes dominate.

/// Append `value` as a LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, returning `(value, bytes_consumed)`.
/// `None` on truncated or over-long (>10 byte) input.
pub fn read_u64(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &b) in bytes.iter().enumerate().take(10) {
        let payload = (b & 0x7F) as u64;
        if i == 9 && b > 1 {
            return None; // would overflow 64 bits
        }
        value |= payload << (7 * i);
        if b & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

/// Zigzag-map a signed value to unsigned (small magnitudes → small codes).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a signed value as zigzag varint.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag(value));
}

/// Read a zigzag varint, returning `(value, bytes_consumed)`.
pub fn read_i64(bytes: &[u8]) -> Option<(i64, usize)> {
    read_u64(bytes).map(|(v, n)| (unzigzag(v), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (got, n) = read_u64(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_is_none() {
        assert!(read_u64(&[0x80]).is_none());
        assert!(read_u64(&[]).is_none());
    }

    #[test]
    fn overlong_input_is_none() {
        // Eleven continuation bytes can never be valid.
        assert!(read_u64(&[0xFF; 11]).is_none());
    }

    #[test]
    fn zigzag_maps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(2), 4);
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn i64_varint_round_trips() {
        for v in [0i64, -64, 63, -8192, 1_000_000, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let (got, n) = read_i64(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }
}
