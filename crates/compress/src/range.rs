//! Adaptive binary range coder (LZMA-style, carry-correct).
//!
//! The coder works on binary decisions, each guided by an adaptive 11-bit
//! probability model ([`BitModel`]). Composite symbols (bytes, lengths) are
//! coded through bit trees. This is the same construction LZMA uses, which
//! is exactly what the paper ran over its keypoint traces.

use visionsim_core::SimError;

/// Number of probability bits (LZMA convention).
const PROB_BITS: u32 = 11;
/// Initial probability = 0.5.
const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
/// Adaptation shift: higher = slower adaptation.
const MOVE_BITS: u32 = 5;
/// Renormalization threshold.
const TOP: u32 = 1 << 24;

/// An adaptive probability estimate for one binary context.
#[derive(Clone, Copy, Debug)]
pub struct BitModel(u16);

impl Default for BitModel {
    fn default() -> Self {
        BitModel(PROB_INIT)
    }
}

impl BitModel {
    /// A fresh model at p = 0.5.
    pub fn new() -> Self {
        Self::default()
    }

    fn update(&mut self, bit: bool) {
        if bit {
            self.0 -= self.0 >> MOVE_BITS;
        } else {
            self.0 += ((1 << PROB_BITS) - self.0) >> MOVE_BITS;
        }
    }
}

/// Range encoder producing a byte stream.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encode one bit under `model`.
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: bool) {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        if !bit {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode `count` bits of `value` (MSB-first) at fixed probability 1/2.
    pub fn encode_direct(&mut self, value: u32, count: u32) {
        for i in (0..count).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit == 1 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Encode `value` through a bit tree of `depth` levels. `models` must
    /// hold `1 << depth` entries.
    pub fn encode_tree(&mut self, models: &mut [BitModel], depth: u32, value: u32) {
        debug_assert!(models.len() >= (1usize << depth));
        let mut m: usize = 1;
        for i in (0..depth).rev() {
            let bit = (value >> i) & 1 == 1;
            self.encode_bit(&mut models[m], bit);
            m = (m << 1) | bit as usize;
        }
    }

    /// Flush and return the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder over a byte stream.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    input: &'a [u8],
    pos: usize,
    overrun: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Initialize over encoder output. Fails if the stream is too short to
    /// contain the 5-byte preamble.
    pub fn new(input: &'a [u8]) -> Result<Self, SimError> {
        if input.len() < 5 {
            return Err(SimError::Truncated {
                what: "range coder preamble",
            });
        }
        let mut code = 0u32;
        // First byte is always 0 (the initial cache); skip it.
        for &b in &input[1..5] {
            code = (code << 8) | b as u32;
        }
        Ok(RangeDecoder {
            code,
            range: u32::MAX,
            input,
            pos: 5,
            overrun: 0,
        })
    }

    fn next_byte(&mut self) -> u8 {
        let b = match self.input.get(self.pos) {
            Some(&b) => b,
            None => {
                self.overrun += 1;
                0
            }
        };
        self.pos += 1;
        b
    }

    /// How many bytes past the end of input have been (virtually) read.
    /// The encoder's flush emits five trailing bytes, so a small overrun is
    /// normal at stream end; a growing overrun means the caller is decoding
    /// past a truncated stream.
    pub fn overrun(&self) -> usize {
        self.overrun
    }

    /// Decode one bit under `model`.
    pub fn decode_bit(&mut self, model: &mut BitModel) -> bool {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        let bit = if self.code < bound {
            self.range = bound;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            true
        };
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bit
    }

    /// Decode `count` fixed-probability bits (MSB-first).
    pub fn decode_direct(&mut self, count: u32) -> u32 {
        let mut value = 0u32;
        for _ in 0..count {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | self.next_byte() as u32;
            }
        }
        value
    }

    /// Decode a value from a bit tree of `depth` levels.
    pub fn decode_tree(&mut self, models: &mut [BitModel], depth: u32) -> u32 {
        debug_assert!(models.len() >= (1usize << depth));
        let mut m: usize = 1;
        for _ in 0..depth {
            let bit = self.decode_bit(&mut models[m]);
            m = (m << 1) | bit as usize;
        }
        m as u32 - (1 << depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_model_bit_stream_round_trips() {
        let bits: Vec<bool> = (0..2_000).map(|i| (i * 7 + i / 13) % 3 == 0).collect();
        let mut enc = RangeEncoder::new();
        let mut model = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut model, b);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut model = BitModel::new();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut model), b);
        }
    }

    #[test]
    fn skewed_streams_compress() {
        // 99% zeros: adaptive model should get well under 1 bit/bit.
        let n = 10_000;
        let bits: Vec<bool> = (0..n).map(|i| i % 100 == 0).collect();
        let mut enc = RangeEncoder::new();
        let mut model = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut model, b);
        }
        let bytes = enc.finish();
        assert!(
            bytes.len() < n / 8 / 4,
            "expected >4x compression, got {} bytes for {} bits",
            bytes.len(),
            n
        );
    }

    #[test]
    fn direct_bits_round_trip() {
        let values = [(0u32, 1u32), (1, 1), (0xABC, 12), (u32::MAX, 32), (5, 8)];
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v);
        }
    }

    #[test]
    fn bit_tree_round_trips_bytes() {
        let data: Vec<u8> = (0..=255u8).chain((0..=255).rev()).collect();
        let mut enc = RangeEncoder::new();
        let mut tree = vec![BitModel::new(); 256];
        for &b in &data {
            enc.encode_tree(&mut tree, 8, b as u32);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut tree = vec![BitModel::new(); 256];
        for &b in &data {
            assert_eq!(dec.decode_tree(&mut tree, 8), b as u32);
        }
    }

    #[test]
    fn mixed_stream_round_trips() {
        // Interleave model bits, direct bits, and tree symbols.
        let mut enc = RangeEncoder::new();
        let mut model = BitModel::new();
        let mut tree = vec![BitModel::new(); 32];
        for i in 0..500u32 {
            enc.encode_bit(&mut model, i % 3 == 0);
            enc.encode_direct(i % 16, 4);
            enc.encode_tree(&mut tree, 5, i % 32);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut model = BitModel::new();
        let mut tree = vec![BitModel::new(); 32];
        for i in 0..500u32 {
            assert_eq!(dec.decode_bit(&mut model), i % 3 == 0);
            assert_eq!(dec.decode_direct(4), i % 16);
            assert_eq!(dec.decode_tree(&mut tree, 5), i % 32);
        }
    }

    #[test]
    fn short_input_rejected() {
        assert!(matches!(
            RangeDecoder::new(&[1, 2, 3]),
            Err(SimError::Truncated { .. })
        ));
    }
}
