//! Property-based tests: every codec in the crate must round-trip
//! arbitrary inputs bit-exactly, and decoders must never panic on
//! arbitrary (malformed) inputs.

use proptest::prelude::*;
use visionsim_compress::bitio::{BitReader, BitWriter};
use visionsim_compress::lz77;
use visionsim_compress::lzma_like::{compress, decompress};
use visionsim_compress::range::{BitModel, RangeDecoder, RangeEncoder};
use visionsim_compress::rans;
use visionsim_compress::varint;

proptest! {
    #[test]
    fn varint_u64_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let (got, n) = varint::read_u64(&buf).expect("wrote it");
        prop_assert_eq!(got, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn varint_i64_round_trips(v in any::<i64>()) {
        let mut buf = Vec::new();
        varint::write_i64(&mut buf, v);
        let (got, n) = varint::read_i64(&buf).expect("wrote it");
        prop_assert_eq!(got, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn varint_read_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..20)) {
        let _ = varint::read_u64(&bytes);
        let _ = varint::read_i64(&bytes);
    }

    #[test]
    fn bitio_round_trips(values in prop::collection::vec((any::<u64>(), 1u8..=64), 0..100)) {
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.write_bits(masked, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.read_bits(n), Some(masked));
        }
    }

    #[test]
    fn lz77_round_trips(data in prop::collection::vec(any::<u8>(), 0..4_000)) {
        let tokens = lz77::tokenize(&data);
        prop_assert_eq!(lz77::detokenize(&tokens), data);
    }

    #[test]
    fn lz77_round_trips_repetitive(
        unit in prop::collection::vec(any::<u8>(), 1..20),
        reps in 1usize..200,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let tokens = lz77::tokenize(&data);
        prop_assert_eq!(lz77::detokenize(&tokens), data);
    }

    #[test]
    fn lzma_like_round_trips(data in prop::collection::vec(any::<u8>(), 0..3_000)) {
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed).expect("own output"), data);
    }

    #[test]
    fn lzma_like_decompress_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decompress(&garbage);
    }

    #[test]
    fn rans_round_trips(data in prop::collection::vec(any::<u8>(), 0..3_000)) {
        let packed = rans::encode(&data);
        prop_assert_eq!(rans::decode(&packed).expect("own output"), data);
    }

    #[test]
    fn rans_decode_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = rans::decode(&garbage);
    }

    #[test]
    fn range_coder_round_trips_bit_patterns(bits in prop::collection::vec(any::<bool>(), 0..2_000)) {
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut m, b);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).expect("5-byte preamble");
        let mut m = BitModel::new();
        for &b in &bits {
            prop_assert_eq!(dec.decode_bit(&mut m), b);
        }
    }

    /// Compressing already-compressed data must still round-trip (the
    /// classic double-compression stress).
    #[test]
    fn double_compression_round_trips(data in prop::collection::vec(any::<u8>(), 0..1_000)) {
        let once = compress(&data);
        let twice = compress(&once);
        let back_once = decompress(&twice).expect("own output");
        prop_assert_eq!(&back_once, &once);
        prop_assert_eq!(decompress(&back_once).expect("own output"), data);
    }
}
