//! Randomized property tests: every codec in the crate must round-trip
//! arbitrary inputs bit-exactly, and decoders must never panic on
//! arbitrary (malformed) inputs. Cases are deterministic SimRng draws.

use visionsim_compress::bitio::{BitReader, BitWriter};
use visionsim_compress::lz77;
use visionsim_compress::lzma_like::{compress, decompress};
use visionsim_compress::range::{BitModel, RangeDecoder, RangeEncoder};
use visionsim_compress::rans;
use visionsim_compress::varint;
use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;

const CASES: u64 = 96;

fn case_rng(label: &str, i: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(0xC0DE_C0DE, label, i))
}

fn bytes(rng: &mut SimRng, max_len: u64) -> Vec<u8> {
    let n = rng.uniform_u64(0, max_len) as usize;
    let mut v = vec![0u8; n];
    rng.fill_bytes(&mut v);
    v
}

/// Byte strings the matcher actually likes: runs, periods, and text-ish
/// symbols — random bytes alone never exercise long matches.
fn compressible_bytes(rng: &mut SimRng, max_len: u64) -> Vec<u8> {
    let n = rng.uniform_u64(0, max_len) as usize;
    let alphabet = rng.uniform_u64(2, 16) as u8;
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        if rng.chance(0.3) && !v.is_empty() {
            // Copy a chunk from earlier (plants real matches).
            let start = rng.index(v.len());
            let len = (rng.uniform_u64(1, 40) as usize).min(v.len() - start).min(n - v.len());
            for k in 0..len {
                let b = v[start + k];
                v.push(b);
            }
        } else {
            v.push(rng.uniform_u64(0, alphabet as u64 - 1) as u8);
        }
    }
    v
}

#[test]
fn varint_u64_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("varint_u64", i);
        for _ in 0..32 {
            let v = rng.next_u64() >> rng.uniform_u64(0, 63);
            let mut buf = Vec::new();
            varint::write_u64(&mut buf, v);
            let (got, n) = varint::read_u64(&buf).expect("wrote it");
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }
}

#[test]
fn varint_i64_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("varint_i64", i);
        for _ in 0..32 {
            let v = (rng.next_u64() >> rng.uniform_u64(0, 63)) as i64
                * if rng.chance(0.5) { -1 } else { 1 };
            let mut buf = Vec::new();
            varint::write_i64(&mut buf, v);
            let (got, n) = varint::read_i64(&buf).expect("wrote it");
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }
}

#[test]
fn varint_read_never_panics() {
    for i in 0..CASES {
        let mut rng = case_rng("varint_garbage", i);
        let garbage = bytes(&mut rng, 20);
        let _ = varint::read_u64(&garbage);
        let _ = varint::read_i64(&garbage);
    }
}

#[test]
fn bitio_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("bitio", i);
        let count = rng.uniform_u64(0, 99) as usize;
        let values: Vec<(u64, u8)> = (0..count)
            .map(|_| (rng.next_u64(), rng.uniform_u64(1, 64) as u8))
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.write_bits(masked, n);
        }
        let encoded = w.into_bytes();
        let mut r = BitReader::new(&encoded);
        for &(v, n) in &values {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            assert_eq!(r.read_bits(n), Some(masked));
        }
    }
}

#[test]
fn lz77_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("lz77", i);
        let data = if i % 2 == 0 {
            bytes(&mut rng, 4_000)
        } else {
            compressible_bytes(&mut rng, 4_000)
        };
        let tokens = lz77::tokenize(&data);
        assert_eq!(lz77::detokenize(&tokens).expect("own tokens"), data);
    }
}

#[test]
fn lz77_round_trips_repetitive() {
    for i in 0..CASES {
        let mut rng = case_rng("lz77_repetitive", i);
        let unit = {
            let n = rng.uniform_u64(1, 19) as usize;
            let mut u = vec![0u8; n];
            rng.fill_bytes(&mut u);
            u
        };
        let reps = rng.uniform_u64(1, 199) as usize;
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let tokens = lz77::tokenize(&data);
        assert_eq!(lz77::detokenize(&tokens).expect("own tokens"), data);
    }
}

#[test]
fn lzma_like_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("lzma_like", i);
        let data = if i % 2 == 0 {
            bytes(&mut rng, 3_000)
        } else {
            compressible_bytes(&mut rng, 3_000)
        };
        let packed = compress(&data);
        assert_eq!(decompress(&packed).expect("own output"), data);
    }
}

#[test]
fn lzma_like_decompress_never_panics() {
    for i in 0..CASES {
        let mut rng = case_rng("lzma_garbage", i);
        let garbage = bytes(&mut rng, 300);
        let _ = decompress(&garbage);
    }
}

#[test]
fn rans_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("rans", i);
        let data = if i % 2 == 0 {
            bytes(&mut rng, 3_000)
        } else {
            compressible_bytes(&mut rng, 3_000)
        };
        let packed = rans::encode(&data);
        assert_eq!(rans::decode(&packed).expect("own output"), data);
    }
}

#[test]
fn rans_decode_never_panics() {
    for i in 0..CASES {
        let mut rng = case_rng("rans_garbage", i);
        let garbage = bytes(&mut rng, 300);
        let _ = rans::decode(&garbage);
    }
}

#[test]
fn range_coder_round_trips_bit_patterns() {
    for i in 0..CASES {
        let mut rng = case_rng("range_coder", i);
        let n = rng.uniform_u64(0, 2_000) as usize;
        // Biased bit streams exercise the adaptive model harder than fair ones.
        let p = rng.uniform();
        let pattern: Vec<bool> = (0..n).map(|_| rng.chance(p)).collect();
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for &b in &pattern {
            enc.encode_bit(&mut m, b);
        }
        let encoded = enc.finish();
        let mut dec = RangeDecoder::new(&encoded).expect("5-byte preamble");
        let mut m = BitModel::new();
        for &b in &pattern {
            assert_eq!(dec.decode_bit(&mut m), b);
        }
    }
}

/// Compressing already-compressed data must still round-trip (the
/// classic double-compression stress).
#[test]
fn double_compression_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("double_compress", i);
        let data = compressible_bytes(&mut rng, 1_000);
        let once = compress(&data);
        let twice = compress(&once);
        let back_once = decompress(&twice).expect("own output");
        assert_eq!(&back_once, &once);
        assert_eq!(decompress(&back_once).expect("own output"), data);
    }
}
