//! Decoder hostility suite: decoders are fed systematically damaged
//! streams — truncated at every byte, bit-flipped at random positions, and
//! headers lying about the decoded length — and must return `Err` (or a
//! clean wrong answer where the format cannot detect the damage), never
//! panic, and never allocate anywhere near a lying header's claim.

use visionsim_compress::lzma_like::{compress, decompress, MAX_DECODED_LEN};
use visionsim_compress::rans;
use visionsim_compress::varint;
use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_core::SimError;

const CASES: u64 = 48;

fn case_rng(label: &str, i: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(0xBAD_F00D, label, i))
}

fn sample_payload(rng: &mut SimRng) -> Vec<u8> {
    // Mix of compressible structure and noise, like a keypoint trace.
    let n = rng.uniform_u64(16, 800) as usize;
    (0..n)
        .map(|k| {
            if rng.chance(0.7) {
                (k % 23) as u8
            } else {
                rng.uniform_u64(0, 255) as u8
            }
        })
        .collect()
}

#[test]
fn truncation_at_every_cut_never_panics() {
    for i in 0..CASES {
        let mut rng = case_rng("truncate", i);
        let payload = sample_payload(&mut rng);
        for stream in [rans::encode(&payload), compress(&payload)] {
            for cut in 0..stream.len() {
                // `Err` is the common outcome; a short prefix that decodes
                // "successfully" to the wrong bytes is tolerated only for
                // cuts inside the trailing flush padding. Panic never is.
                let _ = rans::decode(&stream[..cut]);
                let _ = decompress(&stream[..cut]);
            }
        }
    }
}

#[test]
fn truncation_that_removes_body_bytes_errors() {
    for i in 0..CASES {
        let mut rng = case_rng("truncate_hard", i);
        let payload = sample_payload(&mut rng);
        let r = rans::encode(&payload);
        // Cut deep enough that real coded symbols are missing (the final
        // 5-ish bytes are flush padding a decoder can survive).
        assert!(
            rans::decode(&r[..r.len() / 2]).is_err(),
            "half a rans stream decoded cleanly (case {i})"
        );
        let c = compress(&payload);
        match decompress(&c[..c.len() / 2]) {
            Err(_) => {}
            Ok(d) => assert_ne!(d, payload, "half an lzma stream round-tripped (case {i})"),
        }
    }
}

#[test]
fn bit_flips_error_or_differ_but_never_panic() {
    for i in 0..CASES {
        let mut rng = case_rng("bitflip", i);
        let payload = sample_payload(&mut rng);
        let r = rans::encode(&payload);
        let c = compress(&payload);
        for _ in 0..16 {
            let mut damaged = r.clone();
            let pos = rng.index(damaged.len());
            damaged[pos] ^= 1 << rng.uniform_u64(0, 7);
            match rans::decode(&damaged) {
                Err(_) => {}
                Ok(d) => assert!(
                    d != payload || damaged == r,
                    "flipped rans byte {pos} went unnoticed (case {i})"
                ),
            }
            let mut damaged = c.clone();
            let pos = rng.index(damaged.len());
            damaged[pos] ^= 1 << rng.uniform_u64(0, 7);
            let _ = decompress(&damaged); // Err or wrong bytes; must not panic.
        }
    }
}

#[test]
fn length_lying_headers_are_capped_not_allocated() {
    // Headers claiming absurd decoded lengths must be rejected up front —
    // a `Vec::with_capacity(claim)` here would be a memory bomb.
    for claim in [
        MAX_DECODED_LEN as u64 + 1,
        u64::MAX / 2,
        u64::MAX,
    ] {
        let mut lying = Vec::new();
        varint::write_u64(&mut lying, claim);
        lying.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            rans::decode(&lying),
            Err(SimError::LimitExceeded { .. } | SimError::Corrupt { .. })
        ));
        assert!(matches!(
            decompress(&lying),
            Err(SimError::LimitExceeded { .. } | SimError::Corrupt { .. })
        ));
    }
}

#[test]
fn length_inflated_within_cap_errors_cleanly() {
    // A subtler lie: keep a valid body but inflate the claimed length a
    // little, so the decoder runs out of real symbols mid-stream.
    for i in 0..CASES {
        let mut rng = case_rng("inflate", i);
        let payload = sample_payload(&mut rng);
        let honest = compress(&payload);
        let (orig, hdr) = varint::read_u64(&honest).expect("own header");
        let mut lying = Vec::new();
        varint::write_u64(&mut lying, orig + 1 + rng.uniform_u64(0, 1000));
        lying.extend_from_slice(&honest[hdr..]);
        match decompress(&lying) {
            Err(_) => {}
            Ok(d) => assert_ne!(d, payload, "inflated claim round-tripped (case {i})"),
        }
    }
}

#[test]
fn pure_garbage_never_panics() {
    for i in 0..CASES {
        let mut rng = case_rng("garbage", i);
        let n = rng.uniform_u64(0, 2_000) as usize;
        let mut garbage = vec![0u8; n];
        rng.fill_bytes(&mut garbage);
        let _ = rans::decode(&garbage);
        let _ = decompress(&garbage);
    }
}
