//! Token-bucket byte conservation under chaos.
//!
//! Property: for every shaped link, at every observation point, the
//! shaper's lifetime ledger ties out exactly against the link counters:
//!
//! ```text
//! admitted + queue_dropped_bytes      == offered_bytes
//! admitted                            == bytes + netem_dropped_bytes
//! ```
//!
//! (every byte offered was admitted or dropped at a queue; every admitted
//! byte was accepted onto the wire or dropped by impairments), together
//! with the sanitizer's `LinkStats::conserved` identity — so bytes
//! admitted == bytes delivered + bytes dropped + bytes still in flight or
//! queued, at the end as at every step. Replayed across 16 chaos seeds in
//! both drain modes so the batched datapath cannot leak or double-count a
//! byte the scalar reference accounts for.

use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};
use visionsim_geo::coords::GeoPoint;
use visionsim_net::link::LinkConfig;
use visionsim_net::network::{DrainMode, Network, NodeId};
use visionsim_net::packet::PortPair;
use visionsim_net::shaper::{QueueLimit, ShaperConfig};
use visionsim_net::LinkId;

const SEEDS: u64 = 16;

fn check_links(net: &mut Network, now: SimTime, links: &[LinkId], seed: u64, mode: DrainMode) {
    for &lid in links {
        let s = net.link_stats(lid);
        assert!(
            s.conserved(),
            "seed {seed} {mode:?}: link {lid:?} violates conservation: {s:?}"
        );
        let (admitted, dropped, queued, limit) = {
            let sh = net.shaper_mut(lid).expect("link is shaped");
            let queued = sh.queued_bytes(now);
            (sh.admitted_bytes, sh.dropped_bytes, queued, sh.limit_bytes())
        };
        // Serializer-level queue drops never reach the shaper; everything
        // else was admitted or dropped by the shaper's finite queue.
        assert_eq!(
            admitted + s.queue_dropped_bytes,
            s.offered_bytes,
            "seed {seed} {mode:?}: link {lid:?} offered-side ledger broke \
             (admitted={admitted} dropped={dropped} stats={s:?})"
        );
        // Every admitted byte went onto the wire or died in netem.
        assert_eq!(
            admitted,
            s.bytes + s.netem_dropped_bytes,
            "seed {seed} {mode:?}: link {lid:?} admitted-side ledger broke \
             (admitted={admitted} stats={s:?})"
        );
        assert!(
            queued <= limit,
            "seed {seed} {mode:?}: link {lid:?} queue ({queued} B) exceeds its bound ({limit} B)"
        );
    }
}

/// Drive one randomized overload scenario, checking conservation at every
/// step and at the end. Returns the shaped uplink's (admitted, dropped)
/// byte totals for cross-mode comparison.
fn run_scenario(seed: u64, mode: DrainMode) -> (u64, u64) {
    let mut shape = SimRng::seed_from_u64(derive_seed(0xC0A5E, "shaper_conservation", seed));
    let mut net = Network::new(seed);
    net.set_drain_mode(mode);

    let src = net.add_node("src", "t", GeoPoint::new(37.77, -122.42));
    let ap = net.add_node("ap", "t", GeoPoint::new(37.77, -122.41));
    let dsts: Vec<NodeId> = (0..3)
        .map(|k| net.add_node(&format!("d{k}"), "t", GeoPoint::new(40.0, -80.0 + k as f64)))
        .collect();
    net.add_duplex(src, ap, LinkConfig::wifi_access());
    for &d in &dsts {
        net.add_duplex(ap, d, LinkConfig::core(SimDuration::from_millis(5)));
    }

    // Shape the src→AP uplink tight enough that the offered load
    // overflows its finite queue, plus a random subset of AP→dst links.
    let rate = DataRate::from_kbps(100 + shape.uniform_u64(0, 400));
    let queue = match shape.uniform_u64(0, 2) {
        0 => QueueLimit::Auto,
        1 => QueueLimit::Bytes(ByteSize::from_kb(2 + shape.uniform_u64(0, 14))),
        _ => QueueLimit::Packets(2 + shape.uniform_u64(0, 14) as u32),
    };
    let shaped = LinkId(0);
    net.set_shaper(shaped, Some(ShaperConfig::with_queue(rate, queue)));
    let mut shaped_links = vec![shaped];
    for lid in 2..(2 + 2 * dsts.len()) {
        if shape.uniform_u64(0, 1) == 1 {
            let r = DataRate::from_kbps(300 + shape.uniform_u64(0, 2_000));
            net.set_shaper(LinkId(lid), Some(ShaperConfig::new(r)));
            shaped_links.push(LinkId(lid));
        }
    }
    // Random loss on one core link: netem drops must stay distinguishable
    // from queue drops in the identities.
    net.netem_mut(LinkId(3)).loss = 0.05;

    // Offered load: bursty, far above the shaped rate, for 4 s.
    let mut now = SimTime::ZERO;
    for step in 0..80u64 {
        let burst = 1 + shape.uniform_u64(0, 10);
        for k in 0..burst {
            let dst = dsts[(step + k) as usize % dsts.len()];
            net.send(
                src,
                dst,
                PortPair::new(5_000, 6_000),
                vec![(step + k) as u8; 200 + (k as usize % 5) * 250],
            );
        }
        now += SimDuration::from_millis(50);
        net.run_until(now);
        for &d in &dsts {
            net.drain_delivered(d).count();
        }
        check_links(&mut net, now, &shaped_links, seed, mode);
    }
    // Let everything queued and in flight land, then re-check: with the
    // network idle, in-flight and queued bytes are zero and the ledger
    // reduces to admitted == delivered + dropped exactly.
    let end = SimTime::from_secs(60);
    net.run_until(end);
    check_links(&mut net, end, &shaped_links, seed, mode);
    let s = net.link_stats(shaped);
    assert_eq!(s.in_flight_bytes, 0, "seed {seed} {mode:?}: bytes stranded in flight");
    let (queued, admitted, dropped) = {
        let sh = net.shaper_mut(shaped).expect("uplink is shaped");
        (sh.queued_bytes(end), sh.admitted_bytes, sh.dropped_bytes)
    };
    assert_eq!(queued, 0, "seed {seed} {mode:?}: bytes stranded in the shaper queue");
    // The scenario is calibrated to overload: the property is vacuous if
    // nothing ever dropped.
    assert!(
        s.queue_drops > 0,
        "seed {seed} {mode:?}: shaped uplink never overflowed — scenario too gentle"
    );
    (admitted, dropped)
}

#[test]
fn token_bucket_conserves_bytes_across_chaos_seeds_scalar() {
    for seed in 0..SEEDS {
        run_scenario(seed, DrainMode::Scalar);
    }
}

#[test]
fn token_bucket_conserves_bytes_across_chaos_seeds_batched() {
    for seed in 0..SEEDS {
        run_scenario(seed, DrainMode::Batched);
    }
}

/// The two modes agree on the totals themselves, not just on the identity
/// holding per mode.
#[test]
fn both_modes_agree_on_admitted_and_dropped_totals() {
    for seed in 0..SEEDS {
        let scalar = run_scenario(seed, DrainMode::Scalar);
        let batched = run_scenario(seed, DrainMode::Batched);
        assert_eq!(
            scalar, batched,
            "seed {seed}: drain modes disagree on shaper byte totals"
        );
    }
}
