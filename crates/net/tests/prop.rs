//! Randomized property tests for the network: conservation, ordering, and
//! impairment invariants, driven by deterministic SimRng cases.

use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};
use visionsim_geo::coords::GeoPoint;
use visionsim_net::link::LinkConfig;
use visionsim_net::netem::{Netem, NetemVerdict, TokenBucket};
use visionsim_net::network::Network;
use visionsim_net::packet::PortPair;

const CASES: u64 = 48;

fn case_rng(label: &str, i: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(0x4E7_04E7, label, i))
}

/// Packet conservation: everything sent is either delivered or
/// counted as dropped — never duplicated, never lost silently.
#[test]
fn conservation_under_loss() {
    for i in 0..CASES {
        let mut rng = case_rng("conservation", i);
        let loss = rng.uniform();
        let count = rng.uniform_u64(1, 199) as usize;
        let seed = rng.next_u64();
        let mut net = Network::new(seed);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(10)));
        net.netem_mut(visionsim_net::link::LinkId(0)).loss = loss;
        let mut sent = 0u64;
        for k in 0..count {
            if net
                .send(a, b, PortPair::new(1, 2), vec![k as u8; 64])
                .is_some()
            {
                sent += 1;
            }
        }
        net.run_until(SimTime::from_secs(5));
        let delivered = net.poll_delivered(b).len() as u64;
        assert_eq!(delivered + net.total_dropped(), count as u64);
        assert_eq!(delivered, sent);
    }
}

/// Per-flow FIFO: packets between one pair arrive in send order on a
/// fixed-delay path.
#[test]
fn fifo_per_path() {
    for i in 0..CASES {
        let mut rng = case_rng("fifo", i);
        let count = rng.uniform_u64(2, 99) as usize;
        let seed = rng.next_u64();
        let mut net = Network::new(seed);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        let mut cfg = LinkConfig::core(SimDuration::from_millis(5));
        cfg.rate = Some(DataRate::from_mbps(100));
        cfg.queue_limit = ByteSize::from_mb(64);
        net.add_link(a, b, cfg);
        for k in 0..count {
            net.send(a, b, PortPair::new(1, 2), (k as u32).to_be_bytes().to_vec());
        }
        net.run_until(SimTime::from_secs(10));
        let got: Vec<u32> = net
            .poll_delivered(b)
            .iter()
            .map(|d| u32::from_be_bytes(d.packet.payload[..4].try_into().unwrap()))
            .collect();
        assert_eq!(got, (0..count as u32).collect::<Vec<_>>());
    }
}

/// Token-bucket conservation: over a long run, delivered volume never
/// exceeds rate × time + burst.
#[test]
fn token_bucket_never_exceeds_budget() {
    for i in 0..CASES {
        let mut rng = case_rng("token_bucket", i);
        let rate_kbps = rng.uniform_u64(50, 4_999);
        let burst_kb = rng.uniform_u64(1, 63);
        let pkt_bytes = rng.uniform_u64(64, 1_499);
        let spacing_us = rng.uniform_u64(100, 19_999);
        let count = rng.uniform_u64(1, 499) as usize;
        let rate = DataRate::from_kbps(rate_kbps);
        let mut netem = Netem {
            shaper: Some(TokenBucket::new(rate, ByteSize::from_kb(burst_kb))),
            ..Netem::default()
        };
        let mut apply_rng = SimRng::seed_from_u64(1);
        let size = ByteSize::from_bytes(pkt_bytes);
        let mut delivered_bytes = 0u64;
        let mut t = SimTime::ZERO;
        let mut last_deliver_at = SimTime::ZERO;
        for _ in 0..count {
            match netem.apply(t, size, &mut apply_rng) {
                NetemVerdict::Deliver { delay, .. } => {
                    delivered_bytes += size.as_bytes();
                    last_deliver_at = last_deliver_at.max(t + delay);
                }
                NetemVerdict::Drop => {}
                NetemVerdict::Duplicate { .. } => unreachable!("duplication not configured"),
            }
            t += SimDuration::from_micros(spacing_us);
        }
        // Budget up to the last delivery instant.
        let horizon_s = last_deliver_at.as_secs_f64().max(1e-9);
        let budget = rate.as_bps() as f64 / 8.0 * horizon_s
            + ByteSize::from_kb(burst_kb).as_bytes() as f64
            + pkt_bytes as f64; // in-flight rounding
        assert!(
            delivered_bytes as f64 <= budget * 1.01,
            "delivered {delivered_bytes} budget {budget}"
        );
    }
}

/// Gilbert–Elliott long-run loss converges to the closed-form stationary
/// probability π_B·loss_bad + π_G·loss_good.
#[test]
fn gilbert_elliott_converges_to_stationary_loss() {
    use visionsim_net::fault::{GeConfig, GilbertElliott};
    for i in 0..CASES {
        let mut rng = case_rng("ge_stationary", i);
        let config = GeConfig {
            good_to_bad: 0.005 + rng.uniform() * 0.1,
            bad_to_good: 0.02 + rng.uniform() * 0.4,
            loss_good: rng.uniform() * 0.05,
            loss_bad: 0.3 + rng.uniform() * 0.7,
        };
        let expected = config.stationary_loss();
        let mut ge = GilbertElliott::new(config);
        let trials = 200_000u64;
        let drops = (0..trials).filter(|_| ge.sample_drop(&mut rng)).count();
        let observed = drops as f64 / trials as f64;
        assert!(
            (observed - expected).abs() < 0.02,
            "case {i}: observed {observed:.4} vs stationary {expected:.4}"
        );
    }
}

/// Reorder and duplication impairments never lose or invent payload
/// bytes: the delivered multiset of payloads is exactly the sent set,
/// with each packet appearing once or (if duplicated) twice.
#[test]
fn reorder_and_duplicate_conserve_payload_bytes() {
    for i in 0..CASES {
        let mut rng = case_rng("reorder_dup", i);
        let reorder = rng.uniform() * 0.5;
        let duplicate = rng.uniform() * 0.5;
        let count = rng.uniform_u64(10, 199) as usize;
        let seed = rng.next_u64();
        let mut net = Network::new(seed);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(10)));
        {
            let netem = net.netem_mut(visionsim_net::link::LinkId(0));
            netem.reorder = reorder;
            netem.reorder_extra = SimDuration::from_millis(30);
            netem.duplicate = duplicate;
        }
        for k in 0..count {
            let payload = (k as u32).to_be_bytes().to_vec();
            net.send(a, b, PortPair::new(1, 2), payload).unwrap();
        }
        net.run_until(SimTime::from_secs(5));
        let mut copies = vec![0u32; count];
        for d in net.poll_delivered(b) {
            let k = u32::from_be_bytes(d.packet.payload[..4].try_into().unwrap()) as usize;
            assert!(k < count, "invented payload {k}");
            copies[k] += 1;
        }
        for (k, c) in copies.iter().enumerate() {
            assert!(
                (1..=2).contains(c),
                "case {i}: packet {k} delivered {c} times"
            );
        }
        let extras: u32 = copies.iter().map(|c| c - 1).sum();
        assert_eq!(
            extras as u64,
            net.link_stats(visionsim_net::link::LinkId(0)).duplicated,
            "duplicate counter disagrees with extra deliveries"
        );
        assert_eq!(net.total_dropped(), 0, "reorder/dup must not drop");
    }
}

/// Shared payloads stay intact under duplication and corruption: every
/// per-link byte-conservation identity holds with the sanitizer watching,
/// and every delivered copy — original, duplicate, or corrupted — still
/// references the allocation the sender interned (the corruption
/// impairment flips the packet's inline flag, never the shared bytes).
#[test]
fn shared_payloads_conserve_bytes_under_duplication_and_corruption() {
    use std::sync::Arc;
    use visionsim_core::sanitizer;

    let _guard = visionsim_core::par::override_guard();
    sanitizer::force(Some(true));
    sanitizer::reset();
    for i in 0..CASES {
        let mut rng = case_rng("shared_dup_corrupt", i);
        let duplicate = rng.uniform() * 0.5;
        let corrupt = rng.uniform() * 0.5;
        let hops = rng.uniform_u64(1, 4) as usize;
        let count = rng.uniform_u64(10, 99) as usize;
        let seed = rng.next_u64();
        let mut net = Network::new(seed);
        let nodes: Vec<_> = (0..=hops)
            .map(|h| net.add_node(&format!("n{h}"), "t", GeoPoint::new(37.0, -122.0 + h as f64)))
            .collect();
        for w in nodes.windows(2) {
            net.add_duplex(w[0], w[1], LinkConfig::core(SimDuration::from_millis(5)));
        }
        for lid in 0..2 * hops {
            let netem = net.netem_mut(visionsim_net::link::LinkId(lid));
            netem.duplicate = duplicate;
            netem.corrupt = corrupt;
        }
        let payload: Arc<[u8]> = (0..64).map(|b| (b ^ i) as u8).collect::<Vec<u8>>().into();
        for _ in 0..count {
            net.send(nodes[0], nodes[hops], PortPair::new(1, 2), payload.clone())
                .unwrap();
        }
        net.run_until(SimTime::from_secs(5));
        let delivered = net.poll_delivered(nodes[hops]);
        assert!(delivered.len() >= count, "duplication must not lose packets");
        for d in &delivered {
            assert!(
                Arc::ptr_eq(&d.packet.payload, &payload),
                "case {i}: a delivered copy re-allocated the payload"
            );
            assert_eq!(&d.packet.payload[..], &payload[..]);
        }
        for lid in 0..2 * hops {
            let s = net.link_stats(visionsim_net::link::LinkId(lid));
            assert!(s.conserved(), "case {i} link {lid}: {s:?}");
            assert_eq!(s.in_flight, 0, "case {i} link {lid} never drained");
        }
        let violations = sanitizer::take();
        assert!(
            violations.is_empty(),
            "case {i}: sanitizer reported {violations:?}"
        );
    }
    sanitizer::force(None);
    sanitizer::reset();
}

/// FaultPlan replay is pure data: the due-event stream is identical no
/// matter how work is distributed across worker threads.
#[test]
fn fault_plan_replay_identical_across_threads() {
    use visionsim_core::par::{par_map, set_threads};
    use visionsim_net::fault::FaultPlan;

    fn replay_digest(idx: u64) -> String {
        let mut plan = FaultPlan::merged(vec![
            FaultPlan::flap(
                SimTime::from_millis(1_000 + idx * 100),
                SimDuration::from_secs(2),
            ),
            FaultPlan::rate_cliff(
                SimTime::from_secs(3),
                DataRate::from_kbps(200 + idx),
                SimDuration::from_secs(2),
            ),
            FaultPlan::delay_spike(
                SimTime::from_millis(4_500),
                SimDuration::from_millis(300),
                SimDuration::from_secs(1),
            ),
        ]);
        let mut out = String::new();
        let mut now = SimTime::ZERO;
        while now <= SimTime::from_secs(12) {
            for ev in plan.due(now) {
                out.push_str(&format!("{:?}@{:?};", ev.kind, ev.at));
            }
            now += SimDuration::from_millis(100);
        }
        out
    }

    let idxs: Vec<u64> = (0..16).collect();
    // `set_threads` is process-global; hold the shared override guard so
    // concurrent tests in this binary cannot race the thread count.
    let _guard = visionsim_core::par::override_guard();
    set_threads(Some(1));
    let seq: Vec<String> = par_map(idxs.clone(), replay_digest);
    set_threads(Some(4));
    let par: Vec<String> = par_map(idxs, replay_digest);
    set_threads(None);
    assert_eq!(seq, par, "fault replay diverged across thread counts");
    assert!(seq.iter().all(|s| s.contains("LinkDown")));
}

/// Fixed netem delay shifts arrival exactly; never reorders a
/// fixed-delay path.
#[test]
fn extra_delay_is_exact() {
    for i in 0..CASES {
        let mut rng = case_rng("extra_delay", i);
        let delay_ms = rng.uniform_u64(0, 999);
        let seed = rng.next_u64();
        let mut net = Network::new(seed);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(20)));
        net.netem_mut(visionsim_net::link::LinkId(0)).extra_delay =
            SimDuration::from_millis(delay_ms);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 32]);
        net.run_until(SimTime::from_secs(5));
        let got = net.poll_delivered(b);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, SimTime::from_millis(20 + delay_ms));
    }
}
