//! Randomized property tests for the network: conservation, ordering, and
//! impairment invariants, driven by deterministic SimRng cases.

use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};
use visionsim_geo::coords::GeoPoint;
use visionsim_net::link::LinkConfig;
use visionsim_net::netem::{Netem, NetemVerdict, TokenBucket};
use visionsim_net::network::Network;
use visionsim_net::packet::PortPair;

const CASES: u64 = 48;

fn case_rng(label: &str, i: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(0x4E7_04E7, label, i))
}

/// Packet conservation: everything sent is either delivered or
/// counted as dropped — never duplicated, never lost silently.
#[test]
fn conservation_under_loss() {
    for i in 0..CASES {
        let mut rng = case_rng("conservation", i);
        let loss = rng.uniform();
        let count = rng.uniform_u64(1, 199) as usize;
        let seed = rng.next_u64();
        let mut net = Network::new(seed);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(10)));
        net.netem_mut(visionsim_net::link::LinkId(0)).loss = loss;
        let mut sent = 0u64;
        for k in 0..count {
            if net
                .send(a, b, PortPair::new(1, 2), vec![k as u8; 64])
                .is_some()
            {
                sent += 1;
            }
        }
        net.run_until(SimTime::from_secs(5));
        let delivered = net.poll_delivered(b).len() as u64;
        assert_eq!(delivered + net.total_dropped(), count as u64);
        assert_eq!(delivered, sent);
    }
}

/// Per-flow FIFO: packets between one pair arrive in send order on a
/// fixed-delay path.
#[test]
fn fifo_per_path() {
    for i in 0..CASES {
        let mut rng = case_rng("fifo", i);
        let count = rng.uniform_u64(2, 99) as usize;
        let seed = rng.next_u64();
        let mut net = Network::new(seed);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        let mut cfg = LinkConfig::core(SimDuration::from_millis(5));
        cfg.rate = Some(DataRate::from_mbps(100));
        cfg.queue_limit = ByteSize::from_mb(64);
        net.add_link(a, b, cfg);
        for k in 0..count {
            net.send(a, b, PortPair::new(1, 2), (k as u32).to_be_bytes().to_vec());
        }
        net.run_until(SimTime::from_secs(10));
        let got: Vec<u32> = net
            .poll_delivered(b)
            .iter()
            .map(|d| u32::from_be_bytes(d.packet.payload[..4].try_into().unwrap()))
            .collect();
        assert_eq!(got, (0..count as u32).collect::<Vec<_>>());
    }
}

/// Token-bucket conservation: over a long run, delivered volume never
/// exceeds rate × time + burst.
#[test]
fn token_bucket_never_exceeds_budget() {
    for i in 0..CASES {
        let mut rng = case_rng("token_bucket", i);
        let rate_kbps = rng.uniform_u64(50, 4_999);
        let burst_kb = rng.uniform_u64(1, 63);
        let pkt_bytes = rng.uniform_u64(64, 1_499);
        let spacing_us = rng.uniform_u64(100, 19_999);
        let count = rng.uniform_u64(1, 499) as usize;
        let rate = DataRate::from_kbps(rate_kbps);
        let mut netem = Netem {
            shaper: Some(TokenBucket::new(rate, ByteSize::from_kb(burst_kb))),
            ..Netem::default()
        };
        let mut apply_rng = SimRng::seed_from_u64(1);
        let size = ByteSize::from_bytes(pkt_bytes);
        let mut delivered_bytes = 0u64;
        let mut t = SimTime::ZERO;
        let mut last_deliver_at = SimTime::ZERO;
        for _ in 0..count {
            match netem.apply(t, size, &mut apply_rng) {
                NetemVerdict::Deliver { delay, .. } => {
                    delivered_bytes += size.as_bytes();
                    last_deliver_at = last_deliver_at.max(t + delay);
                }
                NetemVerdict::Drop => {}
            }
            t += SimDuration::from_micros(spacing_us);
        }
        // Budget up to the last delivery instant.
        let horizon_s = last_deliver_at.as_secs_f64().max(1e-9);
        let budget = rate.as_bps() as f64 / 8.0 * horizon_s
            + ByteSize::from_kb(burst_kb).as_bytes() as f64
            + pkt_bytes as f64; // in-flight rounding
        assert!(
            delivered_bytes as f64 <= budget * 1.01,
            "delivered {delivered_bytes} budget {budget}"
        );
    }
}

/// Fixed netem delay shifts arrival exactly; never reorders a
/// fixed-delay path.
#[test]
fn extra_delay_is_exact() {
    for i in 0..CASES {
        let mut rng = case_rng("extra_delay", i);
        let delay_ms = rng.uniform_u64(0, 999);
        let seed = rng.next_u64();
        let mut net = Network::new(seed);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(20)));
        net.netem_mut(visionsim_net::link::LinkId(0)).extra_delay =
            SimDuration::from_millis(delay_ms);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 32]);
        net.run_until(SimTime::from_secs(5));
        let got = net.poll_delivered(b);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, SimTime::from_millis(20 + delay_ms));
    }
}
