//! Scalar-vs-batched datapath equivalence.
//!
//! The batched drain loop (`DrainMode::Batched`) is a pure performance
//! transformation: tick-cohort draining, run-accumulated cohort events,
//! the netem batch kernel, and bulk slot retirement must be invisible in
//! every observable — delivery order, per-packet verdicts (drops,
//! corruption flags, duplication), per-link counters, tap captures, and
//! the impairment RNG's position in its stream. This test replays 32
//! randomized chaos scenarios (fault plans flipping links down, cliffing
//! rates, spiking delay, injecting Gilbert–Elliott bursts, reordering and
//! duplicating) through both loops and requires bit-identical digests.

use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};
use visionsim_geo::coords::GeoPoint;
use visionsim_net::fault::{apply_to_netem, FaultPlan, GeConfig};
use visionsim_net::link::{LinkConfig, LinkId};
use visionsim_net::netem::RateProfile;
use visionsim_net::shaper::{QueueLimit, ShaperConfig};
use visionsim_net::network::{DrainMode, Network, NodeId};
use visionsim_net::packet::PortPair;

const SEEDS: u64 = 32;

/// One chaos scenario, fully determined by `seed`, executed under the
/// given drain mode. Returns a digest of everything observable.
fn scenario_digest(seed: u64, mode: DrainMode) -> String {
    // Scenario shape comes from its own rng so both modes see identical
    // topology, traffic, and fault schedules.
    let mut shape = SimRng::seed_from_u64(derive_seed(0xBA7C4, "batch_equiv", seed));
    let mut net = Network::new(seed);
    net.set_drain_mode(mode);

    // Client → AP → core → SFU, SFU fanning out to subscribers.
    let client = net.add_node("client", "t", GeoPoint::new(37.77, -122.42));
    let ap = net.add_node("ap", "t", GeoPoint::new(37.77, -122.41));
    let sfu = net.add_node("sfu", "t", GeoPoint::new(40.71, -74.01));
    let subs: Vec<NodeId> = (0..4)
        .map(|s| net.add_node(&format!("sub{s}"), "t", GeoPoint::new(34.05, -118.24 + s as f64)))
        .collect();
    net.add_duplex(client, ap, LinkConfig::wifi_access());
    net.add_duplex(
        ap,
        sfu,
        LinkConfig::core(SimDuration::from_millis(1 + shape.uniform_u64(0, 20))),
    );
    for &s in &subs {
        net.add_duplex(
            sfu,
            s,
            LinkConfig::core(SimDuration::from_millis(1 + shape.uniform_u64(0, 30))),
        );
    }
    let n_links = 2 * (2 + subs.len());

    // Random static impairments on a few links, covering every batch-path
    // branch: independent loss, GE, jitter, reorder/duplicate/corrupt,
    // shaper, and a rate profile.
    for lid in 0..n_links {
        match shape.uniform_u64(0, 8) {
            0 => net.netem_mut(LinkId(lid)).loss = 0.02 + shape.uniform() * 0.2,
            1 => {
                let netem = net.netem_mut(LinkId(lid));
                netem.jitter = SimDuration::from_micros(shape.uniform_u64(10, 3_000));
                netem.corrupt = shape.uniform() * 0.1;
            }
            2 => {
                let netem = net.netem_mut(LinkId(lid));
                netem.reorder = shape.uniform() * 0.3;
                netem.reorder_extra = SimDuration::from_millis(shape.uniform_u64(1, 20));
                netem.duplicate = shape.uniform() * 0.2;
            }
            3 => {
                net.netem_mut(LinkId(lid)).profile = Some(RateProfile::new(vec![
                    (
                        SimDuration::from_millis(200 + shape.uniform_u64(0, 400)),
                        DataRate::from_mbps(4 + shape.uniform_u64(0, 20)),
                    ),
                    (
                        SimDuration::from_millis(50 + shape.uniform_u64(0, 200)),
                        DataRate::from_kbps(300 + shape.uniform_u64(0, 700)),
                    ),
                ]));
            }
            4 => {
                // Token-bucket link shaper with a finite FIFO queue: forces
                // every admission off the passthrough fast arms and
                // produces real queue drops in both drain modes.
                let rate = DataRate::from_kbps(400 + shape.uniform_u64(0, 3_600));
                let queue = match shape.uniform_u64(0, 2) {
                    0 => QueueLimit::Auto,
                    1 => QueueLimit::Bytes(ByteSize::from_kb(4 + shape.uniform_u64(0, 60))),
                    _ => QueueLimit::Packets(4 + shape.uniform_u64(0, 28) as u32),
                };
                net.set_shaper(LinkId(lid), Some(ShaperConfig::with_queue(rate, queue)));
            }
            _ => {}
        }
    }
    let tap = net.add_tap(ap);

    // A chaos fault plan targeting the AP→SFU link.
    let target = LinkId(2);
    let mut plan = FaultPlan::merged(vec![
        FaultPlan::flap(
            SimTime::from_millis(400 + shape.uniform_u64(0, 400)),
            SimDuration::from_millis(100 + shape.uniform_u64(0, 300)),
        ),
        FaultPlan::rate_cliff(
            SimTime::from_millis(900 + shape.uniform_u64(0, 300)),
            DataRate::from_kbps(400 + shape.uniform_u64(0, 600)),
            SimDuration::from_millis(300),
        ),
        FaultPlan::delay_spike(
            SimTime::from_millis(1_400 + shape.uniform_u64(0, 300)),
            SimDuration::from_millis(shape.uniform_u64(5, 100)),
            SimDuration::from_millis(200),
        ),
        FaultPlan::burst_loss(
            SimTime::from_millis(1_800 + shape.uniform_u64(0, 300)),
            GeConfig::wifi_bursts(),
            SimDuration::from_millis(400),
        ),
        FaultPlan::reorder_episode(
            SimTime::from_millis(2_300 + shape.uniform_u64(0, 200)),
            0.2,
            SimDuration::from_millis(10),
            SimDuration::from_millis(300),
        ),
        FaultPlan::duplicate_episode(
            SimTime::from_millis(2_700 + shape.uniform_u64(0, 200)),
            0.3,
            SimDuration::from_millis(300),
        ),
    ]);

    // Drive traffic in 50 ms steps for 3.5 s of virtual time, relaying
    // everything the SFU receives out to every subscriber (fan-out bursts
    // are what build deep same-link admission runs).
    let mut digest = String::new();
    let mut relay: Vec<visionsim_net::network::Delivered> = Vec::new();
    let mut now = SimTime::ZERO;
    for step in 0..70u64 {
        for ev in plan.due(now) {
            apply_to_netem(net.netem_mut(target), &ev.kind);
        }
        let burst = 1 + shape.uniform_u64(0, 12);
        for k in 0..burst {
            net.send(
                client,
                sfu,
                PortPair::new(5_000, 6_000),
                vec![(step + k) as u8; 64 + (k as usize % 3) * 300],
            );
        }
        now += SimDuration::from_millis(50);
        net.run_until(now);
        relay.clear();
        relay.extend(net.drain_delivered(sfu));
        for d in &relay {
            digest.push_str(&format!(
                "sfu:{}@{}c{};",
                d.packet.seq,
                d.at.as_nanos(),
                d.packet.corrupted as u8
            ));
            for &s in &subs {
                net.send(sfu, s, PortPair::new(6_000, 7_000), d.packet.payload.clone());
            }
        }
    }
    net.run_until(SimTime::from_secs(5));

    for (si, &s) in subs.iter().enumerate() {
        for d in net.drain_delivered(s) {
            digest.push_str(&format!(
                "s{si}:{}@{}c{};",
                d.packet.seq,
                d.at.as_nanos(),
                d.packet.corrupted as u8
            ));
        }
    }
    for lid in 0..n_links {
        digest.push_str(&format!("l{lid}:{:?};", net.link_stats(LinkId(lid))));
    }
    digest.push_str(&format!("dropped:{};", net.total_dropped()));
    digest.push_str(&format!("taps:{:?};", net.tap_records(tap)));
    digest.push_str(&format!("rng:{:016x};", net.rng_fingerprint()));
    digest
}

/// The tentpole invariant: for every seed, the batched loop's digest —
/// delivery order, verdicts, stats, taps, and RNG stream position — is
/// byte-identical to the scalar loop's.
#[test]
fn batched_datapath_is_observationally_identical_to_scalar() {
    for seed in 0..SEEDS {
        let scalar = scenario_digest(seed, DrainMode::Scalar);
        let batched = scenario_digest(seed, DrainMode::Batched);
        assert_eq!(
            scalar, batched,
            "seed {seed}: batched datapath diverged from the scalar reference"
        );
    }
}

/// Mode switching mid-run strands nothing: events queued by one loop are
/// drained correctly by the other.
#[test]
fn mid_run_mode_switch_drains_cleanly() {
    for seed in 0..8 {
        let mut net = Network::new(seed);
        net.set_drain_mode(DrainMode::Batched);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(10)));
        for k in 0..64 {
            net.send(a, b, PortPair::new(1, 2), vec![k as u8; 100]);
        }
        // Switch before anything drains: the open admission run must be
        // closed by the switch and the scalar loop must process cohorts.
        net.set_drain_mode(DrainMode::Scalar);
        net.run_until(SimTime::from_millis(5));
        for k in 0..64 {
            net.send(a, b, PortPair::new(1, 2), vec![k as u8; 100]);
        }
        net.set_drain_mode(DrainMode::Batched);
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.drain_delivered(b).count(), 128);
        assert_eq!(net.total_dropped(), 0);
        let s = net.link_stats(LinkId(0));
        assert!(s.conserved(), "{s:?}");
        assert_eq!(s.in_flight, 0);
    }
}

/// `send_batch` is observationally identical to a per-frame `send` loop:
/// same sequence numbers, delivery order, verdicts, stats, and RNG
/// stream position — in both drain modes, on both the passthrough fast
/// arm and the impaired fallback arm.
#[test]
fn send_batch_matches_per_frame_send() {
    use std::sync::Arc;
    let digest = |seed: u64, mode: DrainMode, batch: bool| -> String {
        let mut net = Network::new(seed);
        net.set_drain_mode(mode);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(39.0, -98.0));
        let c = net.add_node("c", "t", GeoPoint::new(40.71, -74.01));
        let d = net.add_node("d", "t", GeoPoint::new(34.05, -118.24));
        // a→b passthrough (fast arm), b→c impaired second hop, a→d
        // impaired first hop (fallback arm even in batched mode).
        net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(5)));
        net.add_duplex(b, c, LinkConfig::core(SimDuration::from_millis(7)));
        net.add_duplex(a, d, LinkConfig::core(SimDuration::from_millis(9)));
        {
            let netem = net.netem_mut(LinkId(2));
            netem.loss = 0.1;
            netem.duplicate = 0.1;
            netem.jitter = SimDuration::from_micros(800);
        }
        {
            let netem = net.netem_mut(LinkId(4));
            netem.loss = 0.15;
            netem.jitter = SimDuration::from_micros(500);
        }
        let mut shape = SimRng::seed_from_u64(derive_seed(0x5B47C, "send_batch", seed));
        for step in 0..40u64 {
            for &dst in &[b, c, d] {
                let burst = 1 + shape.uniform_u64(0, 6);
                let frames: Vec<(PortPair, Arc<[u8]>)> = (0..burst)
                    .map(|k| {
                        (
                            PortPair::new(1_000, 2_000 + k as u16),
                            Arc::from(vec![(step + k) as u8; 64 + (k as usize % 4) * 200]),
                        )
                    })
                    .collect();
                if batch {
                    net.send_batch(a, dst, frames);
                } else {
                    for (ports, payload) in frames {
                        net.send(a, dst, ports, payload);
                    }
                }
            }
            net.run_until(SimTime::from_millis((step + 1) * 25));
        }
        net.run_until(SimTime::from_secs(3));
        let mut out = String::new();
        for (ni, &n) in [b, c, d].iter().enumerate() {
            for dv in net.drain_delivered(n) {
                out.push_str(&format!(
                    "n{ni}:{}@{}c{};",
                    dv.packet.seq,
                    dv.at.as_nanos(),
                    dv.packet.corrupted as u8
                ));
            }
        }
        for lid in 0..6 {
            out.push_str(&format!("l{lid}:{:?};", net.link_stats(LinkId(lid))));
        }
        out.push_str(&format!("dropped:{};", net.total_dropped()));
        out.push_str(&format!("rng:{:016x};", net.rng_fingerprint()));
        out
    };
    for seed in 0..8 {
        let reference = digest(seed, DrainMode::Scalar, false);
        for (mode, batch) in [
            (DrainMode::Scalar, true),
            (DrainMode::Batched, false),
            (DrainMode::Batched, true),
        ] {
            assert_eq!(
                reference,
                digest(seed, mode, batch),
                "seed {seed}: {mode:?}/batch={batch} diverged from the scalar send loop"
            );
        }
    }
}

/// Passthrough fan-out (the bench shape) batches into real cohorts and
/// still conserves per-link bytes with zero drops.
#[test]
fn fanout_cohorts_conserve_and_deliver_everything() {
    let mut net = Network::new(7);
    net.set_drain_mode(DrainMode::Batched);
    let src = net.add_node("src", "t", GeoPoint::new(37.77, -122.42));
    let hub = net.add_node("hub", "t", GeoPoint::new(39.0, -98.0));
    let dsts: Vec<NodeId> = (0..8)
        .map(|k| net.add_node(&format!("d{k}"), "t", GeoPoint::new(40.0, -80.0 + k as f64)))
        .collect();
    net.add_duplex(src, hub, LinkConfig::core(SimDuration::from_millis(5)));
    for &d in &dsts {
        net.add_duplex(hub, d, LinkConfig::core(SimDuration::from_millis(7)));
    }
    for round in 0..50u64 {
        for &d in &dsts {
            for k in 0..16u64 {
                net.send(src, d, PortPair::new(1, 2), vec![(round + k) as u8; 200]);
            }
        }
        net.run_until(SimTime::from_millis((round + 1) * 20));
    }
    net.run_until(SimTime::from_secs(2));
    let total: usize = dsts
        .iter()
        .map(|&d| {
            let mut n = 0usize;
            for _ in net.drain_delivered(d) {
                n += 1;
            }
            n
        })
        .sum();
    assert_eq!(total, 50 * 8 * 16);
    assert_eq!(net.total_dropped(), 0);
}
