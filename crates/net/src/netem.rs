//! `tc netem`/`tbf`-style link impairments.
//!
//! The paper uses Linux `tc` twice: to inject 0–1000 ms of extra delay for
//! the display-latency experiment (§4.3) and to constrain uplink bandwidth
//! for the rate-adaptation experiment (also §4.3, the 700 kbps cliff).
//! [`Netem`] reproduces those knobs, plus the loss/corruption injection the
//! session guides' reference stack exposes for robustness testing.

use crate::fault::{DrawPlan, GilbertElliott};
use std::cell::Cell;
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};

/// How many uniform words the loss-only batch path generates per
/// [`SimRng::next_u64_chunk`] call — sized to keep the xoshiro state in
/// registers without spilling the output buffer out of L1.
const RNG_CHUNK: usize = 64;

/// Impairment configuration for one link direction.
#[derive(Clone, Debug, Default)]
pub struct Netem {
    /// Fixed extra one-way delay (the `tc netem delay` knob).
    pub extra_delay: SimDuration,
    /// Uniform jitter added on top of `extra_delay`: each packet gets
    /// `U[0, jitter]`.
    pub jitter: SimDuration,
    /// Independent per-packet drop probability in `[0, 1]`.
    pub loss: f64,
    /// Independent per-packet corruption probability in `[0, 1]`; corrupted
    /// packets are delivered but flagged.
    pub corrupt: f64,
    /// Optional token-bucket shaper (the `tc tbf` knob). Packets exceeding
    /// the bucket are delayed until tokens accrue.
    pub shaper: Option<TokenBucket>,
    /// Optional time-varying rate schedule driving the shaper (cellular /
    /// congested-WiFi trace playback). When set, the shaper's rate is
    /// updated from the profile before each packet; a shaper is created on
    /// first use if absent.
    pub profile: Option<RateProfile>,
    /// Link administratively/physically down: every packet dropped (the
    /// chaos engine's link-flap knob).
    pub down: bool,
    /// Optional Gilbert–Elliott bursty-loss channel, stepped per packet.
    /// Applied on top of (before) the independent `loss` probability.
    pub ge: Option<GilbertElliott>,
    /// Fraction of packets held back by `reorder_extra` (the `tc netem
    /// reorder` analogue: held packets arrive after later ones).
    pub reorder: f64,
    /// Extra delay applied to reordered packets.
    pub reorder_extra: SimDuration,
    /// Fraction of packets delivered twice (`tc netem duplicate`).
    pub duplicate: f64,
}

impl Netem {
    /// No impairment.
    pub fn none() -> Self {
        Netem::default()
    }

    /// Only a fixed extra delay (the display-latency experiment).
    pub fn with_delay(extra_delay: SimDuration) -> Self {
        Netem {
            extra_delay,
            ..Netem::default()
        }
    }

    /// Only a rate limit (the bandwidth-cliff experiment). Burst defaults
    /// to 32 KB, `tc tbf`'s common configuration for ~Mbps-class shaping.
    pub fn with_rate_limit(rate: DataRate) -> Self {
        Netem {
            shaper: Some(TokenBucket::new(rate, ByteSize::from_kb(32))),
            ..Netem::default()
        }
    }

    /// A time-varying rate limit following `profile` (trace playback).
    pub fn with_rate_profile(profile: RateProfile) -> Self {
        Netem {
            profile: Some(profile),
            ..Netem::default()
        }
    }

    /// True when no knob except `extra_delay` is active: the verdict is a
    /// constant `Deliver` and zero randomness is drawn. This is the common
    /// case on the forwarding fast path and the precondition for the
    /// constant-fill branch of [`Netem::apply_batch`].
    #[inline]
    pub fn is_transparent(&self) -> bool {
        !self.down
            && self.ge.is_none()
            && self.loss == 0.0
            && self.jitter.is_zero()
            && self.profile.is_none()
            && self.shaper.is_none()
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.duplicate == 0.0
    }

    /// Sample the impairment's verdict for one packet.
    pub fn apply(&mut self, now: SimTime, size: ByteSize, rng: &mut SimRng) -> NetemVerdict {
        // Fused transparent-config check: an unimpaired link takes one
        // predictable branch and draws no randomness. The fall-through
        // handles every knob in the same order as always, so RNG draw
        // sequence — and therefore artifact determinism — is unchanged.
        if self.is_transparent() {
            return NetemVerdict::Deliver {
                delay: self.extra_delay,
                corrupt: false,
            };
        }
        if self.down {
            return NetemVerdict::Drop;
        }
        self.apply_impaired(now, size, rng)
    }

    /// The knob-by-knob verdict for a non-transparent, non-down config —
    /// the single source of truth for impairment ordering and RNG draw
    /// order, shared by the scalar [`Netem::apply`] and the general branch
    /// of [`Netem::apply_batch`].
    fn apply_impaired(&mut self, now: SimTime, size: ByteSize, rng: &mut SimRng) -> NetemVerdict {
        if let Some(ge) = &mut self.ge {
            if ge.sample_drop(rng) {
                return NetemVerdict::Drop;
            }
        }
        if self.loss > 0.0 && rng.chance(self.loss) {
            return NetemVerdict::Drop;
        }
        let mut delay = self.extra_delay;
        if !self.jitter.is_zero() {
            delay += SimDuration::from_nanos(rng.uniform_u64(0, self.jitter.as_nanos()));
        }
        if let Some(profile) = &self.profile {
            let rate = profile.rate_at(now);
            match &mut self.shaper {
                Some(shaper) => shaper.set_rate(rate),
                None => self.shaper = Some(TokenBucket::new(rate, ByteSize::from_kb(32))),
            }
        }
        if let Some(shaper) = &mut self.shaper {
            match shaper.admit(now, size) {
                Admission::Forward => {}
                Admission::DelayUntil(t) => delay += t.since(now),
                Admission::Drop => return NetemVerdict::Drop,
            }
        }
        if self.reorder > 0.0 && rng.chance(self.reorder) {
            // Held back: this packet will pop out behind packets sent
            // after it — reordering without loss.
            delay += self.reorder_extra;
        }
        let corrupt = self.corrupt > 0.0 && rng.chance(self.corrupt);
        if self.duplicate > 0.0 && rng.chance(self.duplicate) {
            // The duplicate trails the original by a wire-time-scale gap,
            // the way a retransmitting link layer duplicates.
            return NetemVerdict::Duplicate {
                delay,
                dup_delay: delay + SimDuration::from_micros(500),
                corrupt,
            };
        }
        NetemVerdict::Deliver { delay, corrupt }
    }

    /// Sample verdicts for a batch of packets admitted at the same instant,
    /// writing them into a reusable output buffer.
    ///
    /// Draw-order contract: the verdict stream and the RNG stream position
    /// afterwards are bit-identical to calling [`Netem::apply`] once per
    /// packet in slice order. Fast paths only exist where that equivalence
    /// is provable:
    ///
    /// - transparent config — zero draws, constant fill;
    /// - link down — zero draws, constant fill;
    /// - independent loss only — exactly one uniform per packet, so the
    ///   words can be generated in register-resident chunks;
    /// - Gilbert–Elliott (plus optional independent loss) — draw count is
    ///   state-dependent, so no chunking, but the transition table and
    ///   channel state hoist out of the per-packet loop;
    /// - anything else — the scalar `apply_impaired` per packet.
    pub fn apply_batch(
        &mut self,
        now: SimTime,
        sizes: &[ByteSize],
        rng: &mut SimRng,
        out: &mut NetemBatch,
    ) {
        out.verdicts.clear();
        out.verdicts.reserve(sizes.len());
        if self.is_transparent() {
            let v = NetemVerdict::Deliver {
                delay: self.extra_delay,
                corrupt: false,
            };
            out.verdicts.resize(sizes.len(), v);
            return;
        }
        if self.down {
            out.verdicts.resize(sizes.len(), NetemVerdict::Drop);
            return;
        }
        let only_stochastic = self.jitter.is_zero()
            && self.profile.is_none()
            && self.shaper.is_none()
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.duplicate == 0.0;
        if only_stochastic {
            let deliver = NetemVerdict::Deliver {
                delay: self.extra_delay,
                corrupt: false,
            };
            match (&mut self.ge, DrawPlan::of(self.loss)) {
                (None, DrawPlan::Draw(p)) => {
                    // Independent loss alone draws exactly one uniform per
                    // packet, so the words can be pre-generated in chunks.
                    // The comparison reproduces `SimRng::uniform` bit-for-bit.
                    let mut words = [0u64; RNG_CHUNK];
                    let mut remaining = sizes.len();
                    while remaining > 0 {
                        let n = remaining.min(RNG_CHUNK);
                        rng.next_u64_chunk(&mut words[..n]);
                        for &w in &words[..n] {
                            let u = (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                            out.verdicts
                                .push(if u < p { NetemVerdict::Drop } else { deliver });
                        }
                        remaining -= n;
                    }
                    return;
                }
                (Some(ge), loss_plan) => {
                    // Hoist the transition table and channel state out of
                    // the loop; `||` short-circuits exactly like the scalar
                    // path (a GE drop never evaluates the loss draw).
                    let kernel = ge.kernel();
                    let mut state = ge.state_index();
                    for _ in sizes {
                        let dropped = kernel.step(&mut state, rng) || loss_plan.eval(rng);
                        out.verdicts
                            .push(if dropped { NetemVerdict::Drop } else { deliver });
                    }
                    ge.set_state_index(state);
                    return;
                }
                // loss ≥ 1 with no GE: rare, let the general loop decide.
                _ => {}
            }
        }
        for &size in sizes {
            let v = self.apply_impaired(now, size, rng);
            out.verdicts.push(v);
        }
    }
}

/// Reusable output buffer for [`Netem::apply_batch`]: one verdict per
/// admitted packet, in admission order. Allocated once and recycled so the
/// batch kernel stays inside the datapath's per-hop allocation budget.
#[derive(Debug, Default)]
pub struct NetemBatch {
    verdicts: Vec<NetemVerdict>,
}

impl NetemBatch {
    /// An empty buffer.
    pub fn new() -> Self {
        NetemBatch::default()
    }

    /// Number of verdicts from the last `apply_batch`.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// True when no verdicts are buffered.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// The verdicts, in admission order.
    pub fn verdicts(&self) -> &[NetemVerdict] {
        &self.verdicts
    }
}

/// Outcome of applying impairments to one packet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetemVerdict {
    /// Packet dropped.
    Drop,
    /// Packet delivered after `delay`, possibly corrupted.
    Deliver {
        /// Total extra delay to add.
        delay: SimDuration,
        /// Whether to flag the payload as corrupted.
        corrupt: bool,
    },
    /// Packet delivered twice: the original after `delay`, a byte-identical
    /// copy after `dup_delay`.
    Duplicate {
        /// Extra delay for the original.
        delay: SimDuration,
        /// Extra delay for the duplicate copy.
        dup_delay: SimDuration,
        /// Whether to flag both copies as corrupted.
        corrupt: bool,
    },
}

/// A piecewise-constant, cyclically repeating rate schedule — the shape
/// of cellular/congested-WiFi bandwidth traces used to replay real network
/// conditions against the shaper.
#[derive(Clone, Debug)]
pub struct RateProfile {
    /// (segment duration, rate) pairs; the schedule repeats after the last
    /// segment.
    segments: Vec<(SimDuration, DataRate)>,
    /// Cumulative end offset of each segment within the cycle, in
    /// nanoseconds — the binary-search keys for `rate_at`. `bounds[i]` is
    /// the exclusive end of segment `i`; the last entry equals the cycle.
    bounds: Vec<u64>,
    /// Total cycle length.
    cycle: SimDuration,
    /// Segment index the previous lookup landed in. Packet admission times
    /// are near-monotone, so consecutive lookups overwhelmingly re-hit the
    /// same segment; this is purely a cache — results are identical with
    /// or without it.
    last_hit: Cell<usize>,
}

impl RateProfile {
    /// Build from `(duration, rate)` segments (all durations non-zero).
    pub fn new(segments: Vec<(SimDuration, DataRate)>) -> Self {
        assert!(!segments.is_empty(), "profile needs at least one segment");
        assert!(
            segments.iter().all(|(d, r)| !d.is_zero() && *r > DataRate::ZERO),
            "segments need positive durations and rates"
        );
        let mut bounds = Vec::with_capacity(segments.len());
        let mut acc = 0u64;
        for (d, _) in &segments {
            acc += d.as_nanos();
            bounds.push(acc);
        }
        let cycle = SimDuration::from_nanos(acc);
        RateProfile {
            segments,
            bounds,
            cycle,
            last_hit: Cell::new(0),
        }
    }

    /// The rate in force at instant `t` (cyclic). O(1) when `t` lands in
    /// the same segment as the previous call, O(log n) otherwise.
    pub fn rate_at(&self, t: SimTime) -> DataRate {
        let offset = t.as_nanos() % self.cycle.as_nanos();
        let hit = self.last_hit.get();
        let start = if hit == 0 { 0 } else { self.bounds[hit - 1] };
        if start <= offset && offset < self.bounds[hit] {
            return self.segments[hit].1;
        }
        // `offset < cycle == bounds.last()`, so the partition point is
        // always a valid segment index.
        let idx = self.bounds.partition_point(|&end| end <= offset);
        self.last_hit.set(idx);
        self.segments[idx].1
    }

    /// The cycle length.
    pub fn cycle(&self) -> SimDuration {
        self.cycle
    }

    /// Mean rate over one cycle.
    pub fn mean_rate(&self) -> DataRate {
        let weighted: f64 = self
            .segments
            .iter()
            .map(|(d, r)| r.as_bps() as f64 * d.as_secs_f64())
            .sum();
        DataRate::from_bps_f64(weighted / self.cycle.as_secs_f64())
    }
}

/// Shaper admission outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Admission {
    Forward,
    DelayUntil(SimTime),
    Drop,
}

/// A token-bucket rate shaper (the `tc tbf` analogue).
///
/// Tokens are bytes; the bucket refills continuously at `rate` and holds at
/// most `burst` bytes. A packet needing more tokens than the bucket can ever
/// hold is dropped; otherwise it is scheduled for the instant enough tokens
/// will have accrued. A bounded backlog horizon (default 500 ms worth of
/// tokens) drop-tails sustained overload, as a real shaper's queue would.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: DataRate,
    burst: ByteSize,
    /// Token level, in bytes, at `updated`. May go negative (borrowed
    /// tokens) down to the backlog horizon.
    tokens: f64,
    updated: SimTime,
    /// How many bytes of deficit we allow before drop-tailing.
    backlog_limit: f64,
}

impl TokenBucket {
    /// A bucket with the given sustained rate and burst size.
    pub fn new(rate: DataRate, burst: ByteSize) -> Self {
        assert!(rate > DataRate::ZERO, "shaper needs a positive rate");
        let backlog_limit = rate.as_bps() as f64 / 8.0 * 0.5; // 500 ms of data
        TokenBucket {
            rate,
            burst,
            tokens: burst.as_bytes() as f64,
            updated: SimTime::ZERO,
            backlog_limit,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> DataRate {
        self.rate
    }

    /// Change the sustained rate in place (for trace-driven shaping).
    /// Accrued tokens persist; the backlog horizon follows the new rate.
    pub fn set_rate(&mut self, rate: DataRate) {
        assert!(rate > DataRate::ZERO, "shaper needs a positive rate");
        self.rate = rate;
        self.backlog_limit = rate.as_bps() as f64 / 8.0 * 0.5;
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.updated).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate.as_bps() as f64 / 8.0)
            .min(self.burst.as_bytes() as f64);
        self.updated = now;
    }

    fn admit(&mut self, now: SimTime, size: ByteSize) -> Admission {
        self.refill(now);
        let need = size.as_bytes() as f64;
        if need > self.burst.as_bytes() as f64 + self.backlog_limit {
            return Admission::Drop;
        }
        self.tokens -= need;
        if self.tokens >= 0.0 {
            Admission::Forward
        } else if -self.tokens > self.backlog_limit {
            // Refund and drop: the backlog is full.
            self.tokens += need;
            Admission::Drop
        } else {
            // Delay until the deficit is repaid.
            let wait_s = -self.tokens / (self.rate.as_bps() as f64 / 8.0);
            Admission::DelayUntil(now + SimDuration::from_secs_f64(wait_s))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_impairment_delivers_immediately() {
        let mut n = Netem::none();
        let mut rng = SimRng::seed_from_u64(1);
        let v = n.apply(SimTime::ZERO, ByteSize::from_bytes(100), &mut rng);
        assert_eq!(
            v,
            NetemVerdict::Deliver {
                delay: SimDuration::ZERO,
                corrupt: false
            }
        );
    }

    #[test]
    fn fixed_delay_is_applied_exactly() {
        let mut n = Netem::with_delay(SimDuration::from_millis(250));
        let mut rng = SimRng::seed_from_u64(2);
        match n.apply(SimTime::ZERO, ByteSize::from_bytes(100), &mut rng) {
            NetemVerdict::Deliver { delay, .. } => {
                assert_eq!(delay, SimDuration::from_millis(250))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loss_rate_is_respected_statistically() {
        let mut n = Netem {
            loss: 0.3,
            ..Netem::default()
        };
        let mut rng = SimRng::seed_from_u64(3);
        let drops = (0..10_000)
            .filter(|_| {
                n.apply(SimTime::ZERO, ByteSize::from_bytes(100), &mut rng) == NetemVerdict::Drop
            })
            .count();
        assert!((drops as f64 / 10_000.0 - 0.3).abs() < 0.02, "{drops}");
    }

    #[test]
    fn corruption_flags_but_delivers() {
        let mut n = Netem {
            corrupt: 1.0,
            ..Netem::default()
        };
        let mut rng = SimRng::seed_from_u64(4);
        match n.apply(SimTime::ZERO, ByteSize::from_bytes(100), &mut rng) {
            NetemVerdict::Deliver { corrupt, .. } => assert!(corrupt),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn jitter_stays_within_bound() {
        let mut n = Netem {
            extra_delay: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(5),
            ..Netem::default()
        };
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1_000 {
            if let NetemVerdict::Deliver { delay, .. } =
                n.apply(SimTime::ZERO, ByteSize::from_bytes(100), &mut rng)
            {
                assert!(delay >= SimDuration::from_millis(10));
                assert!(delay <= SimDuration::from_millis(15));
            }
        }
    }

    #[test]
    fn rate_profile_schedule_and_cycle() {
        let p = RateProfile::new(vec![
            (SimDuration::from_secs(2), DataRate::from_mbps(4)),
            (SimDuration::from_secs(1), DataRate::from_kbps(500)),
        ]);
        assert_eq!(p.cycle(), SimDuration::from_secs(3));
        assert_eq!(p.rate_at(SimTime::from_millis(500)), DataRate::from_mbps(4));
        assert_eq!(p.rate_at(SimTime::from_millis(2_500)), DataRate::from_kbps(500));
        // Cyclic repetition.
        assert_eq!(p.rate_at(SimTime::from_millis(3_500)), DataRate::from_mbps(4));
        // Mean: (4e6*2 + 0.5e6*1)/3 = 2.833 Mbps.
        assert!((p.mean_rate().as_mbps_f64() - 2.8333).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "positive durations")]
    fn rate_profile_rejects_zero_segments() {
        RateProfile::new(vec![(SimDuration::ZERO, DataRate::from_mbps(1))]);
    }

    #[test]
    fn rate_profile_exact_segment_boundaries() {
        // Bounds are exclusive ends: the instant a segment ends belongs to
        // the next segment, and the cycle end wraps to the first.
        let a = DataRate::from_mbps(4);
        let b = DataRate::from_kbps(500);
        let c = DataRate::from_mbps(2);
        let p = RateProfile::new(vec![
            (SimDuration::from_secs(2), a),
            (SimDuration::from_secs(1), b),
            (SimDuration::from_secs(3), c),
        ]);
        assert_eq!(p.rate_at(SimTime::ZERO), a);
        assert_eq!(p.rate_at(SimTime::from_secs(2)), b, "first boundary");
        assert_eq!(p.rate_at(SimTime::from_secs(3)), c, "second boundary");
        // The cycle end (t == cycle) is offset 0 again.
        assert_eq!(p.rate_at(SimTime::from_secs(6)), a, "cycle wrap");
        // One nanosecond either side of a boundary.
        let ns = SimDuration::from_nanos(1);
        assert_eq!(p.rate_at(SimTime::from_secs(2) - ns), a);
        assert_eq!(p.rate_at(SimTime::from_secs(2) + ns), b);
        assert_eq!(p.rate_at(SimTime::from_secs(6) - ns), c);
        assert_eq!(p.rate_at(SimTime::from_secs(6) + ns), a);
    }

    #[test]
    fn rate_profile_before_first_and_after_last_boundary() {
        let a = DataRate::from_mbps(8);
        let b = DataRate::from_kbps(160);
        let p = RateProfile::new(vec![
            (SimDuration::from_millis(10), a),
            (SimDuration::from_millis(5), b),
        ]);
        // Strictly inside the first segment (before the first bound).
        assert_eq!(p.rate_at(SimTime::from_millis(3)), a);
        // Past the last bound: offsets reduce mod the 15 ms cycle, however
        // many cycles out the query lands.
        assert_eq!(p.rate_at(SimTime::from_millis(26)), b); // 26 % 15 = 11
        // Huge t: 1000 s mod 15 ms is exactly the 10 ms bound — second
        // segment (exclusive ends).
        assert_eq!(p.rate_at(SimTime::from_secs(1_000)), b);
        assert_eq!(
            p.rate_at(SimTime::from_nanos(u64::MAX / 2)),
            p.rate_at(SimTime::from_nanos((u64::MAX / 2) % 15_000_000))
        );
    }

    #[test]
    fn rate_profile_out_of_order_queries_do_not_stale_the_cache() {
        // The cached segment index is an accelerator only: alternating
        // lookups that bounce between segments (and wrap the cycle) must
        // return exactly what a fresh binary search would.
        let rates = [
            DataRate::from_mbps(1),
            DataRate::from_mbps(2),
            DataRate::from_mbps(3),
            DataRate::from_mbps(4),
        ];
        let p = RateProfile::new(
            rates
                .iter()
                .map(|&r| (SimDuration::from_millis(100), r))
                .collect(),
        );
        let fresh = |t: SimTime| {
            // Reference: uncached lookup on a new profile.
            let q = RateProfile::new(
                rates
                    .iter()
                    .map(|&r| (SimDuration::from_millis(100), r))
                    .collect(),
            );
            q.rate_at(t)
        };
        // A hostile query order: forward, backward, same-instant repeats,
        // boundary hits, cycle wraps.
        let times_ms = [
            350u64, 50, 50, 399, 0, 250, 100, 99, 700, 300, 1_000_000, 150, 400, 401,
        ];
        for &ms in &times_ms {
            let t = SimTime::from_millis(ms);
            assert_eq!(p.rate_at(t), fresh(t), "stale cache at t={ms} ms");
        }
    }

    #[test]
    fn rate_profile_single_segment_is_constant() {
        let p = RateProfile::new(vec![(SimDuration::from_millis(7), DataRate::from_mbps(6))]);
        for ms in [0u64, 3, 7, 14, 20, 999] {
            assert_eq!(p.rate_at(SimTime::from_millis(ms)), DataRate::from_mbps(6));
        }
    }

    #[test]
    fn profiled_netem_throttles_during_the_dip() {
        // 2 s at 8 Mbps, 1 s at 160 kbps, cycling. Offer 1.6 Mbps steadily;
        // during dips the shaper backlog fills and drops engage.
        let profile = RateProfile::new(vec![
            (SimDuration::from_secs(2), DataRate::from_mbps(8)),
            (SimDuration::from_secs(1), DataRate::from_kbps(160)),
        ]);
        let mut n = Netem::with_rate_profile(profile);
        let mut rng = SimRng::seed_from_u64(9);
        let pkt = ByteSize::from_bytes(1_000);
        let mut t = SimTime::ZERO;
        let mut dropped_in_dip = 0u32;
        let mut dropped_in_clear = 0u32;
        for _ in 0..3_000 {
            // one packet per 5 ms = 1.6 Mbps offered
            let in_dip = t.as_nanos() % 3_000_000_000 >= 2_000_000_000;
            if n.apply(t, pkt, &mut rng) == NetemVerdict::Drop {
                if in_dip {
                    dropped_in_dip += 1;
                } else {
                    dropped_in_clear += 1;
                }
            }
            t += SimDuration::from_millis(5);
        }
        assert!(dropped_in_dip > 50, "dips never dropped: {dropped_in_dip}");
        assert!(
            dropped_in_clear < dropped_in_dip / 4,
            "clear periods dropped too much: {dropped_in_clear} vs {dropped_in_dip}"
        );
    }

    #[test]
    fn token_bucket_passes_within_burst() {
        let mut tb = TokenBucket::new(DataRate::from_mbps(1), ByteSize::from_kb(32));
        assert_eq!(
            tb.admit(SimTime::ZERO, ByteSize::from_kb(10)),
            Admission::Forward
        );
        assert_eq!(
            tb.admit(SimTime::ZERO, ByteSize::from_kb(10)),
            Admission::Forward
        );
    }

    #[test]
    fn token_bucket_delays_when_exhausted() {
        let mut tb = TokenBucket::new(DataRate::from_mbps(8), ByteSize::from_kb(10));
        assert_eq!(
            tb.admit(SimTime::ZERO, ByteSize::from_kb(10)),
            Admission::Forward
        );
        // Bucket is empty; 1 KB needs 1 ms at 8 Mbps (= 1 MB/s).
        match tb.admit(SimTime::ZERO, ByteSize::from_kb(1)) {
            Admission::DelayUntil(t) => {
                assert!((t.as_millis_f64() - 1.0).abs() < 0.01, "{t:?}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn token_bucket_refills_over_time() {
        let mut tb = TokenBucket::new(DataRate::from_mbps(8), ByteSize::from_kb(10));
        tb.admit(SimTime::ZERO, ByteSize::from_kb(10));
        // After 10 ms at 1 MB/s, 10 KB of tokens are back.
        assert_eq!(
            tb.admit(SimTime::from_millis(10), ByteSize::from_kb(10)),
            Admission::Forward
        );
    }

    #[test]
    fn token_bucket_drops_sustained_overload() {
        let mut tb = TokenBucket::new(DataRate::from_kbps(100), ByteSize::from_kb(4));
        // Flood far beyond the 500 ms backlog horizon.
        let mut dropped = false;
        for _ in 0..100 {
            if tb.admit(SimTime::ZERO, ByteSize::from_kb(4)) == Admission::Drop {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "sustained overload must eventually drop");
    }

    #[test]
    fn link_down_drops_everything() {
        let mut n = Netem {
            down: true,
            ..Netem::default()
        };
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                n.apply(SimTime::ZERO, ByteSize::from_bytes(100), &mut rng),
                NetemVerdict::Drop
            );
        }
    }

    #[test]
    fn gilbert_elliott_episode_drops_in_bursts() {
        use crate::fault::{GeConfig, GilbertElliott};
        let mut n = Netem {
            ge: Some(GilbertElliott::new(GeConfig {
                good_to_bad: 0.05,
                bad_to_good: 0.2,
                loss_good: 0.0,
                loss_bad: 1.0,
            })),
            ..Netem::default()
        };
        let mut rng = SimRng::seed_from_u64(8);
        let verdicts: Vec<bool> = (0..5_000)
            .map(|_| {
                n.apply(SimTime::ZERO, ByteSize::from_bytes(100), &mut rng) == NetemVerdict::Drop
            })
            .collect();
        let drops = verdicts.iter().filter(|d| **d).count();
        // Stationary loss = 0.05/(0.05+0.2) = 0.2.
        assert!((drops as f64 / 5_000.0 - 0.2).abs() < 0.05, "{drops}");
        // Bursts: a drop is followed by another drop far more often than
        // the marginal rate alone would predict.
        let pairs = verdicts.windows(2).filter(|w| w[0]).count();
        let repeats = verdicts.windows(2).filter(|w| w[0] && w[1]).count();
        assert!(
            repeats as f64 / pairs as f64 > 0.5,
            "loss not bursty: {repeats}/{pairs}"
        );
    }

    #[test]
    fn reorder_holds_back_a_subset() {
        let mut n = Netem {
            reorder: 0.25,
            reorder_extra: SimDuration::from_millis(40),
            ..Netem::default()
        };
        let mut rng = SimRng::seed_from_u64(9);
        let mut held = 0u32;
        for _ in 0..4_000 {
            match n.apply(SimTime::ZERO, ByteSize::from_bytes(100), &mut rng) {
                NetemVerdict::Deliver { delay, .. } => {
                    if delay == SimDuration::from_millis(40) {
                        held += 1;
                    } else {
                        assert_eq!(delay, SimDuration::ZERO);
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!((held as f64 / 4_000.0 - 0.25).abs() < 0.03, "{held}");
    }

    #[test]
    fn duplicate_emits_trailing_copy() {
        let mut n = Netem {
            duplicate: 1.0,
            ..Netem::default()
        };
        let mut rng = SimRng::seed_from_u64(10);
        match n.apply(SimTime::ZERO, ByteSize::from_bytes(100), &mut rng) {
            NetemVerdict::Duplicate {
                delay, dup_delay, ..
            } => {
                assert!(dup_delay > delay);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn apply_batch_matches_scalar_stream_for_every_config_shape() {
        use crate::fault::{GeConfig, GilbertElliott};
        let ge = || {
            GilbertElliott::new(GeConfig {
                good_to_bad: 0.05,
                bad_to_good: 0.2,
                loss_good: 0.01,
                loss_bad: 0.8,
            })
        };
        let configs = vec![
            Netem::none(),
            Netem::with_delay(SimDuration::from_millis(20)),
            Netem {
                down: true,
                loss: 0.5,
                ..Netem::default()
            },
            Netem {
                loss: 0.3,
                ..Netem::default()
            },
            Netem {
                loss: 1.5,
                ..Netem::default()
            },
            Netem {
                ge: Some(ge()),
                ..Netem::default()
            },
            Netem {
                ge: Some(ge()),
                loss: 0.1,
                ..Netem::default()
            },
            Netem {
                jitter: SimDuration::from_millis(5),
                loss: 0.2,
                corrupt: 0.1,
                duplicate: 0.15,
                reorder: 0.1,
                reorder_extra: SimDuration::from_millis(30),
                ..Netem::default()
            },
            Netem::with_rate_limit(DataRate::from_kbps(700)),
        ];
        for (i, config) in configs.into_iter().enumerate() {
            let sizes: Vec<ByteSize> = (0..257)
                .map(|k| ByteSize::from_bytes(100 + (k % 5) * 300))
                .collect();
            let now = SimTime::from_millis(7);
            let mut scalar = config.clone();
            let mut batched = config;
            let mut rng_s = SimRng::seed_from_u64(42 + i as u64);
            let mut rng_b = SimRng::seed_from_u64(42 + i as u64);
            let want: Vec<NetemVerdict> = sizes
                .iter()
                .map(|&s| scalar.apply(now, s, &mut rng_s))
                .collect();
            let mut out = NetemBatch::new();
            batched.apply_batch(now, &sizes, &mut rng_b, &mut out);
            assert_eq!(out.verdicts(), &want[..], "verdicts diverged for config {i}");
            assert_eq!(
                rng_s.state_fingerprint(),
                rng_b.state_fingerprint(),
                "rng stream position diverged for config {i}"
            );
        }
    }

    #[test]
    fn rate_profile_lookup_is_cache_invariant() {
        let segs = vec![
            (SimDuration::from_millis(300), DataRate::from_mbps(8)),
            (SimDuration::from_millis(150), DataRate::from_kbps(700)),
            (SimDuration::from_millis(50), DataRate::from_mbps(2)),
            (SimDuration::from_millis(500), DataRate::from_kbps(160)),
        ];
        let p = RateProfile::new(segs.clone());
        // Reference linear scan, evaluated fresh each call.
        let linear = |t: SimTime| {
            let mut offset = SimDuration::from_nanos(t.as_nanos() % p.cycle().as_nanos());
            for (d, r) in &segs {
                if offset < *d {
                    return *r;
                }
                offset -= *d;
            }
            unreachable!()
        };
        // Forward sweep, backward sweep, and boundary-adjacent jumps: the
        // last-hit cache must never change an answer.
        let mut probes: Vec<u64> = (0..4_000u64).map(|k| k * 777_777).collect();
        probes.extend((0..4_000u64).rev().map(|k| k * 999_999));
        probes.extend([0, 299_999_999, 300_000_000, 499_999_999, 500_000_000, 999_999_999, 1_000_000_000]);
        for ns in probes {
            let t = SimTime::from_nanos(ns);
            assert_eq!(p.rate_at(t), linear(t), "diverged at {ns} ns");
        }
    }

    #[test]
    fn shaped_netem_long_run_rate_matches_config() {
        // Push 2x the shaped rate for 10 s; delivered volume must match the
        // shaper rate, not the offered rate.
        let rate = DataRate::from_kbps(700);
        let mut n = Netem::with_rate_limit(rate);
        let mut rng = SimRng::seed_from_u64(6);
        let pkt = ByteSize::from_bytes(875); // 7,000 bits
        let mut delivered: u64 = 0;
        let mut t = SimTime::ZERO;
        // Offered: one packet every 5 ms = 1.4 Mbps.
        for _ in 0..2_000 {
            if let NetemVerdict::Deliver { .. } = n.apply(t, pkt, &mut rng) {
                delivered += pkt.as_bytes();
            }
            t += SimDuration::from_millis(5);
        }
        let achieved = ByteSize::from_bytes(delivered)
            .rate_over(SimDuration::from_secs(10))
            .as_kbps_f64();
        assert!(
            (achieved - 700.0).abs() < 75.0,
            "achieved {achieved} kbps, want ~700"
        );
    }
}
