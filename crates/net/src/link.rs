//! Simplex links.
//!
//! A link serializes packets at `rate` (FIFO, one at a time — the
//! `busy_until` discipline), queues at most `queue_limit` bytes of backlog
//! (drop-tail), then applies propagation `delay` and any configured
//! [`Netem`] impairments.

use crate::netem::Netem;
use crate::shaper::{self, LinkShaper, ShaperConfig, ShaperVerdict};
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};

/// Identifier of a simplex link within a [`crate::Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Static configuration of one simplex link.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Serialization rate. `None` models an un-bottlenecked core path
    /// (packets incur only `delay`).
    pub rate: Option<DataRate>,
    /// Drop-tail backlog limit in bytes of queued-but-unserialized data.
    pub queue_limit: ByteSize,
    /// Impairments (netem/tbf analogue).
    pub netem: Netem,
    /// Token-bucket shaper with a finite FIFO queue (`tc tbf` with a
    /// BDP-sized queue). Applied after the serializer; its drops are
    /// queue drops, visible to the receiver as loss.
    pub shaper: Option<ShaperConfig>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            delay: SimDuration::from_millis(1),
            rate: None,
            queue_limit: ByteSize::from_kb(256),
            netem: Netem::none(),
            shaper: None,
        }
    }
}

impl LinkConfig {
    /// An access link: typical WiFi AP uplink/downlink (the paper's APs
    /// sustain >300 Mbps).
    pub fn wifi_access() -> Self {
        LinkConfig {
            delay: SimDuration::from_millis(2),
            rate: Some(DataRate::from_mbps(300)),
            queue_limit: ByteSize::from_kb(512),
            netem: Netem::none(),
            shaper: None,
        }
    }

    /// A wide-area core path with the given one-way delay and no
    /// serialization bottleneck.
    pub fn core(delay: SimDuration) -> Self {
        LinkConfig {
            delay,
            rate: None,
            queue_limit: ByteSize::from_mb(16),
            netem: Netem::none(),
            shaper: None,
        }
    }

    /// This config with a token-bucket shaper attached (auto 2×BDP
    /// queue).
    pub fn shaped(mut self, rate: DataRate) -> Self {
        self.shaper = Some(ShaperConfig::new(rate));
        self
    }
}

/// Runtime state of one simplex link.
#[derive(Clone, Debug)]
pub struct LinkState {
    /// Static configuration.
    pub config: LinkConfig,
    /// Head node (ingress).
    pub from: usize,
    /// Tail node (egress).
    pub to: usize,
    /// When the serializer frees up.
    pub busy_until: SimTime,
    /// Bytes currently queued awaiting serialization.
    pub backlog: ByteSize,
    /// Runtime state of the configured shaper, if any.
    pub shaper: Option<LinkShaper>,
    /// Counters.
    pub stats: LinkStats,
}

/// Per-link counters.
///
/// The sanitizer's `net/conservation` check relies on the identities that
/// hold at every instant:
///
/// ```text
/// offered       == sent  + queue_drops        + netem_drops
/// offered_bytes == bytes + queue_dropped_bytes + netem_dropped_bytes
/// sent  + duplicated == exited + in_flight
/// bytes + dup_bytes  == exited_bytes + in_flight_bytes
/// ```
///
/// i.e. every packet presented for admission is accounted for (accepted
/// or dropped at a named site), and every accepted copy is either still
/// propagating or has popped out at the tail — bytes are conserved per
/// link even with finite shaper queues dropping under overload.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Packets presented for admission (accepted + dropped).
    pub offered: u64,
    /// Bytes presented for admission.
    pub offered_bytes: u64,
    /// Packets accepted onto the link.
    pub sent: u64,
    /// Packets dropped by the drop-tail queue.
    pub queue_drops: u64,
    /// Bytes dropped by the drop-tail queue (serializer or shaper).
    pub queue_dropped_bytes: u64,
    /// Packets dropped by impairments (loss or shaper overload).
    pub netem_drops: u64,
    /// Bytes dropped by impairments.
    pub netem_dropped_bytes: u64,
    /// Extra copies emitted by the duplication impairment.
    pub duplicated: u64,
    /// Total payload+encapsulation bytes accepted.
    pub bytes: u64,
    /// Extra bytes emitted by the duplication impairment.
    pub dup_bytes: u64,
    /// Copies that finished traversing the link (reached its tail node).
    pub exited: u64,
    /// Bytes that finished traversing the link.
    pub exited_bytes: u64,
    /// Copies currently on the wire (accepted, not yet exited).
    pub in_flight: u64,
    /// Bytes currently on the wire.
    pub in_flight_bytes: u64,
}

impl LinkStats {
    /// True when the per-link conservation identities hold (see the type
    /// docs). Checked by the sanitizer at `net/conservation`.
    pub fn conserved(&self) -> bool {
        self.offered == self.sent + self.queue_drops + self.netem_drops
            && self.offered_bytes
                == self.bytes + self.queue_dropped_bytes + self.netem_dropped_bytes
            && self.sent + self.duplicated == self.exited + self.in_flight
            && self.bytes + self.dup_bytes == self.exited_bytes + self.in_flight_bytes
    }
}

impl LinkState {
    /// Create a fresh link.
    pub fn new(from: usize, to: usize, config: LinkConfig) -> Self {
        let shaper = config
            .shaper
            .as_ref()
            .map(|cfg| LinkShaper::new(cfg, config.delay));
        LinkState {
            config,
            from,
            to,
            busy_until: SimTime::ZERO,
            backlog: ByteSize::ZERO,
            shaper,
            stats: LinkStats::default(),
        }
    }

    /// Attach, replace, or remove the shaper mid-run (rate cliffs rebuild
    /// state; prefer [`LinkShaper::set_rate`] via the network accessor to
    /// keep the queue).
    pub fn set_shaper(&mut self, cfg: Option<ShaperConfig>) {
        self.shaper = cfg.as_ref().map(|c| LinkShaper::new(c, self.config.delay));
        self.config.shaper = cfg;
    }

    /// True when the link neither serializes (no rate bottleneck, no
    /// shaper) nor impairs beyond a fixed delay: admission is a
    /// constant-offset schedule with no randomness and no queue, the
    /// precondition for the batched datapath's constant-verdict admission
    /// fast path.
    #[inline]
    pub fn is_passthrough(&self) -> bool {
        self.config.rate.is_none() && self.shaper.is_none() && self.config.netem.is_transparent()
    }

    /// Compute when a packet of `size` accepted at `now` finishes
    /// serializing (and, when a shaper is attached, clears the shaper's
    /// finite FIFO queue), updating the busy horizon. Returns `None` when
    /// a drop-tail queue is full. Draws no randomness: both drain loops
    /// call this per member in the same order, so shaped links stay
    /// bit-identical scalar-vs-batched.
    #[inline]
    pub fn serialize(&mut self, now: SimTime, size: ByteSize) -> Option<SimTime> {
        let serialized = match self.config.rate {
            None => now,
            Some(rate) => {
                let start = self.busy_until.max(now);
                // Backlog approximated by the serialization horizon.
                let queued = rate.bytes_in(start.since(now));
                if queued > self.config.queue_limit {
                    self.stats.queue_drops += 1;
                    self.stats.queue_dropped_bytes += size.as_bytes();
                    shaper::count_queue_drop(size.as_bytes());
                    return None;
                }
                let tx = rate.transmit_time(size).expect("positive rate");
                self.busy_until = start + tx;
                self.busy_until
            }
        };
        match &mut self.shaper {
            None => Some(serialized),
            Some(sh) => match sh.admit(serialized, size) {
                ShaperVerdict::Deliver { dequeue } => Some(dequeue),
                ShaperVerdict::Drop => {
                    self.stats.queue_drops += 1;
                    self.stats.queue_dropped_bytes += size.as_bytes();
                    shaper::count_queue_drop(size.as_bytes());
                    None
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbottlenecked_link_serializes_instantly() {
        let mut l = LinkState::new(0, 1, LinkConfig::core(SimDuration::from_millis(10)));
        let t = SimTime::from_millis(5);
        assert_eq!(l.serialize(t, ByteSize::from_mb(1)), Some(t));
    }

    #[test]
    fn serialization_is_fifo_and_cumulative() {
        let cfg = LinkConfig {
            rate: Some(DataRate::from_mbps(8)), // 1 MB/s
            ..LinkConfig::default()
        };
        let mut l = LinkState::new(0, 1, cfg);
        // 1 KB takes 1 ms.
        let a = l.serialize(SimTime::ZERO, ByteSize::from_kb(1)).unwrap();
        assert_eq!(a, SimTime::from_millis(1));
        // Next packet queues behind the first.
        let b = l.serialize(SimTime::ZERO, ByteSize::from_kb(1)).unwrap();
        assert_eq!(b, SimTime::from_millis(2));
        // A later arrival after the queue drains starts fresh.
        let c = l
            .serialize(SimTime::from_millis(10), ByteSize::from_kb(1))
            .unwrap();
        assert_eq!(c, SimTime::from_millis(11));
    }

    #[test]
    fn drop_tail_engages_when_backlogged() {
        let cfg = LinkConfig {
            rate: Some(DataRate::from_kbps(8)), // 1 KB/s
            queue_limit: ByteSize::from_kb(2),
            ..LinkConfig::default()
        };
        let mut l = LinkState::new(0, 1, cfg);
        let mut dropped = 0;
        for _ in 0..10 {
            if l.serialize(SimTime::ZERO, ByteSize::from_kb(1)).is_none() {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "queue never filled");
        assert_eq!(l.stats.queue_drops, dropped);
    }

    #[test]
    fn wifi_access_profile_matches_paper_testbed() {
        let cfg = LinkConfig::wifi_access();
        assert!(cfg.rate.unwrap() >= DataRate::from_mbps(300));
    }
}
