//! Per-link token-bucket shaping with a finite FIFO queue.
//!
//! The legacy serializer ([`crate::link::LinkState::serialize`] with a
//! `rate`) approximates its backlog from the busy horizon and drops
//! against a byte limit only. This module is the `tc tbf` analogue the
//! closed-loop congestion work needs: a token bucket whose deficit *is*
//! the queue, bounded in **packets or bytes** (default ~2× the
//! bandwidth-delay product), whose overflow produces real, traced,
//! metric-counted drops and whose occupancy produces real queuing delay
//! the receiver can observe.
//!
//! # Determinism
//!
//! Admission draws no randomness: the verdict is a pure function of the
//! admission sequence `(now, size)` and the configured rate. Both drain
//! loops ([`crate::network::DrainMode::Scalar`] and `Batched`) admit
//! members in the same order through [`crate::link::LinkState::serialize`],
//! so a shaped link is bit-identical across modes and thread counts —
//! `tests/batch_equiv.rs` pins this with shapers enabled. The float
//! token arithmetic is the same fixed operation sequence either way.

use std::collections::VecDeque;
use std::sync::OnceLock;
use visionsim_core::metrics::{self, Class};
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};

/// Cached handles for the shaper's registry entries. Both are
/// [`Class::Sim`]: pure functions of the seeded admission sequence,
/// updated via commutative atomic ops.
struct ShaperMetrics {
    /// Bytes dropped by finite-queue overflow, mirroring the per-link
    /// `queue_dropped_bytes` stat (the sanitizer's conservation identity
    /// counts these on the offered side).
    queue_dropped_bytes: metrics::Counter,
    /// Log2 histogram of per-packet queuing delay, microseconds.
    queue_delay_us: metrics::Histogram,
}

fn shaper_metrics() -> &'static ShaperMetrics {
    static M: OnceLock<ShaperMetrics> = OnceLock::new();
    M.get_or_init(|| ShaperMetrics {
        queue_dropped_bytes: metrics::counter("net/queue_dropped_bytes", Class::Sim),
        queue_delay_us: metrics::histogram("net/queue_delay_us", Class::Sim),
    })
}

/// Record a queue-overflow drop into the process-wide mirror counter.
/// Called from the link layer (which owns the per-link stat).
pub(crate) fn count_queue_drop(bytes: u64) {
    if metrics::enabled() {
        shaper_metrics().queue_dropped_bytes.add(bytes);
    }
}

/// Observe one packet's queuing delay (admission → dequeue) in µs.
fn observe_queue_delay(delay: SimDuration) {
    if metrics::enabled() {
        shaper_metrics().queue_delay_us.observe(delay.as_micros_f64() as u64);
    }
}

/// How the shaper's FIFO queue is bounded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueLimit {
    /// At most this many packets queued (serialized-but-not-departed).
    Packets(u32),
    /// At most this many bytes queued.
    Bytes(ByteSize),
    /// ~2× the bandwidth-delay product of the link, floored at one
    /// typical congestion-window's worth so slow links still hold a few
    /// MTUs (see [`ShaperConfig::queue_bytes`]).
    Auto,
}

/// Configuration of one link shaper.
#[derive(Clone, Copy, Debug)]
pub struct ShaperConfig {
    /// Sustained token rate.
    pub rate: DataRate,
    /// Bucket depth: bytes that may pass at line rate before queuing
    /// starts.
    pub burst: ByteSize,
    /// Finite FIFO bound.
    pub queue: QueueLimit,
}

impl ShaperConfig {
    /// A shaper at `rate` with a 16 KB burst and the auto (2× BDP) queue.
    pub fn new(rate: DataRate) -> Self {
        ShaperConfig {
            rate,
            burst: ByteSize::from_kb(16),
            queue: QueueLimit::Auto,
        }
    }

    /// Same, with an explicit queue bound.
    pub fn with_queue(rate: DataRate, queue: QueueLimit) -> Self {
        ShaperConfig {
            rate,
            burst: ByteSize::from_kb(16),
            queue,
        }
    }

    /// Resolve the queue bound to bytes for a link with one-way
    /// propagation `delay`. `Auto` is 2× BDP computed against an RTT
    /// floor of 25 ms each way — access links have sub-millisecond
    /// propagation but real AP queues still buffer tens of milliseconds —
    /// and never below 16 KB.
    pub fn queue_bytes(&self, delay: SimDuration) -> u64 {
        match self.queue {
            QueueLimit::Bytes(b) => b.as_bytes(),
            // Packet bounds are enforced by count; give the byte bound
            // headroom so only the packet limit binds.
            QueueLimit::Packets(_) => u64::MAX,
            QueueLimit::Auto => {
                let horizon = delay.max(SimDuration::from_millis(25));
                let bdp = self.rate.bytes_in(horizon).as_bytes();
                (2 * bdp).max(16 * 1024)
            }
        }
    }

    /// The packet bound, if the queue is packet-limited.
    pub fn queue_packets(&self) -> Option<u32> {
        match self.queue {
            QueueLimit::Packets(n) => Some(n),
            _ => None,
        }
    }
}

/// What the shaper decided for one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShaperVerdict {
    /// Departs the shaper at `dequeue` (== admission time when the bucket
    /// had tokens; later when the packet sat in the queue).
    Deliver {
        /// When the packet leaves the shaper queue.
        dequeue: SimTime,
    },
    /// Finite queue overflow: the packet is dropped at admission.
    Drop,
}

/// Runtime state of one link's shaper.
///
/// The token deficit is the queue: `tokens < 0` means `-tokens` bytes are
/// serialized into the future. The FIFO side table tracks per-packet
/// dequeue instants so the packet bound and occupancy queries are exact.
#[derive(Clone, Debug)]
pub struct LinkShaper {
    rate: DataRate,
    burst: ByteSize,
    /// Resolved byte bound on queued (admitted-but-not-departed) data.
    limit_bytes: u64,
    /// Optional packet bound.
    limit_packets: Option<u32>,
    /// Token level in bytes at `updated`; negative = queued bytes.
    tokens: f64,
    updated: SimTime,
    /// (dequeue instant ns, wire bytes) of packets still in the queue,
    /// oldest first. Pruned lazily at each admission.
    queue: VecDeque<(u64, u32)>,
    /// Sum of queued bytes (mirror of the `queue` entries).
    queued_bytes: u64,
    /// Lifetime totals for conservation checks: bytes admitted (forwarded
    /// or queued) and bytes dropped at the queue.
    pub admitted_bytes: u64,
    /// Bytes dropped by queue overflow.
    pub dropped_bytes: u64,
}

impl LinkShaper {
    /// Instantiate the runtime state for `cfg` on a link with propagation
    /// `delay` (used to resolve the auto queue bound).
    pub fn new(cfg: &ShaperConfig, delay: SimDuration) -> Self {
        assert!(cfg.rate > DataRate::ZERO, "shaper needs a positive rate");
        LinkShaper {
            rate: cfg.rate,
            burst: cfg.burst,
            limit_bytes: cfg.queue_bytes(delay),
            limit_packets: cfg.queue_packets(),
            tokens: cfg.burst.as_bytes() as f64,
            updated: SimTime::ZERO,
            queue: VecDeque::new(),
            queued_bytes: 0,
            admitted_bytes: 0,
            dropped_bytes: 0,
        }
    }

    /// The sustained rate.
    pub fn rate(&self) -> DataRate {
        self.rate
    }

    /// Change the sustained rate in place (duty-cycled capacity, handover
    /// cliffs). Accrued tokens and queued packets keep their schedule;
    /// only future admissions see the new rate.
    pub fn set_rate(&mut self, rate: DataRate) {
        assert!(rate > DataRate::ZERO, "shaper needs a positive rate");
        self.rate = rate;
    }

    /// The resolved byte bound.
    pub fn limit_bytes(&self) -> u64 {
        self.limit_bytes
    }

    /// Drop every queue entry that departed at or before `now`.
    fn prune(&mut self, now: SimTime) {
        let now_ns = now.as_nanos();
        while let Some(&(deq, bytes)) = self.queue.front() {
            if deq > now_ns {
                break;
            }
            self.queued_bytes -= bytes as u64;
            self.queue.pop_front();
        }
    }

    /// Packets queued (admitted, not yet departed) at `now`.
    pub fn queued_packets(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.queue.len()
    }

    /// Bytes queued at `now`.
    pub fn queued_bytes(&mut self, now: SimTime) -> u64 {
        self.prune(now);
        self.queued_bytes
    }

    /// Admit one packet at `now`. Deterministic: no RNG, and the verdict
    /// depends only on the admission sequence so far.
    pub fn admit(&mut self, now: SimTime, size: ByteSize) -> ShaperVerdict {
        self.prune(now);
        // Refill.
        let dt = now.since(self.updated).as_secs_f64();
        let rate_bytes = self.rate.as_bps() as f64 / 8.0;
        self.tokens = (self.tokens + dt * rate_bytes).min(self.burst.as_bytes() as f64);
        self.updated = now;

        let need = size.as_bytes();
        // Covered by tokens: forwards at line rate, never occupies the
        // queue, so the queue bound does not apply (tbf semantics).
        if self.tokens >= need as f64 {
            self.tokens -= need as f64;
            self.admitted_bytes += need;
            observe_queue_delay(SimDuration::ZERO);
            return ShaperVerdict::Deliver { dequeue: now };
        }
        // Would queue — drop-tail on either bound. The byte bound counts
        // this packet; the packet bound counts occupancy before it (the
        // packet itself would occupy the slot the bound is protecting).
        let over_bytes = self.queued_bytes + need > self.limit_bytes;
        let over_packets = self
            .limit_packets
            .is_some_and(|n| self.queue.len() >= n as usize);
        if over_bytes || over_packets {
            self.dropped_bytes += need;
            return ShaperVerdict::Drop;
        }
        self.tokens -= need as f64;
        self.admitted_bytes += need;
        let wait = SimDuration::from_secs_f64(-self.tokens / rate_bytes);
        let dequeue = now + wait;
        self.queue.push_back((dequeue.as_nanos(), need as u32));
        self.queued_bytes += need;
        observe_queue_delay(wait);
        ShaperVerdict::Deliver { dequeue }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shaper(rate_kbps: u64, queue: QueueLimit) -> LinkShaper {
        LinkShaper::new(
            &ShaperConfig::with_queue(DataRate::from_kbps(rate_kbps), queue),
            SimDuration::from_millis(2),
        )
    }

    #[test]
    fn burst_passes_at_line_rate_then_queues() {
        // 8 kbps = 1000 bytes/s; 16 KB burst.
        let mut s = shaper(8, QueueLimit::Bytes(ByteSize::from_kb(64)));
        // The whole burst forwards with zero queuing delay.
        match s.admit(SimTime::ZERO, ByteSize::from_kb(16)) {
            ShaperVerdict::Deliver { dequeue } => assert_eq!(dequeue, SimTime::ZERO),
            v => panic!("burst dropped: {v:?}"),
        }
        // The next packet waits for tokens: 1 KB at 1000 B/s = 1 s.
        match s.admit(SimTime::ZERO, ByteSize::from_kb(1)) {
            ShaperVerdict::Deliver { dequeue } => {
                assert_eq!(dequeue, SimTime::from_secs(1));
            }
            v => panic!("queued packet dropped: {v:?}"),
        }
        assert_eq!(s.queued_packets(SimTime::ZERO), 1);
        assert_eq!(s.queued_bytes(SimTime::ZERO), 1000);
        // After the dequeue instant the queue is empty again.
        assert_eq!(s.queued_packets(SimTime::from_secs(2)), 0);
    }

    #[test]
    fn byte_bound_drop_tails() {
        let mut s = shaper(8, QueueLimit::Bytes(ByteSize::from_kb(2)));
        // Exhaust the burst.
        assert!(matches!(
            s.admit(SimTime::ZERO, ByteSize::from_kb(16)),
            ShaperVerdict::Deliver { .. }
        ));
        // Two 1 KB packets fill the 2 KB queue; the third drops.
        for _ in 0..2 {
            assert!(matches!(
                s.admit(SimTime::ZERO, ByteSize::from_kb(1)),
                ShaperVerdict::Deliver { .. }
            ));
        }
        assert_eq!(
            s.admit(SimTime::ZERO, ByteSize::from_kb(1)),
            ShaperVerdict::Drop
        );
        assert_eq!(s.dropped_bytes, 1000);
        // Conservation: everything admitted is forwarded, queued, or was
        // dropped before counting.
        assert_eq!(s.admitted_bytes, 16_000 + 2_000);
    }

    #[test]
    fn packet_bound_drop_tails() {
        let mut s = shaper(8, QueueLimit::Packets(3));
        assert!(matches!(
            s.admit(SimTime::ZERO, ByteSize::from_kb(16)),
            ShaperVerdict::Deliver { .. }
        ));
        for _ in 0..3 {
            assert!(matches!(
                s.admit(SimTime::ZERO, ByteSize::from_kb(1)),
                ShaperVerdict::Deliver { .. }
            ));
        }
        assert_eq!(
            s.admit(SimTime::ZERO, ByteSize::from_kb(1)),
            ShaperVerdict::Drop
        );
        // Once the head departs, a slot frees up.
        let later = SimTime::from_secs(2);
        assert!(matches!(
            s.admit(later, ByteSize::from_bytes(100)),
            ShaperVerdict::Deliver { .. }
        ));
    }

    #[test]
    fn auto_queue_is_twice_bdp_with_floor() {
        // 4 Mbps over a 2 ms link: BDP uses the 25 ms floor →
        // 4e6/8 * 0.025 = 12.5 KB, doubled = 25 KB.
        let cfg = ShaperConfig::new(DataRate::from_mbps(4));
        assert_eq!(cfg.queue_bytes(SimDuration::from_millis(2)), 25_000);
        // A slow link floors at 16 KB.
        let slow = ShaperConfig::new(DataRate::from_kbps(100));
        assert_eq!(slow.queue_bytes(SimDuration::from_millis(2)), 16 * 1024);
        // A long fat link uses its real delay.
        let fat = ShaperConfig::new(DataRate::from_mbps(100));
        assert_eq!(
            fat.queue_bytes(SimDuration::from_millis(40)),
            2 * 100_000_000 / 8 * 40 / 1000
        );
    }

    #[test]
    fn fifo_delay_is_cumulative_and_drains() {
        // 80 kbps = 10 KB/s, tiny burst so queuing starts immediately.
        let mut s = LinkShaper::new(
            &ShaperConfig {
                rate: DataRate::from_kbps(80),
                burst: ByteSize::from_bytes(1_000),
                queue: QueueLimit::Bytes(ByteSize::from_kb(64)),
            },
            SimDuration::from_millis(2),
        );
        let mut last = SimTime::ZERO;
        for _ in 0..5 {
            match s.admit(SimTime::ZERO, ByteSize::from_bytes(1_000)) {
                ShaperVerdict::Deliver { dequeue } => {
                    assert!(dequeue >= last, "FIFO order violated");
                    last = dequeue;
                }
                v => panic!("unexpected {v:?}"),
            }
        }
        // 5 KB minus the 1 KB burst = 4 KB backlog at 10 KB/s: the last
        // packet departs at 400 ms.
        assert_eq!(last, SimTime::from_millis(400));
    }
}
