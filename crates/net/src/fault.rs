//! Scheduled mid-session faults: the chaos engine's vocabulary.
//!
//! The paper's most revealing results come from *perturbing* live sessions
//! (`tc` bandwidth cliffs, §4.3) — but real access networks misbehave in
//! richer ways than a static whole-run impairment: WiFi loss is bursty,
//! congestion arrives and leaves, links flap, servers die. This module
//! provides
//!
//! * [`GilbertElliott`] — the classic two-state bursty-loss channel model
//!   (good state ≈ clean, bad state ≈ heavy loss, geometric sojourn times),
//! * [`FaultKind`]/[`FaultEvent`]/[`FaultPlan`] — a deterministic schedule
//!   of timed fault events that the session layer replays against a link's
//!   [`Netem`] as virtual time advances.
//!
//! A plan is pure data: replaying the same plan over the same seeds yields
//! a byte-identical run at any thread count, which is what makes the
//! resilience experiment matrix reproducible.

use crate::netem::{Netem, TokenBucket};
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};

/// Parameters of a Gilbert–Elliott two-state loss channel.
///
/// Transition probabilities are *per packet* (the model is stepped once per
/// admission): from Good the channel enters Bad with `good_to_bad`, from
/// Bad it returns with `bad_to_good`; each state drops packets i.i.d. at
/// its own rate. Mean sojourn in Bad is `1/bad_to_good` packets — the burst
/// length knob.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeConfig {
    /// P(Good → Bad) per packet.
    pub good_to_bad: f64,
    /// P(Bad → Good) per packet.
    pub bad_to_good: f64,
    /// Per-packet drop probability while Good (usually ~0).
    pub loss_good: f64,
    /// Per-packet drop probability while Bad.
    pub loss_bad: f64,
}

impl GeConfig {
    /// A congested-WiFi-shaped channel: short clean spells punctuated by
    /// loss bursts averaging ~12 packets at 60% loss.
    pub fn wifi_bursts() -> Self {
        GeConfig {
            good_to_bad: 0.02,
            bad_to_good: 0.08,
            loss_good: 0.001,
            loss_bad: 0.6,
        }
    }

    /// Stationary probability of being in the Bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.good_to_bad + self.bad_to_good;
        if denom <= 0.0 {
            return 0.0;
        }
        self.good_to_bad / denom
    }

    /// Closed-form long-run packet loss rate:
    /// `π_G·loss_good + π_B·loss_bad`.
    pub fn stationary_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        (1.0 - pb) * self.loss_good + pb * self.loss_bad
    }
}

/// How one probability in a [`GeKernel`] consumes randomness. Mirrors
/// [`SimRng::chance`] *exactly*, including its draw elision: a clamped
/// probability (`p ≤ 0` or `p ≥ 1`) decides without touching the stream,
/// only the open interval draws one uniform. Precomputing the mode per
/// state is what lets the batched kernel keep the scalar path's RNG
/// stream position bit-for-bit while hoisting the config branches out of
/// the per-packet loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DrawPlan {
    /// `p ≤ 0`: always false, no draw.
    Never,
    /// `p ≥ 1`: always true, no draw.
    Always,
    /// `0 < p < 1`: one uniform draw, compared against the threshold.
    Draw(f64),
}

impl DrawPlan {
    /// Classify a probability the way [`SimRng::chance`] treats it.
    #[inline]
    pub fn of(p: f64) -> DrawPlan {
        if p <= 0.0 {
            DrawPlan::Never
        } else if p >= 1.0 {
            DrawPlan::Always
        } else {
            DrawPlan::Draw(p)
        }
    }

    /// Evaluate the trial. Draw-for-draw identical to `rng.chance(p)` for
    /// the probability this plan was built from.
    #[inline]
    pub fn eval(self, rng: &mut SimRng) -> bool {
        match self {
            DrawPlan::Never => false,
            DrawPlan::Always => true,
            DrawPlan::Draw(p) => rng.uniform() < p,
        }
    }
}

/// Table-driven Gilbert–Elliott stepping kernel: per-state transition and
/// loss plans indexed by the current state (0 = Good, 1 = Bad), with the
/// state advance expressed as an XOR of the transition outcome — no
/// data-dependent branch on which state the channel lands in. The only
/// remaining branches select by [`DrawPlan`] mode, which is constant per
/// state for a given config and therefore perfectly predicted in a batch
/// loop.
#[derive(Clone, Copy, Debug)]
pub struct GeKernel {
    /// Transition plan per current state: `trans[0]` = P(Good→Bad),
    /// `trans[1]` = P(Bad→Good). A hit flips the state either way.
    trans: [DrawPlan; 2],
    /// Loss plan per *landed* state.
    loss: [DrawPlan; 2],
}

impl GeKernel {
    /// Build the transition/loss tables for a config.
    pub fn new(config: &GeConfig) -> Self {
        GeKernel {
            trans: [
                DrawPlan::of(config.good_to_bad),
                DrawPlan::of(config.bad_to_good),
            ],
            loss: [DrawPlan::of(config.loss_good), DrawPlan::of(config.loss_bad)],
        }
    }

    /// Advance one packet: evaluate the current state's transition plan,
    /// flip the state by XOR on a hit, then evaluate the landed state's
    /// loss plan. Returns true when the packet is dropped. Consumes draws
    /// in exactly the order and count of the scalar
    /// [`GilbertElliott::sample_drop`].
    #[inline]
    pub fn step(&self, state: &mut usize, rng: &mut SimRng) -> bool {
        let flip = self.trans[*state].eval(rng);
        *state ^= flip as usize;
        self.loss[*state].eval(rng)
    }
}

/// The stateful Gilbert–Elliott channel.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    config: GeConfig,
    in_bad: bool,
}

impl GilbertElliott {
    /// A channel starting in the Good state.
    pub fn new(config: GeConfig) -> Self {
        GilbertElliott {
            config,
            in_bad: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GeConfig {
        &self.config
    }

    /// True while the channel sits in the Bad state.
    pub fn in_bad(&self) -> bool {
        self.in_bad
    }

    /// The stepping kernel for this channel's config (for batch loops that
    /// hoist table construction out of the per-packet iteration).
    pub fn kernel(&self) -> GeKernel {
        GeKernel::new(&self.config)
    }

    /// Current state as the kernel's table index (0 = Good, 1 = Bad).
    pub fn state_index(&self) -> usize {
        self.in_bad as usize
    }

    /// Restore the state from a kernel table index after a batch run.
    pub fn set_state_index(&mut self, state: usize) {
        self.in_bad = state != 0;
    }

    /// Step the channel one packet: transition first, then sample the
    /// current state's loss. Returns true when the packet is dropped.
    pub fn sample_drop(&mut self, rng: &mut SimRng) -> bool {
        let kernel = self.kernel();
        let mut state = self.state_index();
        let dropped = kernel.step(&mut state, rng);
        self.set_state_index(state);
        dropped
    }
}

/// One kind of fault the chaos engine can inject.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Link goes dark (every packet dropped) until [`FaultKind::LinkUp`].
    LinkDown,
    /// Link comes back.
    LinkUp,
    /// Install a token-bucket rate cliff at the given rate.
    RateCliff(DataRate),
    /// Remove the rate cliff.
    RateRestore,
    /// Add a fixed extra one-way delay.
    DelaySpike(SimDuration),
    /// Remove the extra delay.
    DelayRestore,
    /// Start a Gilbert–Elliott burst-loss episode.
    BurstLossStart(GeConfig),
    /// End the burst-loss episode.
    BurstLossEnd,
    /// Start delaying a fraction of packets by `extra` (packet reorder).
    ReorderStart {
        /// Fraction of packets held back.
        prob: f64,
        /// How long a held-back packet is delayed.
        extra: SimDuration,
    },
    /// Stop reordering.
    ReorderEnd,
    /// Start duplicating a fraction of packets.
    DuplicateStart(f64),
    /// Stop duplicating.
    DuplicateEnd,
    /// The session's SFU server dies. Handled by the *session* layer, not
    /// by [`Netem`]: clients blackhole for `detect`, then spend `reconnect`
    /// reattaching to the next-nearest live site.
    ServerDown {
        /// Time-to-detect: how long clients keep talking to the dead site.
        detect: SimDuration,
        /// Reconnection gap once the failover target is chosen.
        reconnect: SimDuration,
    },
}

impl FaultKind {
    /// Stable short name, used as the flight-recorder site label.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LinkDown => "link_down",
            FaultKind::LinkUp => "link_up",
            FaultKind::RateCliff(_) => "rate_cliff",
            FaultKind::RateRestore => "rate_restore",
            FaultKind::DelaySpike(_) => "delay_spike",
            FaultKind::DelayRestore => "delay_restore",
            FaultKind::BurstLossStart(_) => "burst_loss_start",
            FaultKind::BurstLossEnd => "burst_loss_end",
            FaultKind::ReorderStart { .. } => "reorder_start",
            FaultKind::ReorderEnd => "reorder_end",
            FaultKind::DuplicateStart(_) => "duplicate_start",
            FaultKind::DuplicateEnd => "duplicate_end",
            FaultKind::ServerDown { .. } => "server_down",
        }
    }

    /// True for the restoring half of an onset/recovery pair.
    /// `ServerDown` has no paired recovery event — the session layer's
    /// failover *is* the recovery — so it reports `false`.
    pub fn is_recovery(&self) -> bool {
        matches!(
            self,
            FaultKind::LinkUp
                | FaultKind::RateRestore
                | FaultKind::DelayRestore
                | FaultKind::BurstLossEnd
                | FaultKind::ReorderEnd
                | FaultKind::DuplicateEnd
        )
    }
}

/// A fault scheduled at an instant of virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered schedule of fault events with a replay
/// cursor. Construction sorts events by time (stable, so two events at the
/// same instant fire in insertion order).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// A plan from arbitrary events (sorted on construction).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events, cursor: 0 }
    }

    /// An empty plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// All scheduled events, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events due at or before `now` that have not fired yet. Advances the
    /// replay cursor; call with non-decreasing `now`.
    pub fn due(&mut self, now: SimTime) -> &[FaultEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }

    /// Reset the replay cursor (for re-running the same plan).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Merge several plans into one time-ordered schedule.
    pub fn merged(plans: impl IntoIterator<Item = FaultPlan>) -> Self {
        FaultPlan::new(plans.into_iter().flat_map(|p| p.events).collect())
    }

    // --- episode builders -------------------------------------------

    /// A link flap: down at `at`, back up after `outage`.
    pub fn flap(at: SimTime, outage: SimDuration) -> Self {
        FaultPlan::new(vec![
            FaultEvent {
                at,
                kind: FaultKind::LinkDown,
            },
            FaultEvent {
                at: at.saturating_add(outage),
                kind: FaultKind::LinkUp,
            },
        ])
    }

    /// A bandwidth cliff: shape to `rate` at `at`, restore after `hold`.
    pub fn rate_cliff(at: SimTime, rate: DataRate, hold: SimDuration) -> Self {
        FaultPlan::new(vec![
            FaultEvent {
                at,
                kind: FaultKind::RateCliff(rate),
            },
            FaultEvent {
                at: at.saturating_add(hold),
                kind: FaultKind::RateRestore,
            },
        ])
    }

    /// A delay spike of `extra` held for `hold`.
    pub fn delay_spike(at: SimTime, extra: SimDuration, hold: SimDuration) -> Self {
        FaultPlan::new(vec![
            FaultEvent {
                at,
                kind: FaultKind::DelaySpike(extra),
            },
            FaultEvent {
                at: at.saturating_add(hold),
                kind: FaultKind::DelayRestore,
            },
        ])
    }

    /// A Gilbert–Elliott burst-loss episode lasting `hold`.
    pub fn burst_loss(at: SimTime, config: GeConfig, hold: SimDuration) -> Self {
        FaultPlan::new(vec![
            FaultEvent {
                at,
                kind: FaultKind::BurstLossStart(config),
            },
            FaultEvent {
                at: at.saturating_add(hold),
                kind: FaultKind::BurstLossEnd,
            },
        ])
    }

    /// A reorder episode: `prob` of packets held back by `extra` for `hold`.
    pub fn reorder_episode(
        at: SimTime,
        prob: f64,
        extra: SimDuration,
        hold: SimDuration,
    ) -> Self {
        FaultPlan::new(vec![
            FaultEvent {
                at,
                kind: FaultKind::ReorderStart { prob, extra },
            },
            FaultEvent {
                at: at.saturating_add(hold),
                kind: FaultKind::ReorderEnd,
            },
        ])
    }

    /// A duplication episode at probability `prob` for `hold`.
    pub fn duplicate_episode(at: SimTime, prob: f64, hold: SimDuration) -> Self {
        FaultPlan::new(vec![
            FaultEvent {
                at,
                kind: FaultKind::DuplicateStart(prob),
            },
            FaultEvent {
                at: at.saturating_add(hold),
                kind: FaultKind::DuplicateEnd,
            },
        ])
    }

    /// A server outage at `at` with the given detection and reconnection
    /// windows (session-layer failover drill).
    pub fn server_outage(at: SimTime, detect: SimDuration, reconnect: SimDuration) -> Self {
        FaultPlan::new(vec![FaultEvent {
            at,
            kind: FaultKind::ServerDown { detect, reconnect },
        }])
    }
}

/// Apply a netem-level fault to a link's impairment state. Session-layer
/// kinds ([`FaultKind::ServerDown`]) are ignored here — the caller routes
/// those to its own failover machinery.
pub fn apply_to_netem(netem: &mut Netem, kind: &FaultKind) {
    match kind {
        FaultKind::LinkDown => netem.down = true,
        FaultKind::LinkUp => netem.down = false,
        FaultKind::RateCliff(rate) => {
            netem.shaper = Some(TokenBucket::new(*rate, ByteSize::from_kb(32)));
        }
        FaultKind::RateRestore => netem.shaper = None,
        FaultKind::DelaySpike(extra) => netem.extra_delay = *extra,
        FaultKind::DelayRestore => netem.extra_delay = SimDuration::ZERO,
        FaultKind::BurstLossStart(cfg) => netem.ge = Some(GilbertElliott::new(*cfg)),
        FaultKind::BurstLossEnd => netem.ge = None,
        FaultKind::ReorderStart { prob, extra } => {
            netem.reorder = *prob;
            netem.reorder_extra = *extra;
        }
        FaultKind::ReorderEnd => {
            netem.reorder = 0.0;
            netem.reorder_extra = SimDuration::ZERO;
        }
        FaultKind::DuplicateStart(prob) => netem.duplicate = *prob,
        FaultKind::DuplicateEnd => netem.duplicate = 0.0,
        FaultKind::ServerDown { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_replays_in_order() {
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                at: SimTime::from_secs(4),
                kind: FaultKind::LinkUp,
            },
            FaultEvent {
                at: SimTime::from_secs(2),
                kind: FaultKind::LinkDown,
            },
        ]);
        assert_eq!(plan.events()[0].kind, FaultKind::LinkDown);
        assert!(plan.due(SimTime::from_secs(1)).is_empty());
        let due = plan.due(SimTime::from_secs(3));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::LinkDown);
        // Already-fired events never fire again.
        assert!(plan.due(SimTime::from_secs(3)).is_empty());
        assert_eq!(plan.due(SimTime::from_secs(10)).len(), 1);
        plan.rewind();
        assert_eq!(plan.due(SimTime::from_secs(10)).len(), 2);
    }

    #[test]
    fn merged_plans_interleave_by_time() {
        let a = FaultPlan::flap(SimTime::from_secs(1), SimDuration::from_secs(5));
        let b = FaultPlan::delay_spike(
            SimTime::from_secs(2),
            SimDuration::from_millis(100),
            SimDuration::from_secs(1),
        );
        let m = FaultPlan::merged([a, b]);
        let times: Vec<u64> = m.events().iter().map(|e| e.at.as_nanos() / 1_000_000_000).collect();
        assert_eq!(times, vec![1, 2, 3, 6]);
    }

    #[test]
    fn faults_mutate_and_restore_netem() {
        let mut n = Netem::none();
        apply_to_netem(&mut n, &FaultKind::LinkDown);
        assert!(n.down);
        apply_to_netem(&mut n, &FaultKind::LinkUp);
        assert!(!n.down);
        apply_to_netem(&mut n, &FaultKind::RateCliff(DataRate::from_kbps(400)));
        assert!(n.shaper.is_some());
        apply_to_netem(&mut n, &FaultKind::RateRestore);
        assert!(n.shaper.is_none());
        apply_to_netem(&mut n, &FaultKind::DelaySpike(SimDuration::from_millis(300)));
        assert_eq!(n.extra_delay, SimDuration::from_millis(300));
        apply_to_netem(&mut n, &FaultKind::DelayRestore);
        assert!(n.extra_delay.is_zero());
        apply_to_netem(&mut n, &FaultKind::BurstLossStart(GeConfig::wifi_bursts()));
        assert!(n.ge.is_some());
        apply_to_netem(&mut n, &FaultKind::BurstLossEnd);
        assert!(n.ge.is_none());
        apply_to_netem(
            &mut n,
            &FaultKind::ReorderStart {
                prob: 0.2,
                extra: SimDuration::from_millis(30),
            },
        );
        assert_eq!(n.reorder, 0.2);
        apply_to_netem(&mut n, &FaultKind::ReorderEnd);
        assert_eq!(n.reorder, 0.0);
        apply_to_netem(&mut n, &FaultKind::DuplicateStart(0.1));
        assert_eq!(n.duplicate, 0.1);
        apply_to_netem(&mut n, &FaultKind::DuplicateEnd);
        assert_eq!(n.duplicate, 0.0);
        // Session-layer kinds leave netem untouched.
        let before = format!("{n:?}");
        apply_to_netem(
            &mut n,
            &FaultKind::ServerDown {
                detect: SimDuration::from_secs(1),
                reconnect: SimDuration::from_millis(500),
            },
        );
        assert_eq!(before, format!("{n:?}"));
    }

    #[test]
    fn ge_stationary_arithmetic() {
        let cfg = GeConfig {
            good_to_bad: 0.01,
            bad_to_good: 0.09,
            loss_good: 0.0,
            loss_bad: 0.5,
        };
        assert!((cfg.stationary_bad() - 0.1).abs() < 1e-12);
        assert!((cfg.stationary_loss() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ge_losses_cluster_in_bursts() {
        let mut ge = GilbertElliott::new(GeConfig {
            good_to_bad: 0.01,
            bad_to_good: 0.2,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        let mut rng = SimRng::seed_from_u64(11);
        let drops: Vec<bool> = (0..50_000).map(|_| ge.sample_drop(&mut rng)).collect();
        // Probability a drop is followed by another drop must far exceed
        // the marginal drop rate — the definition of burstiness.
        let total = drops.iter().filter(|&&d| d).count() as f64 / drops.len() as f64;
        let pairs = drops.windows(2).filter(|w| w[0]).count();
        let repeat = drops.windows(2).filter(|w| w[0] && w[1]).count() as f64 / pairs as f64;
        assert!(repeat > total * 3.0, "repeat {repeat} vs marginal {total}");
    }
}
