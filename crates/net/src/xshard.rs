//! Cross-shard link buffers for the fleet-scale conservative-PDES engine.
//!
//! The sharded simulator ([`visionsim_core::shard`]) exchanges site-to-site
//! messages at lookahead barriers. This module supplies the network-side
//! plumbing those exchanges ride on:
//!
//! * [`LinkMatrix`] — the dense one-way inter-site latency table built from
//!   `geo`'s propagation model. Its minimum positive entry *is* the
//!   engine's lookahead, so the matrix is the single source of truth for
//!   both message timing and synchronization safety.
//! * [`SiteEgress`] — the per-site send half: stamps each outgoing message
//!   with a monotone per-source sequence number and the matrix delivery
//!   time. The `(deliver_at, src_site, src_seq)` triple is what keeps
//!   ingress ordering deterministic at any shard count.
//! * [`ShardIngress`] — the receive half: a staging buffer that accepts
//!   envelope batches from the barrier exchange and drains them in the
//!   canonical order.

use visionsim_core::shard::Envelope;
use visionsim_core::time::{SimDuration, SimTime};

/// Dense one-way latency matrix over `n` sites, nanosecond entries.
#[derive(Clone, Debug)]
pub struct LinkMatrix {
    n: usize,
    one_way_ns: Vec<u64>,
}

impl LinkMatrix {
    /// Build from a latency function over site index pairs. The diagonal
    /// is forced to zero (a site never sends to itself over the backbone).
    pub fn from_fn(n: usize, mut one_way: impl FnMut(usize, usize) -> SimDuration) -> Self {
        assert!(n > 0, "latency matrix needs at least one site");
        let mut one_way_ns = vec![0u64; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    one_way_ns[a * n + b] = one_way(a, b).as_nanos();
                }
            }
        }
        LinkMatrix { n, one_way_ns }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix covers no site pairs.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// One-way latency from site `a` to site `b`.
    pub fn one_way(&self, a: usize, b: usize) -> SimDuration {
        SimDuration::from_nanos(self.one_way_ns[a * self.n + b])
    }

    /// Minimum off-diagonal latency — the engine's safe lookahead.
    /// Panics if any off-diagonal entry is zero (zero-latency links make
    /// conservative synchronization impossible).
    pub fn min_latency(&self) -> SimDuration {
        let mut min = u64::MAX;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    let ns = self.one_way_ns[a * self.n + b];
                    assert!(ns > 0, "zero-latency link {a} -> {b} breaks lookahead");
                    min = min.min(ns);
                }
            }
        }
        assert!(min != u64::MAX, "single-site matrix has no links");
        SimDuration::from_nanos(min)
    }
}

/// Per-site egress: stamps outgoing cross-site messages with delivery
/// times from the [`LinkMatrix`] and a monotone sequence number.
#[derive(Clone, Debug)]
pub struct SiteEgress {
    site: u32,
    seq: u64,
}

impl SiteEgress {
    /// Egress for site index `site`.
    pub fn new(site: u32) -> Self {
        SiteEgress { site, seq: 0 }
    }

    /// Messages sent so far.
    pub fn sent(&self) -> u64 {
        self.seq
    }

    /// Stamp and emit one message onto `out`. `dst` must differ from the
    /// owning site — intra-site signaling never crosses the backbone.
    pub fn send<M>(
        &mut self,
        now: SimTime,
        dst: u32,
        matrix: &LinkMatrix,
        msg: M,
        out: &mut Vec<Envelope<M>>,
    ) {
        assert_ne!(dst, self.site, "cross-site egress addressed to itself");
        self.seq += 1;
        out.push(Envelope {
            sent_at: now,
            deliver_at: now.saturating_add(matrix.one_way(self.site as usize, dst as usize)),
            src_site: self.site,
            dst_site: dst,
            src_seq: self.seq,
            msg,
        });
    }
}

/// Per-shard ingress staging buffer: accepts envelope batches from the
/// barrier exchange, hands them back in `(deliver_at, src_site, src_seq)`
/// order.
#[derive(Clone, Debug, Default)]
pub struct ShardIngress<M> {
    pending: Vec<Envelope<M>>,
}

impl<M> ShardIngress<M> {
    /// Empty buffer.
    pub fn new() -> Self {
        ShardIngress {
            pending: Vec::new(),
        }
    }

    /// Stage one envelope.
    pub fn accept(&mut self, env: Envelope<M>) {
        self.pending.push(env);
    }

    /// Envelopes currently staged.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drain everything staged, in canonical delivery order.
    pub fn drain_sorted(&mut self) -> impl Iterator<Item = Envelope<M>> + '_ {
        self.pending.sort_by_key(Envelope::order_key);
        self.pending.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix3() -> LinkMatrix {
        // Asymmetric on purpose: one_way(a, b) = (a + 1) * 10ms + b * 1ms.
        LinkMatrix::from_fn(3, |a, b| {
            SimDuration::from_millis((a as u64 + 1) * 10 + b as u64)
        })
    }

    #[test]
    fn matrix_lookup_and_min_latency() {
        let m = matrix3();
        assert_eq!(m.len(), 3);
        assert_eq!(m.one_way(0, 0), SimDuration::ZERO);
        assert_eq!(m.one_way(1, 2), SimDuration::from_millis(22));
        assert_eq!(m.one_way(2, 1), SimDuration::from_millis(31));
        // min over off-diagonal: one_way(0, 1) = 11 ms.
        assert_eq!(m.min_latency(), SimDuration::from_millis(11));
    }

    #[test]
    #[should_panic(expected = "zero-latency link")]
    fn zero_latency_links_are_rejected() {
        LinkMatrix::from_fn(2, |_, _| SimDuration::ZERO).min_latency();
    }

    #[test]
    fn egress_stamps_monotone_sequence_and_matrix_delay() {
        let m = matrix3();
        let mut egress = SiteEgress::new(1);
        let mut out = Vec::new();
        let now = SimTime::from_secs(5);
        egress.send(now, 0, &m, "a", &mut out);
        egress.send(now, 2, &m, "b", &mut out);
        assert_eq!(egress.sent(), 2);
        assert_eq!(out[0].src_seq, 1);
        assert_eq!(out[1].src_seq, 2);
        assert_eq!(
            out[0].deliver_at,
            now.saturating_add(SimDuration::from_millis(20))
        );
        assert_eq!(
            out[1].deliver_at,
            now.saturating_add(SimDuration::from_millis(22))
        );
        assert_eq!(out[0].sent_at, now);
    }

    #[test]
    #[should_panic(expected = "addressed to itself")]
    fn self_send_is_rejected() {
        let m = matrix3();
        let mut out = Vec::new();
        SiteEgress::new(2).send(SimTime::ZERO, 2, &m, (), &mut out);
    }

    #[test]
    fn ingress_drains_in_canonical_order() {
        let mut ingress = ShardIngress::new();
        let env = |deliver_ms: u64, src: u32, seq: u64| Envelope {
            sent_at: SimTime::ZERO,
            deliver_at: SimTime::from_millis(deliver_ms),
            src_site: src,
            dst_site: 9,
            src_seq: seq,
            msg: (),
        };
        ingress.accept(env(20, 1, 2));
        ingress.accept(env(10, 2, 1));
        ingress.accept(env(10, 1, 5));
        ingress.accept(env(10, 1, 3));
        let order: Vec<(u64, u32, u64)> = ingress
            .drain_sorted()
            .map(|e| (e.deliver_at.as_nanos() / 1_000_000, e.src_site, e.src_seq))
            .collect();
        assert_eq!(order, vec![(10, 1, 3), (10, 1, 5), (10, 2, 1), (20, 1, 2)]);
        assert!(ingress.is_empty());
    }
}
