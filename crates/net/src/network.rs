//! The network: topology + event loop.
//!
//! Nodes are endpoints or forwarders; simplex links connect them. Packets
//! are source-routed along the minimum-latency path computed by Dijkstra
//! over link delays at send time (route cache invalidated on topology
//! change). Delivered packets land in the destination node's inbox for the
//! application layer to poll; taps observe everything that transits their
//! node.
//!
//! # The zero-copy fast path
//!
//! The event loop is the hottest code in the workspace — every experiment
//! artifact funnels through it — so the datapath is built around shared
//! immutable buffers and O(1)-per-hop bookkeeping:
//!
//! * payloads are `Arc<[u8]>`, allocated once when the frame is emitted
//!   and shared by every copy (duplicates, retransmissions, SFU fan-out);
//! * routes are resolved once into `Arc<[LinkId]>` handed out by the
//!   route cache; a packet carries a `(route, hop)` cursor, never a
//!   per-event clone of the link list;
//! * in-flight packets live in a slab (`flights` + LIFO free list) and
//!   [`EventQueue`] stores a fixed-size POD referencing a slot, so heap
//!   sift operations move a few words instead of owning payload vectors.
//!
//! Forwarding a warmed-up packet one hop performs no heap allocation (the
//! `alloc_gate` integration test pins this with a counting allocator, and
//! [`PER_HOP_ALLOC_BUDGET`] is the gated budget).

use crate::link::{LinkConfig, LinkId, LinkState};
use crate::netem::NetemVerdict;
use crate::packet::{Packet, PortPair};
use crate::tap::{Tap, TapDirection, TapId, TapRecord};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::{Arc, OnceLock};
use visionsim_core::event::EventQueue;
use visionsim_core::metrics::{self, Class};
use visionsim_core::sanitizer;
use visionsim_core::trace::{self, TraceKind};
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::ByteSize;
use visionsim_geo::coords::GeoPoint;
use visionsim_geo::geodb::{GeoDb, NetAddr};

/// Heap allocations the steady-state datapath may perform per hop, gated
/// by the `alloc_gate` integration test: zero for the forwarding machinery
/// itself, with one budgeted for amortized growth of tap-record storage.
pub const PER_HOP_ALLOC_BUDGET: usize = 1;

/// Cached handles into the metrics registry, aggregated across every
/// [`Network`] instance in the process. Counter sites mirror the
/// [`crate::link::LinkStats`] bookkeeping exactly, so the process-wide
/// totals satisfy the same conservation identity the sanitizer checks:
/// `link_bytes_sent + link_dup_bytes == link_bytes_exited` once all
/// traffic has drained (`net/in_flight_bytes` holds the residual).
///
/// Everything here is [`Class::Sim`]: pure functions of the seeds, updated
/// via commutative atomic adds, so the totals are identical at any worker
/// thread count.
struct NetMetrics {
    link_packets_sent: metrics::Counter,
    link_bytes_sent: metrics::Counter,
    link_dup_bytes: metrics::Counter,
    link_bytes_exited: metrics::Counter,
    packets_dropped: metrics::Counter,
    in_flight_bytes: metrics::Gauge,
    queue_depth: metrics::Gauge,
}

fn net_metrics() -> &'static NetMetrics {
    static M: OnceLock<NetMetrics> = OnceLock::new();
    M.get_or_init(|| NetMetrics {
        link_packets_sent: metrics::counter("net/link_packets_sent", Class::Sim),
        link_bytes_sent: metrics::counter("net/link_bytes_sent", Class::Sim),
        link_dup_bytes: metrics::counter("net/link_dup_bytes", Class::Sim),
        link_bytes_exited: metrics::counter("net/link_bytes_exited", Class::Sim),
        packets_dropped: metrics::counter("net/packets_dropped", Class::Sim),
        // Scheduled-minus-drained event depth; deltas commute, so the
        // gauge stays deterministic across thread counts (a `set` of the
        // local queue length would not — last writer would win).
        in_flight_bytes: metrics::gauge("net/in_flight_bytes", Class::Sim),
        queue_depth: metrics::gauge("net/queue_depth", Class::Sim),
    })
}

/// Identifier of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A node in the topology.
#[derive(Clone, Debug)]
struct Node {
    name: String,
    addr: NetAddr,
    #[allow(dead_code)]
    location: GeoPoint,
    inbox: VecDeque<Delivered>,
    taps: Vec<usize>,
}

/// A packet delivered to its destination.
#[derive(Clone, Debug)]
pub struct Delivered {
    /// The packet.
    pub packet: Packet,
    /// Delivery timestamp.
    pub at: SimTime,
}

/// One in-flight copy of a packet: the packet itself plus its route
/// cursor. Lives in the network's flight slab; queue events reference it
/// by slot index. Cloning (for the duplication impairment) bumps two
/// refcounts — payload bytes and the route are shared.
#[derive(Clone, Debug)]
struct Flight {
    packet: Packet,
    route: Arc<[LinkId]>,
    /// Position in `route` currently being traversed.
    hop: u32,
}

/// Multiply-rotate hasher for the route cache's small fixed-width
/// `(usize, usize)` keys. The default SipHash is DoS-hardened for
/// untrusted input; cache keys here are simulator-internal node indices,
/// and the hash sits on the per-send fast path.
#[derive(Default)]
struct RouteKeyHasher(u64);

impl std::hash::Hasher for RouteKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_usize(&mut self, n: usize) {
        self.0 = (self.0 ^ n as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23);
    }
}

type RouteCache =
    HashMap<(usize, usize), Option<Arc<[LinkId]>>, std::hash::BuildHasherDefault<RouteKeyHasher>>;

/// Fixed-size POD event: the queue owns indices, never payloads.
#[derive(Clone, Copy, Debug)]
enum NetEvent {
    /// The flight in slot `flight` finishes traversing `route[hop]`
    /// (serialization + delay + impairments) and pops out at the link's
    /// tail node.
    LinkExit {
        flight: u32,
    },
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<LinkState>,
    /// Outgoing link ids per node.
    adjacency: Vec<Vec<LinkId>>,
    queue: EventQueue<NetEvent>,
    route_cache: RouteCache,
    /// One-entry memo in front of `route_cache`: steady traffic re-sends
    /// along the same `(src, dst)` pair, so most lookups skip the hash map
    /// entirely. Invalidated together with the cache.
    last_route: Option<(usize, usize, Arc<[LinkId]>)>,
    /// In-flight packet slab; slot indices are what events carry.
    flights: Vec<Option<Flight>>,
    /// Reusable slab slots (LIFO, so a forwarded packet keeps its slot).
    free_flights: Vec<u32>,
    taps: Vec<Tap>,
    geodb: GeoDb,
    rng: SimRng,
    next_seq: u64,
    dropped: u64,
}

impl Network {
    /// An empty network with the given RNG seed (impairment sampling).
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
            queue: EventQueue::new(),
            route_cache: RouteCache::default(),
            last_route: None,
            flights: Vec::new(),
            free_flights: Vec::new(),
            taps: Vec::new(),
            geodb: GeoDb::new(),
            rng: SimRng::seed_from_u64(seed),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The geolocation database tracking every node added so far.
    pub fn geodb(&self) -> &GeoDb {
        &self.geodb
    }

    /// Add a node; its address is allocated in the region-coded block for
    /// `location` and registered under `org` in the geo database.
    pub fn add_node(&mut self, name: &str, org: &str, location: GeoPoint) -> NodeId {
        let addr = self.geodb.allocate(org, name, location);
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_string(),
            addr,
            location,
            inbox: VecDeque::new(),
            taps: Vec::new(),
        });
        self.adjacency.push(Vec::new());
        self.route_cache.clear();
        self.last_route = None;
        id
    }

    /// The address of a node.
    pub fn addr(&self, node: NodeId) -> NetAddr {
        self.nodes[node.0].addr
    }

    /// The node owning an address, if any.
    pub fn node_of_addr(&self, addr: NetAddr) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.addr == addr)
            .map(NodeId)
    }

    /// The node's display name.
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Add a simplex link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) -> LinkId {
        assert!(from != to, "self-links are not allowed");
        let id = LinkId(self.links.len());
        self.links.push(LinkState::new(from.0, to.0, config));
        self.adjacency[from.0].push(id);
        self.route_cache.clear();
        self.last_route = None;
        id
    }

    /// Add a duplex link (two mirrored simplex links).
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, config.clone());
        let ba = self.add_link(b, a, config);
        (ab, ba)
    }

    /// Mutable access to a link's impairments (re-configuring `tc` mid-run).
    pub fn netem_mut(&mut self, link: LinkId) -> &mut crate::netem::Netem {
        &mut self.links[link.0].config.netem
    }

    /// Take a link down (or back up) *and* invalidate the route cache, so
    /// subsequently-sent packets route around it. Plain `netem_mut` with
    /// `down = true` keeps existing routes — packets blackhole on the dead
    /// link, which models an outage the routing layer has not noticed yet;
    /// `set_down` models one it has.
    pub fn set_down(&mut self, link: LinkId, down: bool) {
        self.links[link.0].config.netem.down = down;
        self.route_cache.clear();
        self.last_route = None;
    }

    /// Every link touching `node` in either direction (for taking a whole
    /// node out of service).
    pub fn links_of(&self, node: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.from == node.0 || l.to == node.0)
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Link counters.
    pub fn link_stats(&self, link: LinkId) -> crate::link::LinkStats {
        self.links[link.0].stats
    }

    /// Total packets dropped anywhere in the network so far.
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }

    /// Register a tap on `node`.
    pub fn add_tap(&mut self, node: NodeId) -> TapId {
        let id = TapId(self.taps.len());
        self.taps.push(Tap {
            node: node.0,
            records: Vec::new(),
        });
        self.nodes[node.0].taps.push(id.0);
        id
    }

    /// Records captured by a tap so far.
    pub fn tap_records(&self, tap: TapId) -> &[TapRecord] {
        &self.taps[tap.0].records
    }

    /// Drain records captured by a tap.
    pub fn take_tap_records(&mut self, tap: TapId) -> Vec<TapRecord> {
        std::mem::take(&mut self.taps[tap.0].records)
    }

    /// Associated (not `&mut self`) so callers can observe a packet still
    /// parked in the flight slab: `nodes` and `taps` are disjoint field
    /// borrows, and the node's tap list is only read while tap storage is
    /// written — no per-packet clone of the id list.
    fn record_tap(
        nodes: &[Node],
        taps: &mut [Tap],
        node: usize,
        at: SimTime,
        packet: &Packet,
        dir: TapDirection,
    ) {
        let tap_ids = &nodes[node].taps;
        if tap_ids.is_empty() {
            return;
        }
        let record = TapRecord::capture(at, packet, dir);
        for &t in tap_ids {
            taps[t].records.push(record);
        }
    }

    /// Minimum-latency route (sequence of links) from `src` to `dst`,
    /// computed by Dijkstra over link propagation delays, interned into a
    /// shared slice, and cached — every packet on the path carries a
    /// refcount on the same allocation.
    pub fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Arc<[LinkId]>> {
        if let Some((s, d, r)) = &self.last_route {
            if *s == src.0 && *d == dst.0 {
                return Some(r.clone());
            }
        }
        let route = match self.route_cache.get(&(src.0, dst.0)) {
            Some(cached) => cached.clone(),
            None => {
                let route: Option<Arc<[LinkId]>> = self.dijkstra(src.0, dst.0).map(Arc::from);
                self.route_cache.insert((src.0, dst.0), route.clone());
                route
            }
        };
        if let Some(r) = &route {
            self.last_route = Some((src.0, dst.0, r.clone()));
        }
        route
    }

    fn dijkstra(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
        #[derive(PartialEq, Eq)]
        struct Entry(SimDuration, usize);
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.cmp(&self.0).then_with(|| other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let n = self.nodes.len();
        let mut dist = vec![SimDuration::from_secs(u64::MAX / 2_000_000_000); n];
        let mut prev: Vec<Option<LinkId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src] = SimDuration::ZERO;
        heap.push(Entry(SimDuration::ZERO, src));
        while let Some(Entry(d, u)) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == dst {
                break;
            }
            for &lid in &self.adjacency[u] {
                let link = &self.links[lid.0];
                // Administratively-down links carry no routes (only
                // relevant once the cache is invalidated; see `set_down`).
                if link.config.netem.down {
                    continue;
                }
                let nd = d + link.config.delay;
                if nd < dist[link.to] {
                    dist[link.to] = nd;
                    prev[link.to] = Some(lid);
                    heap.push(Entry(nd, link.to));
                }
            }
        }
        if src != dst && prev[dst].is_none() {
            return None;
        }
        let mut route = Vec::new();
        let mut cur = dst;
        while cur != src {
            let lid = prev[cur]?;
            route.push(lid);
            cur = self.links[lid.0].from;
        }
        route.reverse();
        Some(route)
    }

    /// Send a payload from `src` to `dst`. Returns the packet sequence
    /// number, or `None` when no route exists or the first hop drops it.
    ///
    /// Accepts anything convertible into a shared buffer: a `Vec<u8>` is
    /// interned once, an `Arc<[u8]>` (e.g. a frame already emitted by
    /// transport framing, or a delivered packet's payload being relayed)
    /// is shared without copying a byte.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        ports: PortPair,
        payload: impl Into<Arc<[u8]>>,
    ) -> Option<u64> {
        let route = self.route(src, dst)?;
        assert!(!route.is_empty(), "send to self is not supported");
        let seq = self.next_seq;
        self.next_seq += 1;
        let now = self.now();
        let packet = Packet {
            seq,
            src: self.nodes[src.0].addr,
            dst: self.nodes[dst.0].addr,
            ports,
            payload: payload.into(),
            sent_at: now,
            corrupted: false,
        };
        Self::record_tap(
            &self.nodes,
            &mut self.taps,
            src.0,
            now,
            &packet,
            TapDirection::Egress,
        );
        if trace::enabled() {
            trace::record(
                TraceKind::PacketSend,
                now.as_nanos(),
                0,
                seq,
                src.0 as u64,
                dst.0 as u64,
            );
        }
        let first = route[0];
        let size = packet.wire_size();
        let slot = self.alloc_flight(Flight {
            packet,
            route,
            hop: 0,
        });
        if self.admit_slot(slot, first, size) {
            Some(seq)
        } else {
            None
        }
    }

    /// Park a flight in the slab, reusing a freed slot when one exists.
    /// Steady-state traffic allocates nothing here: the slab grows to the
    /// in-flight high-water mark once and slots recycle LIFO.
    fn alloc_flight(&mut self, flight: Flight) -> u32 {
        match self.free_flights.pop() {
            Some(slot) => {
                self.flights[slot as usize] = Some(flight);
                slot
            }
            None => {
                let slot = self.flights.len() as u32;
                self.flights.push(Some(flight));
                slot
            }
        }
    }

    /// Remove and return the flight in `slot`, releasing the slot.
    fn free_flight(&mut self, slot: u32) -> Flight {
        self.free_flights.push(slot);
        self.flights[slot as usize]
            .take()
            .expect("event referenced an empty flight slot")
    }

    /// Admit the flight in `slot` onto the link its cursor points at.
    /// The flight stays in its slab slot for the link crossing; only the
    /// rare duplication and drop outcomes touch the slab at all. Returns
    /// false (releasing the slot) if the link dropped the packet.
    fn admit_slot(&mut self, slot: u32, lid: LinkId, size: ByteSize) -> bool {
        let now = self.now();
        let (exit_time, dup_exit, corrupt) = {
            let link = &mut self.links[lid.0];
            let Some(serialized) = link.serialize(now, size) else {
                self.dropped += 1;
                net_metrics().packets_dropped.inc();
                let flight = self.free_flight(slot);
                if trace::enabled() {
                    trace::record(
                        TraceKind::PacketDrop,
                        now.as_nanos(),
                        0,
                        flight.packet.seq,
                        lid.0 as u64,
                        0,
                    );
                }
                return false;
            };
            match link.config.netem.apply(now, size, &mut self.rng) {
                NetemVerdict::Drop => {
                    link.stats.netem_drops += 1;
                    self.dropped += 1;
                    net_metrics().packets_dropped.inc();
                    let flight = self.free_flight(slot);
                    if trace::enabled() {
                        trace::record(
                            TraceKind::PacketDrop,
                            now.as_nanos(),
                            0,
                            flight.packet.seq,
                            lid.0 as u64,
                            0,
                        );
                    }
                    return false;
                }
                NetemVerdict::Deliver { delay, corrupt } => {
                    link.stats.sent += 1;
                    link.stats.bytes += size.as_bytes();
                    link.stats.in_flight += 1;
                    link.stats.in_flight_bytes += size.as_bytes();
                    let m = net_metrics();
                    m.link_packets_sent.inc();
                    m.link_bytes_sent.add(size.as_bytes());
                    m.in_flight_bytes.add(size.as_bytes() as i64);
                    (serialized + link.config.delay + delay, None, corrupt)
                }
                NetemVerdict::Duplicate {
                    delay,
                    dup_delay,
                    corrupt,
                } => {
                    link.stats.sent += 1;
                    link.stats.duplicated += 1;
                    link.stats.bytes += size.as_bytes();
                    link.stats.dup_bytes += size.as_bytes();
                    // Both copies are on the wire until their exits fire.
                    link.stats.in_flight += 2;
                    link.stats.in_flight_bytes += 2 * size.as_bytes();
                    let m = net_metrics();
                    m.link_packets_sent.inc();
                    m.link_bytes_sent.add(size.as_bytes());
                    m.link_dup_bytes.add(size.as_bytes());
                    m.in_flight_bytes.add(2 * size.as_bytes() as i64);
                    let base = serialized + link.config.delay;
                    (base + delay, Some(base + dup_delay), corrupt)
                }
            }
        };
        if corrupt {
            self.flights[slot as usize]
                .as_mut()
                .expect("corrupting an empty flight slot")
                .packet
                .corrupted = true;
        }
        if let Some(dup_at) = dup_exit {
            // The duplicate copy forwards independently from this hop on;
            // the clone bumps the payload and route refcounts — no bytes
            // are copied. Scheduled before the primary so same-instant
            // FIFO tie-breaking is stable across refactors.
            let dup = self
                .flights
                .get(slot as usize)
                .and_then(|f| f.clone())
                .expect("duplicating an empty flight slot");
            let dup = self.alloc_flight(dup);
            self.queue.schedule(dup_at, NetEvent::LinkExit { flight: dup });
            net_metrics().queue_depth.add(1);
        }
        self.queue.schedule(exit_time, NetEvent::LinkExit { flight: slot });
        net_metrics().queue_depth.add(1);
        true
    }

    /// Advance the simulation to `until`, processing all traffic events.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(ev) = self.queue.pop_if_due(until) {
            match ev.payload {
                NetEvent::LinkExit { flight: slot } => {
                    let at = ev.at;
                    net_metrics().queue_depth.add(-1);
                    // Read the cursor — and advance it when there are hops
                    // left — without evicting the flight: a forwarded
                    // packet stays in its slot hop after hop.
                    let (lid, size, next) = {
                        let flight = self.flights[slot as usize]
                            .as_mut()
                            .expect("event referenced an empty flight slot");
                        let hop = flight.hop as usize;
                        let lid = flight.route[hop];
                        let next = flight.route.get(hop + 1).copied();
                        if next.is_some() {
                            flight.hop += 1;
                        }
                        (lid, flight.packet.wire_size(), next)
                    };
                    let node = {
                        let link = &mut self.links[lid.0];
                        link.stats.exited += 1;
                        link.stats.exited_bytes += size.as_bytes();
                        link.stats.in_flight -= 1;
                        link.stats.in_flight_bytes -= size.as_bytes();
                        link.to
                    };
                    let m = net_metrics();
                    m.link_bytes_exited.add(size.as_bytes());
                    m.in_flight_bytes.add(-(size.as_bytes() as i64));
                    if let Some(next_lid) = next {
                        let flight = self.flights[slot as usize]
                            .as_ref()
                            .expect("event referenced an empty flight slot");
                        Self::record_tap(
                            &self.nodes,
                            &mut self.taps,
                            node,
                            at,
                            &flight.packet,
                            TapDirection::Transit,
                        );
                        self.admit_slot(slot, next_lid, size);
                    } else {
                        let flight = self.free_flight(slot);
                        Self::record_tap(
                            &self.nodes,
                            &mut self.taps,
                            node,
                            at,
                            &flight.packet,
                            TapDirection::Ingress,
                        );
                        if trace::enabled() {
                            trace::record(
                                TraceKind::PacketDeliver,
                                at.as_nanos(),
                                0,
                                flight.packet.seq,
                                node as u64,
                                0,
                            );
                        }
                        self.nodes[node].inbox.push_back(Delivered {
                            packet: flight.packet,
                            at,
                        });
                    }
                }
            }
        }
        // Advance the clock even if idle — a bare clock move, not the
        // handler machinery of `EventQueue::run_until`.
        if self.queue.now() < until {
            self.queue.advance_to(until);
        }
        // Per-link byte conservation: every accepted copy is either still
        // on the wire or has exited at the tail node (observe-only).
        if sanitizer::enabled() {
            for (i, link) in self.links.iter().enumerate() {
                let s = link.stats;
                sanitizer::check(s.conserved(), "net/conservation", || {
                    format!(
                        "link {i} ({}→{}): sent={} duplicated={} exited={} in_flight={} \
                         bytes={} dup_bytes={} exited_bytes={} in_flight_bytes={}",
                        link.from,
                        link.to,
                        s.sent,
                        s.duplicated,
                        s.exited,
                        s.in_flight,
                        s.bytes,
                        s.dup_bytes,
                        s.exited_bytes,
                        s.in_flight_bytes
                    )
                });
            }
        }
    }

    /// Drain the inbox of `node`.
    pub fn poll_delivered(&mut self, node: NodeId) -> Vec<Delivered> {
        self.nodes[node.0].inbox.drain(..).collect()
    }

    /// Number of packets waiting in `node`'s inbox.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.nodes[node.0].inbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::units::DataRate;
    use visionsim_core::units::ByteSize;

    fn two_node_net(delay_ms: u64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(1);
        let a = net.add_node("a", "test", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "test", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(delay_ms)));
        (net, a, b)
    }

    #[test]
    fn packet_arrives_after_propagation_delay() {
        let (mut net, a, b) = two_node_net(25);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]).unwrap();
        net.run_until(SimTime::from_millis(24));
        assert_eq!(net.inbox_len(b), 0);
        net.run_until(SimTime::from_millis(26));
        let got = net.poll_delivered(b);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, SimTime::from_millis(25));
    }

    #[test]
    fn multi_hop_route_accumulates_delay() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let r = net.add_node("r", "t", GeoPoint::new(41.88, -87.63));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, r, LinkConfig::core(SimDuration::from_millis(10)));
        net.add_duplex(r, b, LinkConfig::core(SimDuration::from_millis(15)));
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 10]).unwrap();
        net.run_until(SimTime::from_secs(1));
        let got = net.poll_delivered(b);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, SimTime::from_millis(25));
    }

    #[test]
    fn dijkstra_picks_the_faster_path() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let slow = net.add_node("slow", "t", GeoPoint::new(41.88, -87.63));
        let fast = net.add_node("fast", "t", GeoPoint::new(39.0, -94.0));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, slow, LinkConfig::core(SimDuration::from_millis(50)));
        net.add_duplex(slow, b, LinkConfig::core(SimDuration::from_millis(50)));
        net.add_duplex(a, fast, LinkConfig::core(SimDuration::from_millis(10)));
        net.add_duplex(fast, b, LinkConfig::core(SimDuration::from_millis(10)));
        let route = net.route(a, b).unwrap();
        assert_eq!(route.len(), 2);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 10]).unwrap();
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.poll_delivered(b)[0].at, SimTime::from_millis(20));
    }

    #[test]
    fn no_route_returns_none() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        assert!(net.route(a, b).is_none());
        assert!(net
            .send(a, b, PortPair::new(1, 2), Vec::<u8>::new())
            .is_none());
    }

    #[test]
    fn serialization_rate_bounds_throughput() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        let mut cfg = LinkConfig::core(SimDuration::from_millis(1));
        cfg.rate = Some(DataRate::from_mbps(8)); // 1 MB/s
        cfg.queue_limit = ByteSize::from_mb(64);
        net.add_link(a, b, cfg);
        // 100 × 10 KB = 1 MB, takes 1 s to serialize.
        for _ in 0..100 {
            net.send(a, b, PortPair::new(1, 2), vec![0u8; 10_000 - 28])
                .unwrap();
        }
        net.run_until(SimTime::from_millis(500));
        let early = net.poll_delivered(b).len();
        assert!(early < 60, "only ~half should have arrived, got {early}");
        net.run_until(SimTime::from_secs(2));
        assert_eq!(early + net.poll_delivered(b).len(), 100);
    }

    #[test]
    fn netem_loss_drops_packets() {
        let (mut net, a, b) = two_node_net(5);
        // Find the a→b link (index 0 by construction) and set 100% loss.
        net.netem_mut(LinkId(0)).loss = 1.0;
        for _ in 0..10 {
            net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]);
        }
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.poll_delivered(b).len(), 0);
        assert_eq!(net.total_dropped(), 10);
    }

    #[test]
    fn netem_extra_delay_applies_one_direction_only() {
        let (mut net, a, b) = two_node_net(5);
        net.netem_mut(LinkId(0)).extra_delay = SimDuration::from_millis(100);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 10]).unwrap();
        net.send(b, a, PortPair::new(2, 1), vec![0u8; 10]).unwrap();
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.poll_delivered(b)[0].at, SimTime::from_millis(105));
        assert_eq!(net.poll_delivered(a)[0].at, SimTime::from_millis(5));
    }

    #[test]
    fn taps_observe_all_directions() {
        let mut net = Network::new(1);
        let client = net.add_node("client", "t", GeoPoint::new(37.77, -122.42));
        let ap = net.add_node("ap", "t", GeoPoint::new(37.77, -122.42));
        let server = net.add_node("server", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(client, ap, LinkConfig::wifi_access());
        net.add_duplex(ap, server, LinkConfig::core(SimDuration::from_millis(30)));
        let tap = net.add_tap(ap);
        net.send(client, server, PortPair::new(1, 2), vec![0u8; 100])
            .unwrap();
        net.send(server, client, PortPair::new(2, 1), vec![0u8; 200])
            .unwrap();
        net.run_until(SimTime::from_secs(1));
        let records = net.tap_records(tap);
        // AP transits both packets.
        assert_eq!(records.len(), 2);
        assert!(records
            .iter()
            .all(|r| r.direction == TapDirection::Transit));
    }

    #[test]
    fn corrupted_packets_are_flagged_at_delivery() {
        let (mut net, a, b) = two_node_net(5);
        net.netem_mut(LinkId(0)).corrupt = 1.0;
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]).unwrap();
        net.run_until(SimTime::from_secs(1));
        assert!(net.poll_delivered(b)[0].packet.corrupted);
    }

    #[test]
    fn link_stats_conserve_bytes_under_duplication_and_loss() {
        let _g = visionsim_core::par::override_guard();
        sanitizer::force(Some(true));
        sanitizer::reset();
        let (mut net, a, b) = two_node_net(5);
        net.netem_mut(LinkId(0)).loss = 0.3;
        net.netem_mut(LinkId(0)).duplicate = 0.3;
        for _ in 0..200 {
            net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]);
        }
        net.run_until(SimTime::from_secs(2));
        let s = net.link_stats(LinkId(0));
        assert!(s.conserved(), "conservation identity broken: {s:?}");
        assert_eq!(s.in_flight, 0, "everything should have drained");
        assert!(s.duplicated > 0, "duplication never fired at 30%");
        assert!(
            sanitizer::take()
                .iter()
                .all(|v| v.site != "net/conservation"),
            "healthy run must not report conservation violations"
        );
        sanitizer::force(None);
        sanitizer::reset();
    }

    #[test]
    fn geodb_registers_every_node() {
        let (net, a, b) = two_node_net(5);
        assert!(net.geodb().lookup(net.addr(a)).is_some());
        assert!(net.geodb().lookup(net.addr(b)).is_some());
        assert_eq!(net.node_of_addr(net.addr(a)), Some(a));
    }
}
