//! The network: topology + event loop.
//!
//! Nodes are endpoints or forwarders; simplex links connect them. Packets
//! are source-routed along the minimum-latency path computed by Dijkstra
//! over link delays at send time (route cache invalidated on topology
//! change). Delivered packets land in the destination node's inbox for the
//! application layer to poll; taps observe everything that transits their
//! node.

use crate::link::{LinkConfig, LinkId, LinkState};
use crate::netem::NetemVerdict;
use crate::packet::{Packet, PortPair};
use crate::tap::{Tap, TapDirection, TapId, TapRecord};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use visionsim_core::event::EventQueue;
use visionsim_core::sanitizer;
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_geo::coords::GeoPoint;
use visionsim_geo::geodb::{GeoDb, NetAddr};

/// Identifier of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A node in the topology.
#[derive(Clone, Debug)]
struct Node {
    name: String,
    addr: NetAddr,
    #[allow(dead_code)]
    location: GeoPoint,
    inbox: VecDeque<Delivered>,
    taps: Vec<usize>,
}

/// A packet delivered to its destination.
#[derive(Clone, Debug)]
pub struct Delivered {
    /// The packet.
    pub packet: Packet,
    /// Delivery timestamp.
    pub at: SimTime,
}

#[derive(Debug)]
enum NetEvent {
    /// Packet finishes traversing link `link` (serialization + delay +
    /// impairments) and pops out at the link's tail node; `hop` indexes
    /// the packet's position in its route.
    LinkExit {
        packet: Packet,
        route: Vec<LinkId>,
        hop: usize,
    },
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<LinkState>,
    /// Outgoing link ids per node.
    adjacency: Vec<Vec<LinkId>>,
    queue: EventQueue<NetEvent>,
    route_cache: HashMap<(usize, usize), Option<Vec<LinkId>>>,
    taps: Vec<Tap>,
    geodb: GeoDb,
    rng: SimRng,
    next_seq: u64,
    dropped: u64,
}

impl Network {
    /// An empty network with the given RNG seed (impairment sampling).
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
            queue: EventQueue::new(),
            route_cache: HashMap::new(),
            taps: Vec::new(),
            geodb: GeoDb::new(),
            rng: SimRng::seed_from_u64(seed),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The geolocation database tracking every node added so far.
    pub fn geodb(&self) -> &GeoDb {
        &self.geodb
    }

    /// Add a node; its address is allocated in the region-coded block for
    /// `location` and registered under `org` in the geo database.
    pub fn add_node(&mut self, name: &str, org: &str, location: GeoPoint) -> NodeId {
        let addr = self.geodb.allocate(org, name, location);
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_string(),
            addr,
            location,
            inbox: VecDeque::new(),
            taps: Vec::new(),
        });
        self.adjacency.push(Vec::new());
        self.route_cache.clear();
        id
    }

    /// The address of a node.
    pub fn addr(&self, node: NodeId) -> NetAddr {
        self.nodes[node.0].addr
    }

    /// The node owning an address, if any.
    pub fn node_of_addr(&self, addr: NetAddr) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.addr == addr)
            .map(NodeId)
    }

    /// The node's display name.
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Add a simplex link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) -> LinkId {
        assert!(from != to, "self-links are not allowed");
        let id = LinkId(self.links.len());
        self.links.push(LinkState::new(from.0, to.0, config));
        self.adjacency[from.0].push(id);
        self.route_cache.clear();
        id
    }

    /// Add a duplex link (two mirrored simplex links).
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, config.clone());
        let ba = self.add_link(b, a, config);
        (ab, ba)
    }

    /// Mutable access to a link's impairments (re-configuring `tc` mid-run).
    pub fn netem_mut(&mut self, link: LinkId) -> &mut crate::netem::Netem {
        &mut self.links[link.0].config.netem
    }

    /// Take a link down (or back up) *and* invalidate the route cache, so
    /// subsequently-sent packets route around it. Plain `netem_mut` with
    /// `down = true` keeps existing routes — packets blackhole on the dead
    /// link, which models an outage the routing layer has not noticed yet;
    /// `set_down` models one it has.
    pub fn set_down(&mut self, link: LinkId, down: bool) {
        self.links[link.0].config.netem.down = down;
        self.route_cache.clear();
    }

    /// Every link touching `node` in either direction (for taking a whole
    /// node out of service).
    pub fn links_of(&self, node: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.from == node.0 || l.to == node.0)
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Link counters.
    pub fn link_stats(&self, link: LinkId) -> crate::link::LinkStats {
        self.links[link.0].stats
    }

    /// Total packets dropped anywhere in the network so far.
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }

    /// Register a tap on `node`.
    pub fn add_tap(&mut self, node: NodeId) -> TapId {
        let id = TapId(self.taps.len());
        self.taps.push(Tap {
            node: node.0,
            records: Vec::new(),
        });
        self.nodes[node.0].taps.push(id.0);
        id
    }

    /// Records captured by a tap so far.
    pub fn tap_records(&self, tap: TapId) -> &[TapRecord] {
        &self.taps[tap.0].records
    }

    /// Drain records captured by a tap.
    pub fn take_tap_records(&mut self, tap: TapId) -> Vec<TapRecord> {
        std::mem::take(&mut self.taps[tap.0].records)
    }

    fn record_tap(&mut self, node: usize, at: SimTime, packet: &Packet, dir: TapDirection) {
        // Collect tap ids first to appease the borrow checker.
        let tap_ids: Vec<usize> = self.nodes[node].taps.clone();
        for t in tap_ids {
            self.taps[t].records.push(TapRecord::capture(at, packet, dir));
        }
    }

    /// Minimum-latency route (sequence of links) from `src` to `dst`,
    /// computed by Dijkstra over link propagation delays and cached.
    pub fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        if let Some(cached) = self.route_cache.get(&(src.0, dst.0)) {
            return cached.clone();
        }
        let route = self.dijkstra(src.0, dst.0);
        self.route_cache.insert((src.0, dst.0), route.clone());
        route
    }

    fn dijkstra(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
        #[derive(PartialEq, Eq)]
        struct Entry(SimDuration, usize);
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.cmp(&self.0).then_with(|| other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let n = self.nodes.len();
        let mut dist = vec![SimDuration::from_secs(u64::MAX / 2_000_000_000); n];
        let mut prev: Vec<Option<LinkId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src] = SimDuration::ZERO;
        heap.push(Entry(SimDuration::ZERO, src));
        while let Some(Entry(d, u)) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == dst {
                break;
            }
            for &lid in &self.adjacency[u] {
                let link = &self.links[lid.0];
                // Administratively-down links carry no routes (only
                // relevant once the cache is invalidated; see `set_down`).
                if link.config.netem.down {
                    continue;
                }
                let nd = d + link.config.delay;
                if nd < dist[link.to] {
                    dist[link.to] = nd;
                    prev[link.to] = Some(lid);
                    heap.push(Entry(nd, link.to));
                }
            }
        }
        if src != dst && prev[dst].is_none() {
            return None;
        }
        let mut route = Vec::new();
        let mut cur = dst;
        while cur != src {
            let lid = prev[cur]?;
            route.push(lid);
            cur = self.links[lid.0].from;
        }
        route.reverse();
        Some(route)
    }

    /// Send a payload from `src` to `dst`. Returns the packet sequence
    /// number, or `None` when no route exists or the first hop drops it.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        ports: PortPair,
        payload: Vec<u8>,
    ) -> Option<u64> {
        let route = self.route(src, dst)?;
        assert!(!route.is_empty(), "send to self is not supported");
        let seq = self.next_seq;
        self.next_seq += 1;
        let packet = Packet {
            seq,
            src: self.nodes[src.0].addr,
            dst: self.nodes[dst.0].addr,
            ports,
            payload,
            sent_at: self.now(),
            corrupted: false,
        };
        self.record_tap(src.0, self.now(), &packet, TapDirection::Egress);
        if self.push_onto_link(packet, route, 0) {
            Some(seq)
        } else {
            None
        }
    }

    /// Enqueue `packet` onto `route[hop]`. Returns false if dropped.
    fn push_onto_link(&mut self, mut packet: Packet, route: Vec<LinkId>, hop: usize) -> bool {
        let now = self.now();
        let lid = route[hop];
        let size = packet.wire_size();
        let (exit_time, dup_exit, corrupt) = {
            let link = &mut self.links[lid.0];
            let Some(serialized) = link.serialize(now, size) else {
                self.dropped += 1;
                return false;
            };
            match link.config.netem.apply(now, size, &mut self.rng) {
                NetemVerdict::Drop => {
                    link.stats.netem_drops += 1;
                    self.dropped += 1;
                    return false;
                }
                NetemVerdict::Deliver { delay, corrupt } => {
                    link.stats.sent += 1;
                    link.stats.bytes += size.as_bytes();
                    link.stats.in_flight += 1;
                    link.stats.in_flight_bytes += size.as_bytes();
                    (serialized + link.config.delay + delay, None, corrupt)
                }
                NetemVerdict::Duplicate {
                    delay,
                    dup_delay,
                    corrupt,
                } => {
                    link.stats.sent += 1;
                    link.stats.duplicated += 1;
                    link.stats.bytes += size.as_bytes();
                    link.stats.dup_bytes += size.as_bytes();
                    // Both copies are on the wire until their exits fire.
                    link.stats.in_flight += 2;
                    link.stats.in_flight_bytes += 2 * size.as_bytes();
                    let base = serialized + link.config.delay;
                    (base + delay, Some(base + dup_delay), corrupt)
                }
            }
        };
        packet.corrupted |= corrupt;
        if let Some(dup_at) = dup_exit {
            self.queue.schedule(
                dup_at,
                NetEvent::LinkExit {
                    packet: packet.clone(),
                    route: route.clone(),
                    hop,
                },
            );
        }
        self.queue.schedule(
            exit_time,
            NetEvent::LinkExit {
                packet,
                route,
                hop,
            },
        );
        true
    }

    /// Advance the simulation to `until`, processing all traffic events.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            match ev.payload {
                NetEvent::LinkExit {
                    packet,
                    route,
                    hop,
                } => {
                    {
                        let stats = &mut self.links[route[hop].0].stats;
                        stats.exited += 1;
                        stats.exited_bytes += packet.wire_size().as_bytes();
                        stats.in_flight -= 1;
                        stats.in_flight_bytes -= packet.wire_size().as_bytes();
                    }
                    let node = self.links[route[hop].0].to;
                    let at = ev.at;
                    if hop + 1 == route.len() {
                        self.record_tap(node, at, &packet, TapDirection::Ingress);
                        self.nodes[node].inbox.push_back(Delivered { packet, at });
                    } else {
                        self.record_tap(node, at, &packet, TapDirection::Transit);
                        self.push_onto_link(packet, route, hop + 1);
                    }
                }
            }
        }
        // Advance the clock even if idle.
        if self.queue.now() < until {
            self.queue.run_until(until, |_, _, _| {});
        }
        // Per-link byte conservation: every accepted copy is either still
        // on the wire or has exited at the tail node (observe-only).
        if sanitizer::enabled() {
            for (i, link) in self.links.iter().enumerate() {
                let s = link.stats;
                sanitizer::check(s.conserved(), "net/conservation", || {
                    format!(
                        "link {i} ({}→{}): sent={} duplicated={} exited={} in_flight={} \
                         bytes={} dup_bytes={} exited_bytes={} in_flight_bytes={}",
                        link.from,
                        link.to,
                        s.sent,
                        s.duplicated,
                        s.exited,
                        s.in_flight,
                        s.bytes,
                        s.dup_bytes,
                        s.exited_bytes,
                        s.in_flight_bytes
                    )
                });
            }
        }
    }

    /// Drain the inbox of `node`.
    pub fn poll_delivered(&mut self, node: NodeId) -> Vec<Delivered> {
        self.nodes[node.0].inbox.drain(..).collect()
    }

    /// Number of packets waiting in `node`'s inbox.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.nodes[node.0].inbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::units::DataRate;
    use visionsim_core::units::ByteSize;

    fn two_node_net(delay_ms: u64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(1);
        let a = net.add_node("a", "test", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "test", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(delay_ms)));
        (net, a, b)
    }

    #[test]
    fn packet_arrives_after_propagation_delay() {
        let (mut net, a, b) = two_node_net(25);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]).unwrap();
        net.run_until(SimTime::from_millis(24));
        assert_eq!(net.inbox_len(b), 0);
        net.run_until(SimTime::from_millis(26));
        let got = net.poll_delivered(b);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, SimTime::from_millis(25));
    }

    #[test]
    fn multi_hop_route_accumulates_delay() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let r = net.add_node("r", "t", GeoPoint::new(41.88, -87.63));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, r, LinkConfig::core(SimDuration::from_millis(10)));
        net.add_duplex(r, b, LinkConfig::core(SimDuration::from_millis(15)));
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 10]).unwrap();
        net.run_until(SimTime::from_secs(1));
        let got = net.poll_delivered(b);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, SimTime::from_millis(25));
    }

    #[test]
    fn dijkstra_picks_the_faster_path() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let slow = net.add_node("slow", "t", GeoPoint::new(41.88, -87.63));
        let fast = net.add_node("fast", "t", GeoPoint::new(39.0, -94.0));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, slow, LinkConfig::core(SimDuration::from_millis(50)));
        net.add_duplex(slow, b, LinkConfig::core(SimDuration::from_millis(50)));
        net.add_duplex(a, fast, LinkConfig::core(SimDuration::from_millis(10)));
        net.add_duplex(fast, b, LinkConfig::core(SimDuration::from_millis(10)));
        let route = net.route(a, b).unwrap();
        assert_eq!(route.len(), 2);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 10]).unwrap();
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.poll_delivered(b)[0].at, SimTime::from_millis(20));
    }

    #[test]
    fn no_route_returns_none() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        assert!(net.route(a, b).is_none());
        assert!(net.send(a, b, PortPair::new(1, 2), vec![]).is_none());
    }

    #[test]
    fn serialization_rate_bounds_throughput() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        let mut cfg = LinkConfig::core(SimDuration::from_millis(1));
        cfg.rate = Some(DataRate::from_mbps(8)); // 1 MB/s
        cfg.queue_limit = ByteSize::from_mb(64);
        net.add_link(a, b, cfg);
        // 100 × 10 KB = 1 MB, takes 1 s to serialize.
        for _ in 0..100 {
            net.send(a, b, PortPair::new(1, 2), vec![0u8; 10_000 - 28])
                .unwrap();
        }
        net.run_until(SimTime::from_millis(500));
        let early = net.poll_delivered(b).len();
        assert!(early < 60, "only ~half should have arrived, got {early}");
        net.run_until(SimTime::from_secs(2));
        assert_eq!(early + net.poll_delivered(b).len(), 100);
    }

    #[test]
    fn netem_loss_drops_packets() {
        let (mut net, a, b) = two_node_net(5);
        // Find the a→b link (index 0 by construction) and set 100% loss.
        net.netem_mut(LinkId(0)).loss = 1.0;
        for _ in 0..10 {
            net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]);
        }
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.poll_delivered(b).len(), 0);
        assert_eq!(net.total_dropped(), 10);
    }

    #[test]
    fn netem_extra_delay_applies_one_direction_only() {
        let (mut net, a, b) = two_node_net(5);
        net.netem_mut(LinkId(0)).extra_delay = SimDuration::from_millis(100);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 10]).unwrap();
        net.send(b, a, PortPair::new(2, 1), vec![0u8; 10]).unwrap();
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.poll_delivered(b)[0].at, SimTime::from_millis(105));
        assert_eq!(net.poll_delivered(a)[0].at, SimTime::from_millis(5));
    }

    #[test]
    fn taps_observe_all_directions() {
        let mut net = Network::new(1);
        let client = net.add_node("client", "t", GeoPoint::new(37.77, -122.42));
        let ap = net.add_node("ap", "t", GeoPoint::new(37.77, -122.42));
        let server = net.add_node("server", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(client, ap, LinkConfig::wifi_access());
        net.add_duplex(ap, server, LinkConfig::core(SimDuration::from_millis(30)));
        let tap = net.add_tap(ap);
        net.send(client, server, PortPair::new(1, 2), vec![0u8; 100])
            .unwrap();
        net.send(server, client, PortPair::new(2, 1), vec![0u8; 200])
            .unwrap();
        net.run_until(SimTime::from_secs(1));
        let records = net.tap_records(tap);
        // AP transits both packets.
        assert_eq!(records.len(), 2);
        assert!(records
            .iter()
            .all(|r| r.direction == TapDirection::Transit));
    }

    #[test]
    fn corrupted_packets_are_flagged_at_delivery() {
        let (mut net, a, b) = two_node_net(5);
        net.netem_mut(LinkId(0)).corrupt = 1.0;
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]).unwrap();
        net.run_until(SimTime::from_secs(1));
        assert!(net.poll_delivered(b)[0].packet.corrupted);
    }

    #[test]
    fn link_stats_conserve_bytes_under_duplication_and_loss() {
        let _g = visionsim_core::par::override_guard();
        sanitizer::force(Some(true));
        sanitizer::reset();
        let (mut net, a, b) = two_node_net(5);
        net.netem_mut(LinkId(0)).loss = 0.3;
        net.netem_mut(LinkId(0)).duplicate = 0.3;
        for _ in 0..200 {
            net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]);
        }
        net.run_until(SimTime::from_secs(2));
        let s = net.link_stats(LinkId(0));
        assert!(s.conserved(), "conservation identity broken: {s:?}");
        assert_eq!(s.in_flight, 0, "everything should have drained");
        assert!(s.duplicated > 0, "duplication never fired at 30%");
        assert!(
            sanitizer::take()
                .iter()
                .all(|v| v.site != "net/conservation"),
            "healthy run must not report conservation violations"
        );
        sanitizer::force(None);
        sanitizer::reset();
    }

    #[test]
    fn geodb_registers_every_node() {
        let (net, a, b) = two_node_net(5);
        assert!(net.geodb().lookup(net.addr(a)).is_some());
        assert!(net.geodb().lookup(net.addr(b)).is_some());
        assert_eq!(net.node_of_addr(net.addr(a)), Some(a));
    }
}
