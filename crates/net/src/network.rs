//! The network: topology + event loop.
//!
//! Nodes are endpoints or forwarders; simplex links connect them. Packets
//! are source-routed along the minimum-latency path computed by Dijkstra
//! over link delays at send time (route cache invalidated on topology
//! change). Delivered packets land in the destination node's inbox for the
//! application layer to poll; taps observe everything that transits their
//! node.
//!
//! # The zero-copy fast path
//!
//! The event loop is the hottest code in the workspace — every experiment
//! artifact funnels through it — so the datapath is built around shared
//! immutable buffers and O(1)-per-hop bookkeeping:
//!
//! * payloads are `Arc<[u8]>`, allocated once when the frame is emitted
//!   and shared by every copy (duplicates, retransmissions, SFU fan-out);
//! * routes are resolved once into `Arc<[LinkId]>` handed out by the
//!   route cache; a packet carries a `(route, hop)` cursor, never a
//!   per-event clone of the link list;
//! * in-flight packets live in a slab (`flights` + LIFO free list) and
//!   [`EventQueue`] stores a fixed-size POD referencing a slot, so heap
//!   sift operations move a few words instead of owning payload vectors.
//!
//! Forwarding a warmed-up packet one hop performs no heap allocation (the
//! `alloc_gate` integration test pins this with a counting allocator, and
//! [`PER_HOP_ALLOC_BUDGET`] is the gated budget).

use crate::link::{LinkConfig, LinkId, LinkState};
use crate::netem::{NetemBatch, NetemVerdict};
use crate::packet::{Packet, PortPair, IP_UDP_OVERHEAD_BYTES};
use crate::tap::{Tap, TapDirection, TapId, TapRecord};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::{Arc, OnceLock};
use visionsim_core::event::{EventQueue, ScratchBatch};
use visionsim_core::metrics::{self, Class};
use visionsim_core::sanitizer;
use visionsim_core::trace::{self, TraceKind};
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::ByteSize;
use visionsim_geo::coords::GeoPoint;
use visionsim_geo::geodb::{GeoDb, NetAddr};

/// Heap allocations the steady-state datapath may perform per hop, gated
/// by the `alloc_gate` integration test: zero for the forwarding machinery
/// itself, with one budgeted for amortized growth of tap-record storage.
pub const PER_HOP_ALLOC_BUDGET: usize = 1;

/// Cached handles into the metrics registry, aggregated across every
/// [`Network`] instance in the process. Counter sites mirror the
/// [`crate::link::LinkStats`] bookkeeping exactly, so the process-wide
/// totals satisfy the same conservation identity the sanitizer checks:
/// `link_bytes_sent + link_dup_bytes == link_bytes_exited` once all
/// traffic has drained (`net/in_flight_bytes` holds the residual).
///
/// Everything here is [`Class::Sim`]: pure functions of the seeds, updated
/// via commutative atomic adds, so the totals are identical at any worker
/// thread count.
struct NetMetrics {
    link_packets_sent: metrics::Counter,
    link_bytes_sent: metrics::Counter,
    link_dup_bytes: metrics::Counter,
    link_bytes_exited: metrics::Counter,
    packets_dropped: metrics::Counter,
    in_flight_bytes: metrics::Gauge,
    queue_depth: metrics::Gauge,
    /// Non-empty tick-cohort drains performed by the batched loop.
    batch_drains: metrics::Counter,
    /// Log2 histogram of admission-run sizes (members per closed run) —
    /// the batch width the netem kernel and bulk retirement actually see.
    batch_size: metrics::Histogram,
}

fn net_metrics() -> &'static NetMetrics {
    static M: OnceLock<NetMetrics> = OnceLock::new();
    M.get_or_init(|| NetMetrics {
        link_packets_sent: metrics::counter("net/link_packets_sent", Class::Sim),
        link_bytes_sent: metrics::counter("net/link_bytes_sent", Class::Sim),
        link_dup_bytes: metrics::counter("net/link_dup_bytes", Class::Sim),
        link_bytes_exited: metrics::counter("net/link_bytes_exited", Class::Sim),
        packets_dropped: metrics::counter("net/packets_dropped", Class::Sim),
        // Scheduled-minus-drained event depth; deltas commute, so the
        // gauge stays deterministic across thread counts (a `set` of the
        // local queue length would not — last writer would win).
        in_flight_bytes: metrics::gauge("net/in_flight_bytes", Class::Sim),
        queue_depth: metrics::gauge("net/queue_depth", Class::Sim),
        batch_drains: metrics::counter("net/batch_drains", Class::Sim),
        batch_size: metrics::histogram("net/batch_size", Class::Sim),
    })
}

/// Which inner loop [`Network::run_until`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainMode {
    /// One heap pop per event — the reference implementation the batched
    /// path is property-tested against.
    Scalar,
    /// Tick-cohort draining with run-accumulated cohort events and the
    /// batched netem kernel. Observationally identical to `Scalar`:
    /// same delivery order, same verdicts, same RNG stream position.
    Batched,
}

impl DrainMode {
    /// Process-wide default: batched, unless `VISIONSIM_DRAIN=scalar`
    /// forces the reference loop (for bisecting or the equivalence test).
    pub fn from_env() -> DrainMode {
        static MODE: OnceLock<DrainMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("VISIONSIM_DRAIN").as_deref() {
            Ok("scalar") => DrainMode::Scalar,
            _ => DrainMode::Batched,
        })
    }
}

/// Identifier of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A node in the topology.
#[derive(Clone, Debug)]
struct Node {
    name: String,
    addr: NetAddr,
    #[allow(dead_code)]
    location: GeoPoint,
    inbox: VecDeque<Delivered>,
    taps: Vec<usize>,
}

/// A packet delivered to its destination.
#[derive(Clone, Debug)]
pub struct Delivered {
    /// The packet.
    pub packet: Packet,
    /// Delivery timestamp.
    pub at: SimTime,
}

/// One in-flight copy of a packet: the packet itself plus its route
/// cursor. Lives in the network's flight slab; queue events reference it
/// by slot index. The route is an index into the network's interned
/// route table, so creating, duplicating, and retiring a flight moves no
/// refcount — only the payload `Arc` is shared state.
#[derive(Clone, Debug)]
struct Flight {
    packet: Packet,
    /// Index into [`Network::routes`].
    route: u32,
    /// Position in the route currently being traversed. Authoritative
    /// for the scalar loop only: batched cohorts carry the cursor in
    /// their [`Member`] records, and `schedule_exit` re-syncs this field
    /// whenever a scalar `LinkExit` is created for the slot.
    hop: u32,
    /// Cached `packet.wire_size()`: the payload is immutable, so hop
    /// bookkeeping reads the size from the slab instead of chasing the
    /// payload `Arc` every time.
    size: ByteSize,
}

/// Multiply-rotate hasher for the route cache's small fixed-width
/// `(usize, usize)` keys. The default SipHash is DoS-hardened for
/// untrusted input; cache keys here are simulator-internal node indices,
/// and the hash sits on the per-send fast path.
#[derive(Default)]
struct RouteKeyHasher(u64);

impl std::hash::Hasher for RouteKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_usize(&mut self, n: usize) {
        self.0 = (self.0 ^ n as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23);
    }
}

type RouteCache =
    HashMap<(usize, usize), Option<u32>, std::hash::BuildHasherDefault<RouteKeyHasher>>;

/// Slots in the direct-mapped route memo in front of [`RouteCache`].
/// Fan-out traffic cycles through one `(src, dst)` pair per subscriber,
/// so a single-entry memo thrashes; 64 slots cover any realistic working
/// set of concurrently-active flows, and a miss only falls back to the
/// hash map. Power of two so the index is a mask.
const ROUTE_MEMO_SLOTS: usize = 64;

/// Direct-mapped memo entry: packed `(src << 32) | dst` key and the
/// interned route id it resolved to. `key == u64::MAX` marks an empty
/// slot; only resolvable pairs are memoized.
type RouteMemoEntry = (u64, u32);

/// Fixed-size POD event: the queue owns indices, never payloads.
#[derive(Clone, Copy, Debug)]
enum NetEvent {
    /// The flight in slot `flight` finishes traversing `route[hop]`
    /// (serialization + delay + impairments) and pops out at the link's
    /// tail node.
    LinkExit {
        flight: u32,
    },
    /// The run of flights listed in cohort slab slot `cohort` all finish
    /// traversing the same link at the same instant (batched mode).
    CohortExit {
        cohort: u32,
    },
}

/// A run of flights admitted back-to-back with the same exit time,
/// scheduled as one queue event instead of one per packet. Members may
/// exit *different* links (SFU fan-out admits one copy per subscriber
/// link at one instant): each member's link is derived from its route
/// cursor at processing time, and per-link bookkeeping is amortized over
/// consecutive same-link members. Slots recycle through a LIFO free list
/// and keep their `Vec` capacity, so steady-state cohort scheduling
/// allocates nothing.
#[derive(Debug, Default)]
struct Cohort {
    /// Members, in admission order.
    members: Vec<Member>,
}

/// A cohort member: the flight slot plus a copy of its route cursor and
/// wire size. Carrying the cursor in the member record — not just the
/// slot — means a passthrough continuation is processed without touching
/// the flight slab at all: the hot chain/fan-out loop reads one
/// contiguous member array and writes the next, and the slab is only
/// dereferenced at real boundaries (impairment, duplication, drop, tap
/// capture, delivery).
#[derive(Clone, Copy, Debug)]
struct Member {
    /// Flight slab slot.
    slot: u32,
    /// Index into [`Network::routes`] (copied from the flight).
    route: u32,
    /// The hop this member is currently traversing.
    hop: u32,
    /// Cached wire size (copied from the flight).
    size: ByteSize,
}

/// The admission run currently accumulating (batched mode). At most one
/// run is open at any time, and it closes — becoming a queue event —
/// before anything with a different exit time is scheduled. That
/// single-open-run discipline is what keeps cohort members contiguous in
/// scalar schedule order: the cohort's event sequence number is assigned
/// at close, after every member's admission and before any later
/// schedule, so same-instant FIFO tie-breaking replays the scalar order
/// exactly. Keying on time alone (not `(link, time)`) lets same-instant
/// admissions onto different links — the fan-out shape — share one event.
#[derive(Clone, Copy, Debug)]
struct OpenRun {
    at: SimTime,
}

/// One pending admission in the batched general path: the member and its
/// serialization completion (`None` = dropped by the link's drop-tail
/// queue, which consumes no netem draws).
#[derive(Clone, Copy, Debug)]
struct AdmitEntry {
    m: Member,
    serialized: Option<SimTime>,
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<LinkState>,
    /// Outgoing link ids per node.
    adjacency: Vec<Vec<LinkId>>,
    queue: EventQueue<NetEvent>,
    route_cache: RouteCache,
    /// Interned routes, referenced by index from flights and the caches.
    /// Append-only: topology changes clear the *caches*, never this
    /// table, so ids held by packets already in flight stay valid.
    routes: Vec<Arc<[LinkId]>>,
    /// Direct-mapped memo in front of `route_cache`: steady traffic
    /// re-sends along a small working set of `(src, dst)` pairs, so most
    /// lookups are one compare. Invalidated together with the cache.
    route_memo: Vec<RouteMemoEntry>,
    /// In-flight packet slab; slot indices are what events carry.
    flights: Vec<Option<Flight>>,
    /// Reusable slab slots (LIFO, so a forwarded packet keeps its slot).
    free_flights: Vec<u32>,
    taps: Vec<Tap>,
    geodb: GeoDb,
    rng: SimRng,
    next_seq: u64,
    dropped: u64,
    /// Which inner loop `run_until` uses.
    drain_mode: DrainMode,
    /// Reusable tick-drain buffer (batched mode).
    scratch: ScratchBatch<NetEvent>,
    /// Reusable netem batch-kernel output.
    netem_out: NetemBatch,
    /// Cohort slab; `CohortExit` events reference slots here.
    cohorts: Vec<Cohort>,
    /// Reusable cohort slots (LIFO; each keeps its member-list capacity).
    free_cohorts: Vec<u32>,
    /// The admission run currently accumulating, if any.
    open_run: Option<OpenRun>,
    /// Members of the open run, in admission order.
    open_members: Vec<Member>,
    /// Reusable buffer: consecutive same-next-link continuations of the
    /// cohort currently being processed (cursor already advanced).
    pending_admits: Vec<Member>,
    /// Reusable buffer: general-path admission records.
    admit_entries: Vec<AdmitEntry>,
    /// Reusable buffer: wire sizes of serialization survivors, the batch
    /// kernel's input.
    admit_sizes: Vec<ByteSize>,
}

impl Network {
    /// An empty network with the given RNG seed (impairment sampling).
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
            queue: EventQueue::new(),
            route_cache: RouteCache::default(),
            routes: Vec::new(),
            route_memo: vec![(u64::MAX, 0); ROUTE_MEMO_SLOTS],
            flights: Vec::new(),
            free_flights: Vec::new(),
            taps: Vec::new(),
            geodb: GeoDb::new(),
            rng: SimRng::seed_from_u64(seed),
            next_seq: 0,
            dropped: 0,
            drain_mode: DrainMode::from_env(),
            scratch: ScratchBatch::new(),
            netem_out: NetemBatch::new(),
            cohorts: Vec::new(),
            free_cohorts: Vec::new(),
            open_run: None,
            open_members: Vec::new(),
            pending_admits: Vec::new(),
            admit_entries: Vec::new(),
            admit_sizes: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The inner loop `run_until` uses.
    pub fn drain_mode(&self) -> DrainMode {
        self.drain_mode
    }

    /// Override the inner loop (the process default comes from
    /// `VISIONSIM_DRAIN`). Any accumulating admission run is closed first
    /// so no scheduled work is stranded by the switch.
    pub fn set_drain_mode(&mut self, mode: DrainMode) {
        self.close_run();
        self.drain_mode = mode;
    }

    /// FNV-1a fold of the impairment RNG's position in its stream — the
    /// scalar-vs-batched equivalence test pins this, proving the batched
    /// path consumed draws in exactly the scalar order and count.
    pub fn rng_fingerprint(&self) -> u64 {
        self.rng.state_fingerprint()
    }

    /// The geolocation database tracking every node added so far.
    pub fn geodb(&self) -> &GeoDb {
        &self.geodb
    }

    /// Add a node; its address is allocated in the region-coded block for
    /// `location` and registered under `org` in the geo database.
    pub fn add_node(&mut self, name: &str, org: &str, location: GeoPoint) -> NodeId {
        let addr = self.geodb.allocate(org, name, location);
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_string(),
            addr,
            location,
            inbox: VecDeque::new(),
            taps: Vec::new(),
        });
        self.adjacency.push(Vec::new());
        self.route_cache.clear();
        self.route_memo.fill((u64::MAX, 0));
        id
    }

    /// The address of a node.
    pub fn addr(&self, node: NodeId) -> NetAddr {
        self.nodes[node.0].addr
    }

    /// The node owning an address, if any.
    pub fn node_of_addr(&self, addr: NetAddr) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.addr == addr)
            .map(NodeId)
    }

    /// The node's display name.
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Add a simplex link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) -> LinkId {
        assert!(from != to, "self-links are not allowed");
        let id = LinkId(self.links.len());
        self.links.push(LinkState::new(from.0, to.0, config));
        self.adjacency[from.0].push(id);
        self.route_cache.clear();
        self.route_memo.fill((u64::MAX, 0));
        id
    }

    /// Add a duplex link (two mirrored simplex links).
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, config.clone());
        let ba = self.add_link(b, a, config);
        (ab, ba)
    }

    /// Mutable access to a link's impairments (re-configuring `tc` mid-run).
    pub fn netem_mut(&mut self, link: LinkId) -> &mut crate::netem::Netem {
        &mut self.links[link.0].config.netem
    }

    /// Mutable access to the link's token-bucket shaper, if one is
    /// attached. Use [`crate::LinkShaper::set_rate`] through this to model
    /// a capacity change that keeps the queued backlog (WiFi duty cycle,
    /// handover rate cliff).
    pub fn shaper_mut(&mut self, link: LinkId) -> Option<&mut crate::shaper::LinkShaper> {
        self.links[link.0].shaper.as_mut()
    }

    /// Attach, replace, or remove a link's shaper. Rebuilds shaper state
    /// from scratch (empty queue, full burst). The route cache is
    /// untouched — shaping does not change topology.
    pub fn set_shaper(&mut self, link: LinkId, cfg: Option<crate::shaper::ShaperConfig>) {
        self.links[link.0].set_shaper(cfg);
    }

    /// Take a link down (or back up) *and* invalidate the route cache, so
    /// subsequently-sent packets route around it. Plain `netem_mut` with
    /// `down = true` keeps existing routes — packets blackhole on the dead
    /// link, which models an outage the routing layer has not noticed yet;
    /// `set_down` models one it has.
    pub fn set_down(&mut self, link: LinkId, down: bool) {
        self.links[link.0].config.netem.down = down;
        self.route_cache.clear();
        self.route_memo.fill((u64::MAX, 0));
    }

    /// Every link touching `node` in either direction (for taking a whole
    /// node out of service).
    pub fn links_of(&self, node: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.from == node.0 || l.to == node.0)
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Link counters.
    pub fn link_stats(&self, link: LinkId) -> crate::link::LinkStats {
        self.links[link.0].stats
    }

    /// Total packets dropped anywhere in the network so far.
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }

    /// Register a tap on `node`.
    pub fn add_tap(&mut self, node: NodeId) -> TapId {
        let id = TapId(self.taps.len());
        self.taps.push(Tap {
            node: node.0,
            records: Vec::new(),
        });
        self.nodes[node.0].taps.push(id.0);
        id
    }

    /// Records captured by a tap so far.
    pub fn tap_records(&self, tap: TapId) -> &[TapRecord] {
        &self.taps[tap.0].records
    }

    /// Drain records captured by a tap.
    pub fn take_tap_records(&mut self, tap: TapId) -> Vec<TapRecord> {
        std::mem::take(&mut self.taps[tap.0].records)
    }

    /// Associated (not `&mut self`) so callers can observe a packet still
    /// parked in the flight slab: `nodes` and `taps` are disjoint field
    /// borrows, and the node's tap list is only read while tap storage is
    /// written — no per-packet clone of the id list.
    #[inline]
    fn record_tap(
        nodes: &[Node],
        taps: &mut [Tap],
        node: usize,
        at: SimTime,
        packet: &Packet,
        dir: TapDirection,
    ) {
        let tap_ids = &nodes[node].taps;
        if tap_ids.is_empty() {
            return;
        }
        Self::record_tap_hit(taps, tap_ids, at, packet, dir);
    }

    /// Out-of-line capture body so the untapped-node check above inlines
    /// into the send and exit paths as a single load-and-branch.
    fn record_tap_hit(
        taps: &mut [Tap],
        tap_ids: &[usize],
        at: SimTime,
        packet: &Packet,
        dir: TapDirection,
    ) {
        let record = TapRecord::capture(at, packet, dir);
        for &t in tap_ids {
            taps[t].records.push(record);
        }
    }

    /// Minimum-latency route (sequence of links) from `src` to `dst`,
    /// computed by Dijkstra over link propagation delays, interned into a
    /// shared slice, and cached — every packet on the path carries a
    /// refcount on the same allocation.
    pub fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Arc<[LinkId]>> {
        self.route_id(src, dst)
            .map(|rid| self.routes[rid as usize].clone())
    }

    /// Interned-route id for `(src, dst)`: direct-mapped memo, then hash
    /// map, then Dijkstra + interning. The id — not an `Arc` clone — is
    /// what flights carry, so the per-send fast path moves no refcount.
    fn route_id(&mut self, src: NodeId, dst: NodeId) -> Option<u32> {
        let key = ((src.0 as u64) << 32) | dst.0 as u64;
        let slot = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize & (ROUTE_MEMO_SLOTS - 1);
        let (memo_key, memo_rid) = self.route_memo[slot];
        if memo_key == key {
            return Some(memo_rid);
        }
        let rid = match self.route_cache.get(&(src.0, dst.0)) {
            Some(&cached) => cached,
            None => {
                let rid = self.dijkstra(src.0, dst.0).map(|path| {
                    let rid = self.routes.len() as u32;
                    self.routes.push(Arc::from(path));
                    rid
                });
                self.route_cache.insert((src.0, dst.0), rid);
                rid
            }
        };
        if let Some(rid) = rid {
            self.route_memo[slot] = (key, rid);
        }
        rid
    }

    fn dijkstra(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
        #[derive(PartialEq, Eq)]
        struct Entry(SimDuration, usize);
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.cmp(&self.0).then_with(|| other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let n = self.nodes.len();
        let mut dist = vec![SimDuration::from_secs(u64::MAX / 2_000_000_000); n];
        let mut prev: Vec<Option<LinkId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src] = SimDuration::ZERO;
        heap.push(Entry(SimDuration::ZERO, src));
        while let Some(Entry(d, u)) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == dst {
                break;
            }
            for &lid in &self.adjacency[u] {
                let link = &self.links[lid.0];
                // Administratively-down links carry no routes (only
                // relevant once the cache is invalidated; see `set_down`).
                if link.config.netem.down {
                    continue;
                }
                let nd = d + link.config.delay;
                if nd < dist[link.to] {
                    dist[link.to] = nd;
                    prev[link.to] = Some(lid);
                    heap.push(Entry(nd, link.to));
                }
            }
        }
        if src != dst && prev[dst].is_none() {
            return None;
        }
        let mut route = Vec::new();
        let mut cur = dst;
        while cur != src {
            let lid = prev[cur]?;
            route.push(lid);
            cur = self.links[lid.0].from;
        }
        route.reverse();
        Some(route)
    }

    /// Send a payload from `src` to `dst`. Returns the packet sequence
    /// number, or `None` when no route exists or the first hop drops it.
    ///
    /// Accepts anything convertible into a shared buffer: a `Vec<u8>` is
    /// interned once, an `Arc<[u8]>` (e.g. a frame already emitted by
    /// transport framing, or a delivered packet's payload being relayed)
    /// is shared without copying a byte.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        ports: PortPair,
        payload: impl Into<Arc<[u8]>>,
    ) -> Option<u64> {
        let rid = self.route_id(src, dst)?;
        let route = &self.routes[rid as usize];
        assert!(!route.is_empty(), "send to self is not supported");
        let first = route[0];
        self.send_one(src, dst, rid, first, ports, payload.into())
    }

    /// Send a burst of frames from `src` to `dst` as one admission batch.
    ///
    /// Semantically identical to calling [`Self::send`] once per frame in
    /// order — same sequence numbers, same exit times, same RNG draw
    /// order, same stats totals. What batching buys is amortization: the
    /// route lookup, first-link inspection, tap probe, and (on the
    /// batched passthrough fast arm) the open-run resolution and stats
    /// flush all happen once per call instead of once per frame. This is
    /// the SFU egress shape: a burst of encoded frames written to one
    /// subscriber's socket in a single step.
    ///
    /// Returns the number of frames the first hop admitted, or `None`
    /// when no route exists.
    pub fn send_batch<I>(&mut self, src: NodeId, dst: NodeId, frames: I) -> Option<usize>
    where
        I: IntoIterator<Item = (PortPair, Arc<[u8]>)>,
    {
        let rid = self.route_id(src, dst)?;
        let route = &self.routes[rid as usize];
        assert!(!route.is_empty(), "send to self is not supported");
        let first = route[0];
        let link = &self.links[first.0];
        // The fast arm needs every per-frame observation and branch to be
        // provably dead: a transparent, unshaped first link (no RNG
        // draw, no drop — admission cannot fail), batched drain mode
        // (members stream into the open run), an untapped source, and
        // tracing off. Anything else replays the per-frame path, which
        // keeps the equivalence contract trivially true.
        let fast = self.drain_mode == DrainMode::Batched
            && link.is_passthrough()
            && self.nodes[src.0].taps.is_empty()
            && !trace::enabled();
        if !fast {
            let mut admitted = 0usize;
            for (ports, payload) in frames {
                if self.send_one(src, dst, rid, first, ports, payload).is_some() {
                    admitted += 1;
                }
            }
            return Some(admitted);
        }
        let now = self.now();
        let exit = now + link.config.delay + link.config.netem.extra_delay;
        // Resolve the run once: every frame in the batch exits at the
        // same time, exactly as a per-frame loop would re-match the same
        // open run on each send.
        match self.open_run {
            Some(run) if run.at == exit => {}
            _ => {
                self.close_run();
                self.open_run = Some(OpenRun { at: exit });
            }
        }
        let src_addr = self.nodes[src.0].addr;
        let dst_addr = self.nodes[dst.0].addr;
        let mut count = 0u64;
        let mut bytes = 0u64;
        let mut seq = self.next_seq;
        // Members land via `extend` over a mapped iterator so an
        // exact-size source (the common slice-of-frames case) reserves
        // once and writes without per-frame capacity checks. The member
        // list is taken out of `self` for the duration because the
        // closure needs `self` for slab parking.
        let mut open = std::mem::take(&mut self.open_members);
        open.extend(frames.into_iter().map(|(ports, payload)| {
            // Size comes from the payload handle before the packet is
            // assembled: with no post-construction borrows, the flight
            // is built straight into its slab slot.
            let size = ByteSize::from_bytes(payload.len() as u64 + IP_UDP_OVERHEAD_BYTES);
            let slot = self.alloc_flight(Flight {
                packet: Packet {
                    seq: {
                        let s = seq;
                        seq += 1;
                        s
                    },
                    src: src_addr,
                    dst: dst_addr,
                    ports,
                    payload,
                    sent_at: now,
                    corrupted: false,
                },
                route: rid,
                hop: 0,
                size,
            });
            count += 1;
            bytes += size.as_bytes();
            Member {
                slot,
                route: rid,
                hop: 0,
                size,
            }
        }));
        self.open_members = open;
        self.next_seq = seq;
        let link = &mut self.links[first.0];
        link.stats.offered += count;
        link.stats.offered_bytes += bytes;
        link.stats.sent += count;
        link.stats.bytes += bytes;
        link.stats.in_flight += count;
        link.stats.in_flight_bytes += bytes;
        if metrics::enabled() {
            let metrics = net_metrics();
            metrics.link_packets_sent.add(count);
            metrics.link_bytes_sent.add(bytes);
            metrics.in_flight_bytes.add(bytes as i64);
        }
        Some(count as usize)
    }

    /// The post-route-resolution body shared by [`Self::send`] and the
    /// [`Self::send_batch`] fallback arm.
    fn send_one(
        &mut self,
        src: NodeId,
        dst: NodeId,
        rid: u32,
        first: LinkId,
        ports: PortPair,
        payload: Arc<[u8]>,
    ) -> Option<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let now = self.now();
        let packet = Packet {
            seq,
            src: self.nodes[src.0].addr,
            dst: self.nodes[dst.0].addr,
            ports,
            payload,
            sent_at: now,
            corrupted: false,
        };
        let size = packet.wire_size();
        // Park the flight first, then observe it from the slab: with no
        // pre-move borrows of `packet`, the compiler can construct it
        // straight into the slot instead of staging it on the stack.
        let slot = self.alloc_flight(Flight {
            packet,
            route: rid,
            hop: 0,
            size,
        });
        Self::record_tap(
            &self.nodes,
            &mut self.taps,
            src.0,
            now,
            &self.flights[slot as usize]
                .as_ref()
                .expect("freshly parked flight slot is empty")
                .packet,
            TapDirection::Egress,
        );
        if trace::enabled() {
            trace::record(
                TraceKind::PacketSend,
                now.as_nanos(),
                0,
                seq,
                src.0 as u64,
                dst.0 as u64,
            );
        }
        let member = Member {
            slot,
            route: rid,
            hop: 0,
            size,
        };
        if self.admit_slot(member, first) {
            Some(seq)
        } else {
            None
        }
    }

    /// Park a flight in the slab, reusing a freed slot when one exists.
    /// Steady-state traffic allocates nothing here: the slab grows to the
    /// in-flight high-water mark once and slots recycle LIFO.
    #[inline]
    fn alloc_flight(&mut self, flight: Flight) -> u32 {
        match self.free_flights.pop() {
            Some(slot) => {
                self.flights[slot as usize] = Some(flight);
                slot
            }
            None => {
                let slot = self.flights.len() as u32;
                self.flights.push(Some(flight));
                slot
            }
        }
    }

    /// Remove and return the flight in `slot`, releasing the slot.
    fn free_flight(&mut self, slot: u32) -> Flight {
        self.free_flights.push(slot);
        self.flights[slot as usize]
            .take()
            .expect("event referenced an empty flight slot")
    }

    /// Admit the member's flight onto the link its cursor points at.
    /// The flight stays in its slab slot for the link crossing; only the
    /// rare duplication and drop outcomes touch the slab at all. Returns
    /// false (releasing the slot) if the link dropped the packet.
    ///
    /// Callers guarantee the slab cursor equals `m.hop` on entry (send
    /// admits at hop 0; the scalar exit path advances the slab cursor it
    /// builds the member from), so the duplication clone below inherits a
    /// correct cursor.
    #[inline]
    fn admit_slot(&mut self, m: Member, lid: LinkId) -> bool {
        // Unshaped, unimpaired links (the dominant core-link case) skip
        // the serializer and netem dispatch entirely: no RNG draw, fixed
        // exit time. Draw-order equivalence is trivial — a transparent
        // netem consumes nothing from the stream. Kept small (and the
        // general path out of line) so this arm inlines into `send` and
        // the scalar exit handler.
        let now = self.now();
        let link = &mut self.links[lid.0];
        if link.is_passthrough() {
            let size = m.size;
            let exit = now + link.config.delay + link.config.netem.extra_delay;
            link.stats.offered += 1;
            link.stats.offered_bytes += size.as_bytes();
            link.stats.sent += 1;
            link.stats.bytes += size.as_bytes();
            link.stats.in_flight += 1;
            link.stats.in_flight_bytes += size.as_bytes();
            // One capture-state load gates the whole block: the registry
            // lookup and per-counter checks are off the disabled path.
            if metrics::enabled() {
                let metrics = net_metrics();
                metrics.link_packets_sent.inc();
                metrics.link_bytes_sent.add(size.as_bytes());
                metrics.in_flight_bytes.add(size.as_bytes() as i64);
            }
            self.schedule_exit(exit, m);
            return true;
        }
        self.admit_slot_slow(m, lid)
    }

    /// The impaired/rate-limited arm of [`Self::admit_slot`].
    fn admit_slot_slow(&mut self, m: Member, lid: LinkId) -> bool {
        let slot = m.slot;
        let size = m.size;
        let now = self.now();
        let (exit_time, dup_exit, corrupt) = {
            let link = &mut self.links[lid.0];
            link.stats.offered += 1;
            link.stats.offered_bytes += size.as_bytes();
            let Some(serialized) = link.serialize(now, size) else {
                self.dropped += 1;
                net_metrics().packets_dropped.inc();
                let flight = self.free_flight(slot);
                if trace::enabled() {
                    trace::record(
                        TraceKind::QueueDrop,
                        now.as_nanos(),
                        0,
                        flight.packet.seq,
                        lid.0 as u64,
                        size.as_bytes(),
                    );
                }
                return false;
            };
            match link.config.netem.apply(now, size, &mut self.rng) {
                NetemVerdict::Drop => {
                    link.stats.netem_drops += 1;
                    link.stats.netem_dropped_bytes += size.as_bytes();
                    self.dropped += 1;
                    net_metrics().packets_dropped.inc();
                    let flight = self.free_flight(slot);
                    if trace::enabled() {
                        trace::record(
                            TraceKind::PacketDrop,
                            now.as_nanos(),
                            0,
                            flight.packet.seq,
                            lid.0 as u64,
                            0,
                        );
                    }
                    return false;
                }
                NetemVerdict::Deliver { delay, corrupt } => {
                    link.stats.sent += 1;
                    link.stats.bytes += size.as_bytes();
                    link.stats.in_flight += 1;
                    link.stats.in_flight_bytes += size.as_bytes();
                    let m = net_metrics();
                    m.link_packets_sent.inc();
                    m.link_bytes_sent.add(size.as_bytes());
                    m.in_flight_bytes.add(size.as_bytes() as i64);
                    (serialized + link.config.delay + delay, None, corrupt)
                }
                NetemVerdict::Duplicate {
                    delay,
                    dup_delay,
                    corrupt,
                } => {
                    link.stats.sent += 1;
                    link.stats.duplicated += 1;
                    link.stats.bytes += size.as_bytes();
                    link.stats.dup_bytes += size.as_bytes();
                    // Both copies are on the wire until their exits fire.
                    link.stats.in_flight += 2;
                    link.stats.in_flight_bytes += 2 * size.as_bytes();
                    let metrics = net_metrics();
                    metrics.link_packets_sent.inc();
                    metrics.link_bytes_sent.add(size.as_bytes());
                    metrics.link_dup_bytes.add(size.as_bytes());
                    metrics.in_flight_bytes.add(2 * size.as_bytes() as i64);
                    let base = serialized + link.config.delay;
                    (base + delay, Some(base + dup_delay), corrupt)
                }
            }
        };
        if corrupt {
            self.flights[slot as usize]
                .as_mut()
                .expect("corrupting an empty flight slot")
                .packet
                .corrupted = true;
        }
        if let Some(dup_at) = dup_exit {
            // The duplicate copy forwards independently from this hop on;
            // the clone shares the payload `Arc` — no bytes are copied.
            // Scheduled before the primary so same-instant FIFO
            // tie-breaking is stable across refactors.
            let dup = self
                .flights
                .get(slot as usize)
                .and_then(|f| f.clone())
                .expect("duplicating an empty flight slot");
            let dup = self.alloc_flight(dup);
            self.schedule_exit(dup_at, Member { slot: dup, ..m });
        }
        self.schedule_exit(exit_time, m);
        true
    }

    /// Schedule a link-exit for the member at `at`. In scalar mode this
    /// is a direct queue insert; in batched mode the exit joins (or
    /// opens) the accumulating admission run for `at`.
    #[inline]
    fn schedule_exit(&mut self, at: SimTime, m: Member) {
        match self.drain_mode {
            DrainMode::Scalar => self.schedule_scalar_exit(at, m),
            DrainMode::Batched => self.enqueue_exit(at, m),
        }
    }

    /// Create a scalar `LinkExit` for the member. The scalar exit handler
    /// reads the route cursor from the flight slab, and a cohort-carried
    /// cursor may have advanced past the slab's copy (batched
    /// continuations never write the slab) — so the slab is re-synced
    /// here, the single point where `LinkExit` events are minted.
    fn schedule_scalar_exit(&mut self, at: SimTime, m: Member) {
        self.flights[m.slot as usize]
            .as_mut()
            .expect("scheduling an exit for an empty flight slot")
            .hop = m.hop;
        self.queue.schedule(at, NetEvent::LinkExit { flight: m.slot });
        if metrics::enabled() {
            net_metrics().queue_depth.add(1);
        }
    }

    /// Batched-mode admission: join the open run when the exit time
    /// matches, otherwise close it and open a fresh one. The deferred
    /// close is what turns back-to-back same-instant admissions into one
    /// cohort event.
    #[inline]
    fn enqueue_exit(&mut self, at: SimTime, m: Member) {
        match self.open_run {
            Some(run) if run.at == at => {}
            _ => {
                self.close_run();
                self.open_run = Some(OpenRun { at });
            }
        }
        self.open_members.push(m);
    }

    /// Close the accumulating admission run, scheduling it as a single
    /// `LinkExit` (one member) or a `CohortExit` referencing a pooled slot
    /// list. Scheduling happens here — not at admission — so the event's
    /// sequence number lands after every member and before anything
    /// scheduled later, preserving scalar tie-break order.
    fn close_run(&mut self) {
        let Some(run) = self.open_run.take() else {
            return;
        };
        let members = self.open_members.len();
        if members == 0 {
            return;
        }
        if metrics::enabled() {
            let metrics = net_metrics();
            metrics.queue_depth.add(members as i64);
            metrics.batch_size.observe(members as u64);
        }
        if members == 1 {
            let m = self.open_members[0];
            self.open_members.clear();
            // Single-member runs degrade to a scalar `LinkExit`, which
            // reads the slab cursor — sync it from the member's copy.
            self.schedule_scalar_exit_at_close(run.at, m);
            return;
        }
        let c = match self.free_cohorts.pop() {
            Some(c) => c,
            None => {
                let c = self.cohorts.len() as u32;
                self.cohorts.push(Cohort::default());
                c
            }
        };
        let cohort = &mut self.cohorts[c as usize];
        cohort.members.clear();
        // Swap, not copy: the accumulating buffer becomes the cohort's
        // member list and the recycled slot's empty vec (capacity intact)
        // becomes the next accumulating buffer.
        std::mem::swap(&mut cohort.members, &mut self.open_members);
        self.queue.schedule(run.at, NetEvent::CohortExit { cohort: c });
    }

    /// `close_run`'s single-member case: identical to
    /// [`Self::schedule_scalar_exit`] but without double-counting queue
    /// depth (the member was already counted when its run was observed).
    fn schedule_scalar_exit_at_close(&mut self, at: SimTime, m: Member) {
        self.flights[m.slot as usize]
            .as_mut()
            .expect("scheduling an exit for an empty flight slot")
            .hop = m.hop;
        self.queue.schedule(at, NetEvent::LinkExit { flight: m.slot });
    }

    /// Advance the simulation to `until`, processing all traffic events.
    pub fn run_until(&mut self, until: SimTime) {
        match self.drain_mode {
            DrainMode::Scalar => self.run_scalar(until),
            DrainMode::Batched => self.run_batched(until),
        }
        // Advance the clock even if idle — a bare clock move, not the
        // handler machinery of `EventQueue::run_until`.
        if self.queue.now() < until {
            self.queue.advance_to(until);
        }
        // Per-link byte conservation: every accepted copy is either still
        // on the wire or has exited at the tail node (observe-only).
        if sanitizer::enabled() {
            for (i, link) in self.links.iter().enumerate() {
                let s = link.stats;
                sanitizer::check(s.conserved(), "net/conservation", || {
                    format!(
                        "link {i} ({}→{}): offered={} sent={} queue_drops={} netem_drops={} \
                         duplicated={} exited={} in_flight={} offered_bytes={} bytes={} \
                         queue_dropped_bytes={} netem_dropped_bytes={} dup_bytes={} \
                         exited_bytes={} in_flight_bytes={}",
                        link.from,
                        link.to,
                        s.offered,
                        s.sent,
                        s.queue_drops,
                        s.netem_drops,
                        s.duplicated,
                        s.exited,
                        s.in_flight,
                        s.offered_bytes,
                        s.bytes,
                        s.queue_dropped_bytes,
                        s.netem_dropped_bytes,
                        s.dup_bytes,
                        s.exited_bytes,
                        s.in_flight_bytes
                    )
                });
            }
        }
    }

    /// The reference loop: one heap pop per event.
    fn run_scalar(&mut self, until: SimTime) {
        while let Some(ev) = self.queue.pop_if_due(until) {
            match ev.payload {
                NetEvent::LinkExit { flight } => {
                    if metrics::enabled() {
                        net_metrics().queue_depth.add(-1);
                    }
                    self.process_exit(ev.at, flight);
                }
                // Only scheduled in batched mode, but a mid-run mode
                // switch must still drain what is already queued.
                NetEvent::CohortExit { cohort } => self.process_cohort(ev.at, cohort),
            }
        }
    }

    /// The batched loop: drain the whole due tick into the scratch buffer,
    /// then process it in sequence order. Any event a handler schedules
    /// carries a later sequence number and a timestamp at or after the
    /// tick, so it lands in a later drain exactly where the scalar pop
    /// order would have placed it.
    fn run_batched(&mut self, until: SimTime) {
        let mut scratch = std::mem::take(&mut self.scratch);
        loop {
            // An accumulating run may be due inside the next tick — it
            // must be schedulable before we look at the heap.
            self.close_run();
            let n = self.queue.drain_due_into(until, &mut scratch);
            if n == 0 {
                break;
            }
            if metrics::enabled() {
                net_metrics().batch_drains.inc();
            }
            for i in 0..n {
                let at = scratch.at(i);
                match *scratch.payload(i) {
                    NetEvent::LinkExit { flight } => {
                        if metrics::enabled() {
                            net_metrics().queue_depth.add(-1);
                        }
                        self.process_exit(at, flight);
                    }
                    NetEvent::CohortExit { cohort } => self.process_cohort(at, cohort),
                }
            }
        }
        self.scratch = scratch;
    }

    /// Pop one flight out at the tail of the link its cursor points at:
    /// exit bookkeeping, then either admission onto the next hop or
    /// delivery into the destination inbox. Shared by both loops.
    fn process_exit(&mut self, at: SimTime, slot: u32) {
        // Read the cursor — and advance it when there are hops left —
        // without evicting the flight: a forwarded packet stays in its
        // slot hop after hop.
        let (lid, size, next, member) = {
            let flight = self.flights[slot as usize]
                .as_mut()
                .expect("event referenced an empty flight slot");
            let route = &self.routes[flight.route as usize];
            let hop = flight.hop as usize;
            let lid = route[hop];
            let next = route.get(hop + 1).copied();
            if next.is_some() {
                flight.hop += 1;
            }
            let member = Member {
                slot,
                route: flight.route,
                hop: flight.hop,
                size: flight.size,
            };
            (lid, flight.size, next, member)
        };
        let node = {
            let link = &mut self.links[lid.0];
            link.stats.exited += 1;
            link.stats.exited_bytes += size.as_bytes();
            link.stats.in_flight -= 1;
            link.stats.in_flight_bytes -= size.as_bytes();
            link.to
        };
        if metrics::enabled() {
            let m = net_metrics();
            m.link_bytes_exited.add(size.as_bytes());
            m.in_flight_bytes.add(-(size.as_bytes() as i64));
        }
        if let Some(next_lid) = next {
            let flight = self.flights[slot as usize]
                .as_ref()
                .expect("event referenced an empty flight slot");
            Self::record_tap(
                &self.nodes,
                &mut self.taps,
                node,
                at,
                &flight.packet,
                TapDirection::Transit,
            );
            self.admit_slot(member, next_lid);
        } else {
            let flight = self.free_flight(slot);
            Self::record_tap(
                &self.nodes,
                &mut self.taps,
                node,
                at,
                &flight.packet,
                TapDirection::Ingress,
            );
            if trace::enabled() {
                trace::record(
                    TraceKind::PacketDeliver,
                    at.as_nanos(),
                    0,
                    flight.packet.seq,
                    node as u64,
                    0,
                );
            }
            self.nodes[node].inbox.push_back(Delivered {
                packet: flight.packet,
                at,
            });
        }
    }

    /// Pop a whole cohort of same-instant exits: per-member cursor
    /// advance, tap/delivery bookkeeping, and next-hop admission. Member
    /// iteration order is admission order, which is the scalar processing
    /// order. Exit stats are amortized over consecutive same-link members
    /// (one update per run — the whole cohort on a forwarding chain), and
    /// continuations onto a passthrough next link stream straight into
    /// the accumulating admission run with one stats update per target;
    /// only impaired or rate-limited targets buffer for the batch kernel.
    fn process_cohort(&mut self, at: SimTime, cohort: u32) {
        // Take the member list out of the slab slot (keeping capacity);
        // the slot itself is only recycled at the end, after the list is
        // returned — admissions below may allocate fresh cohorts.
        let mut members = std::mem::take(&mut self.cohorts[cohort as usize].members);
        if metrics::enabled() {
            net_metrics().queue_depth.add(-(members.len() as i64));
        }
        let tracing = trace::enabled();
        // Fast streaming is a batched-mode move: in scalar mode (a
        // leftover cohort after a mid-run switch) every continuation
        // buffers through `admit_batch`, whose scalar arm mints proper
        // `LinkExit` events instead of feeding a run nothing would close.
        let batched = self.drain_mode == DrainMode::Batched;
        // Segment-wise processing: cohort members overwhelmingly arrive
        // in runs sharing one `(route, hop)` cursor (a burst moving down
        // one chain, or an SFU batch per subscriber link), so the loop
        // scans each run once, resolves the link and continuation once,
        // and dispatches the whole segment through a branch-free body —
        // a straight member copy with the cursor advanced for
        // passthrough continuations, a tight slab-to-inbox loop for
        // deliveries. Taps, tracing, and impaired continuations drop to
        // per-member handling inside the segment.
        //
        // Exit-side stats accumulate across consecutive segments on the
        // same link; admission-side runs accumulate across consecutive
        // segments with the same continuation target (delivering
        // segments never split a run — admission order among continuing
        // members is exactly what the scalar loop sees).
        let mut cur_lid = usize::MAX;
        let mut ex_count = 0u64;
        let mut ex_bytes = 0u64;
        let mut adm_lid: Option<LinkId> = None;
        let mut adm_fast = false;
        let mut adm_count = 0u64;
        let mut adm_bytes = 0u64;
        debug_assert!(self.pending_admits.is_empty());
        let n = members.len();
        let mut i = 0usize;
        while i < n {
            let m0 = members[i];
            let key = (m0.route, m0.hop);
            let mut j = i + 1;
            while j < n && (members[j].route, members[j].hop) == key {
                j += 1;
            }
            let seg = &members[i..j];
            let route = &self.routes[m0.route as usize];
            let lid = route[m0.hop as usize];
            let next = route.get(m0.hop as usize + 1).copied();
            let node = self.links[lid.0].to;
            let has_taps = !self.nodes[node].taps.is_empty();
            let seg_count = seg.len() as u64;
            let seg_bytes: u64 = seg.iter().map(|m| m.size.as_bytes()).sum();
            if lid.0 != cur_lid {
                if ex_count > 0 {
                    self.flush_exit_stats(cur_lid, ex_count, ex_bytes);
                }
                cur_lid = lid.0;
                ex_count = 0;
                ex_bytes = 0;
            }
            ex_count += seg_count;
            ex_bytes += seg_bytes;
            if let Some(next_lid) = next {
                if has_taps {
                    for m in seg {
                        let flight = self.flights[m.slot as usize]
                            .as_ref()
                            .expect("cohort referenced an empty flight slot");
                        Self::record_tap(
                            &self.nodes,
                            &mut self.taps,
                            node,
                            at,
                            &flight.packet,
                            TapDirection::Transit,
                        );
                    }
                }
                if adm_lid != Some(next_lid) {
                    if adm_fast {
                        self.flush_fast_admit(adm_lid, adm_count, adm_bytes);
                        adm_count = 0;
                        adm_bytes = 0;
                    } else {
                        self.flush_admissions(at, adm_lid);
                    }
                    adm_lid = Some(next_lid);
                    let link = &self.links[next_lid.0];
                    adm_fast = batched && link.is_passthrough();
                    if adm_fast {
                        let adm_exit = at + link.config.delay + link.config.netem.extra_delay;
                        // Resolve the open run once per target: nothing
                        // between two fast segments of the same target
                        // touches the run (deliveries, taps, and stat
                        // flushes don't schedule), so segments can
                        // append directly below.
                        match self.open_run {
                            Some(run) if run.at == adm_exit => {}
                            _ => {
                                self.close_run();
                                self.open_run = Some(OpenRun { at: adm_exit });
                            }
                        }
                    }
                }
                if adm_fast {
                    self.open_members.extend(seg.iter().map(|&m| Member {
                        hop: m.hop + 1,
                        ..m
                    }));
                    adm_count += seg_count;
                    adm_bytes += seg_bytes;
                } else {
                    self.pending_admits.extend(seg.iter().map(|&m| Member {
                        hop: m.hop + 1,
                        ..m
                    }));
                }
            } else if !has_taps && !tracing {
                // Bulk slot retirement: the whole segment's slots join
                // the free list in one extend, and the inbox borrow is
                // hoisted so the loop is slab-read + queue-write only.
                self.free_flights.extend(seg.iter().map(|m| m.slot));
                let inbox = &mut self.nodes[node].inbox;
                for &m in seg {
                    let flight = self.flights[m.slot as usize]
                        .take()
                        .expect("cohort referenced an empty flight slot");
                    inbox.push_back(Delivered {
                        packet: flight.packet,
                        at,
                    });
                }
            } else {
                for &m in seg {
                    let flight = self.free_flight(m.slot);
                    if has_taps {
                        Self::record_tap(
                            &self.nodes,
                            &mut self.taps,
                            node,
                            at,
                            &flight.packet,
                            TapDirection::Ingress,
                        );
                    }
                    if tracing {
                        trace::record(
                            TraceKind::PacketDeliver,
                            at.as_nanos(),
                            0,
                            flight.packet.seq,
                            node as u64,
                            0,
                        );
                    }
                    self.nodes[node].inbox.push_back(Delivered {
                        packet: flight.packet,
                        at,
                    });
                }
            }
            i = j;
        }
        if ex_count > 0 {
            self.flush_exit_stats(cur_lid, ex_count, ex_bytes);
        }
        if adm_fast {
            self.flush_fast_admit(adm_lid, adm_count, adm_bytes);
        } else {
            self.flush_admissions(at, adm_lid);
        }
        // Return the member list (capacity intact) and recycle the slot.
        members.clear();
        self.cohorts[cohort as usize].members = members;
        self.free_cohorts.push(cohort);
    }

    /// Exit bookkeeping for a run of same-link cohort members.
    fn flush_exit_stats(&mut self, lid: usize, count: u64, bytes: u64) {
        let link = &mut self.links[lid];
        link.stats.exited += count;
        link.stats.exited_bytes += bytes;
        link.stats.in_flight -= count;
        link.stats.in_flight_bytes -= bytes;
        if metrics::enabled() {
            let m = net_metrics();
            m.link_bytes_exited.add(bytes);
            m.in_flight_bytes.add(-(bytes as i64));
        }
    }

    /// Admission bookkeeping for a streamed run of passthrough
    /// continuations (their exits are already in the open run).
    fn flush_fast_admit(&mut self, lid: Option<LinkId>, count: u64, bytes: u64) {
        let Some(lid) = lid else {
            return;
        };
        if count == 0 {
            return;
        }
        let link = &mut self.links[lid.0];
        link.stats.offered += count;
        link.stats.offered_bytes += bytes;
        link.stats.sent += count;
        link.stats.bytes += bytes;
        link.stats.in_flight += count;
        link.stats.in_flight_bytes += bytes;
        if metrics::enabled() {
            let m = net_metrics();
            m.link_packets_sent.add(count);
            m.link_bytes_sent.add(bytes);
            m.in_flight_bytes.add(bytes as i64);
        }
    }

    /// Admit the buffered run of continuations onto `lid`, if any.
    fn flush_admissions(&mut self, at: SimTime, lid: Option<LinkId>) {
        let Some(lid) = lid else {
            return;
        };
        if self.pending_admits.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_admits);
        self.admit_batch(at, lid, &pending);
        self.pending_admits = pending;
        self.pending_admits.clear();
    }

    /// Admit a run of flights onto `lid`, packet-for-packet equivalent to
    /// calling `admit_slot` on each in order. The passthrough fast path
    /// (no rate bottleneck, transparent netem — the overwhelming case on
    /// forwarding cores) schedules the whole run against one precomputed
    /// exit time with one stats/metrics update; everything else funnels
    /// through the netem batch kernel, whose draw order is the scalar
    /// order by construction.
    fn admit_batch(&mut self, at: SimTime, lid: LinkId, members: &[Member]) {
        debug_assert_eq!(at, self.now());
        let now = at;
        if self.links[lid.0].is_passthrough() {
            let link = &self.links[lid.0];
            let exit = now + link.config.delay + link.config.netem.extra_delay;
            let bytes: u64 = members.iter().map(|m| m.size.as_bytes()).sum();
            let count = members.len() as u64;
            let link = &mut self.links[lid.0];
            link.stats.offered += count;
            link.stats.offered_bytes += bytes;
            link.stats.sent += count;
            link.stats.bytes += bytes;
            link.stats.in_flight += count;
            link.stats.in_flight_bytes += bytes;
            if metrics::enabled() {
                let metrics = net_metrics();
                metrics.link_packets_sent.add(count);
                metrics.link_bytes_sent.add(bytes);
                metrics.in_flight_bytes.add(bytes as i64);
            }
            if self.drain_mode == DrainMode::Batched {
                // The whole run shares one exit instant: join or open the
                // accumulating run once and bulk-append, instead of
                // re-matching the target per packet.
                match self.open_run {
                    Some(run) if run.at == exit => {}
                    _ => {
                        self.close_run();
                        self.open_run = Some(OpenRun { at: exit });
                    }
                }
                self.open_members.extend_from_slice(members);
            } else {
                for &m in members {
                    self.schedule_exit(exit, m);
                }
            }
            return;
        }
        // General path: serialize every packet first (serialization draws
        // no randomness and queue-dropped packets skip netem on the scalar
        // path too), then run the batch kernel over the survivors, then
        // apply verdicts in admission order.
        let mut entries = std::mem::take(&mut self.admit_entries);
        let mut surv_sizes = std::mem::take(&mut self.admit_sizes);
        entries.clear();
        surv_sizes.clear();
        for &m in members {
            let link = &mut self.links[lid.0];
            link.stats.offered += 1;
            link.stats.offered_bytes += m.size.as_bytes();
            let serialized = link.serialize(now, m.size);
            if serialized.is_some() {
                surv_sizes.push(m.size);
            }
            entries.push(AdmitEntry { m, serialized });
        }
        let mut out = std::mem::take(&mut self.netem_out);
        self.links[lid.0]
            .config
            .netem
            .apply_batch(now, &surv_sizes, &mut self.rng, &mut out);
        let mut verdict_idx = 0;
        for &AdmitEntry { m, serialized } in &entries {
            let slot = m.slot;
            let size = m.size;
            let Some(serialized) = serialized else {
                // Drop-tail queue drop; `serialize` already counted it.
                self.dropped += 1;
                net_metrics().packets_dropped.inc();
                let flight = self.free_flight(slot);
                if trace::enabled() {
                    trace::record(
                        TraceKind::QueueDrop,
                        now.as_nanos(),
                        0,
                        flight.packet.seq,
                        lid.0 as u64,
                        size.as_bytes(),
                    );
                }
                continue;
            };
            let verdict = out.verdicts()[verdict_idx];
            verdict_idx += 1;
            match verdict {
                NetemVerdict::Drop => {
                    let stats = &mut self.links[lid.0].stats;
                    stats.netem_drops += 1;
                    stats.netem_dropped_bytes += size.as_bytes();
                    self.dropped += 1;
                    net_metrics().packets_dropped.inc();
                    let flight = self.free_flight(slot);
                    if trace::enabled() {
                        trace::record(
                            TraceKind::PacketDrop,
                            now.as_nanos(),
                            0,
                            flight.packet.seq,
                            lid.0 as u64,
                            0,
                        );
                    }
                }
                NetemVerdict::Deliver { delay, corrupt } => {
                    let link = &mut self.links[lid.0];
                    link.stats.sent += 1;
                    link.stats.bytes += size.as_bytes();
                    link.stats.in_flight += 1;
                    link.stats.in_flight_bytes += size.as_bytes();
                    let metrics = net_metrics();
                    metrics.link_packets_sent.inc();
                    metrics.link_bytes_sent.add(size.as_bytes());
                    metrics.in_flight_bytes.add(size.as_bytes() as i64);
                    let exit = serialized + link.config.delay + delay;
                    if corrupt {
                        self.flights[slot as usize]
                            .as_mut()
                            .expect("corrupting an empty flight slot")
                            .packet
                            .corrupted = true;
                    }
                    self.schedule_exit(exit, m);
                }
                NetemVerdict::Duplicate {
                    delay,
                    dup_delay,
                    corrupt,
                } => {
                    let link = &mut self.links[lid.0];
                    link.stats.sent += 1;
                    link.stats.duplicated += 1;
                    link.stats.bytes += size.as_bytes();
                    link.stats.dup_bytes += size.as_bytes();
                    link.stats.in_flight += 2;
                    link.stats.in_flight_bytes += 2 * size.as_bytes();
                    let metrics = net_metrics();
                    metrics.link_packets_sent.inc();
                    metrics.link_bytes_sent.add(size.as_bytes());
                    metrics.link_dup_bytes.add(size.as_bytes());
                    metrics.in_flight_bytes.add(2 * size.as_bytes() as i64);
                    let base = serialized + link.config.delay;
                    if corrupt {
                        self.flights[slot as usize]
                            .as_mut()
                            .expect("corrupting an empty flight slot")
                            .packet
                            .corrupted = true;
                    }
                    let dup = self
                        .flights
                        .get(slot as usize)
                        .and_then(|f| f.clone())
                        .expect("duplicating an empty flight slot");
                    let dup = self.alloc_flight(dup);
                    // Duplicate first, primary second — scalar order.
                    self.schedule_exit(base + dup_delay, Member { slot: dup, ..m });
                    self.schedule_exit(base + delay, m);
                }
            }
        }
        debug_assert_eq!(verdict_idx, out.len());
        self.netem_out = out;
        self.admit_entries = entries;
        self.admit_sizes = surv_sizes;
    }

    /// Drain the inbox of `node`.
    pub fn poll_delivered(&mut self, node: NodeId) -> Vec<Delivered> {
        self.nodes[node.0].inbox.drain(..).collect()
    }

    /// Drain the inbox of `node` as an iterator — no per-poll `Vec`
    /// allocation, for callers (the SFU relay loop, benches) that consume
    /// deliveries in place.
    pub fn drain_delivered(&mut self, node: NodeId) -> impl Iterator<Item = Delivered> + '_ {
        self.nodes[node.0].inbox.drain(..)
    }

    /// Number of packets waiting in `node`'s inbox.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.nodes[node.0].inbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::units::DataRate;
    use visionsim_core::units::ByteSize;

    fn two_node_net(delay_ms: u64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(1);
        let a = net.add_node("a", "test", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "test", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(delay_ms)));
        (net, a, b)
    }

    #[test]
    fn packet_arrives_after_propagation_delay() {
        let (mut net, a, b) = two_node_net(25);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]).unwrap();
        net.run_until(SimTime::from_millis(24));
        assert_eq!(net.inbox_len(b), 0);
        net.run_until(SimTime::from_millis(26));
        let got = net.poll_delivered(b);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, SimTime::from_millis(25));
    }

    #[test]
    fn multi_hop_route_accumulates_delay() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let r = net.add_node("r", "t", GeoPoint::new(41.88, -87.63));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, r, LinkConfig::core(SimDuration::from_millis(10)));
        net.add_duplex(r, b, LinkConfig::core(SimDuration::from_millis(15)));
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 10]).unwrap();
        net.run_until(SimTime::from_secs(1));
        let got = net.poll_delivered(b);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, SimTime::from_millis(25));
    }

    #[test]
    fn dijkstra_picks_the_faster_path() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let slow = net.add_node("slow", "t", GeoPoint::new(41.88, -87.63));
        let fast = net.add_node("fast", "t", GeoPoint::new(39.0, -94.0));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(a, slow, LinkConfig::core(SimDuration::from_millis(50)));
        net.add_duplex(slow, b, LinkConfig::core(SimDuration::from_millis(50)));
        net.add_duplex(a, fast, LinkConfig::core(SimDuration::from_millis(10)));
        net.add_duplex(fast, b, LinkConfig::core(SimDuration::from_millis(10)));
        let route = net.route(a, b).unwrap();
        assert_eq!(route.len(), 2);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 10]).unwrap();
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.poll_delivered(b)[0].at, SimTime::from_millis(20));
    }

    #[test]
    fn no_route_returns_none() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        assert!(net.route(a, b).is_none());
        assert!(net
            .send(a, b, PortPair::new(1, 2), Vec::<u8>::new())
            .is_none());
    }

    #[test]
    fn serialization_rate_bounds_throughput() {
        let mut net = Network::new(1);
        let a = net.add_node("a", "t", GeoPoint::new(37.77, -122.42));
        let b = net.add_node("b", "t", GeoPoint::new(40.71, -74.01));
        let mut cfg = LinkConfig::core(SimDuration::from_millis(1));
        cfg.rate = Some(DataRate::from_mbps(8)); // 1 MB/s
        cfg.queue_limit = ByteSize::from_mb(64);
        net.add_link(a, b, cfg);
        // 100 × 10 KB = 1 MB, takes 1 s to serialize.
        for _ in 0..100 {
            net.send(a, b, PortPair::new(1, 2), vec![0u8; 10_000 - 28])
                .unwrap();
        }
        net.run_until(SimTime::from_millis(500));
        let early = net.poll_delivered(b).len();
        assert!(early < 60, "only ~half should have arrived, got {early}");
        net.run_until(SimTime::from_secs(2));
        assert_eq!(early + net.poll_delivered(b).len(), 100);
    }

    #[test]
    fn netem_loss_drops_packets() {
        let (mut net, a, b) = two_node_net(5);
        // Find the a→b link (index 0 by construction) and set 100% loss.
        net.netem_mut(LinkId(0)).loss = 1.0;
        for _ in 0..10 {
            net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]);
        }
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.poll_delivered(b).len(), 0);
        assert_eq!(net.total_dropped(), 10);
    }

    #[test]
    fn netem_extra_delay_applies_one_direction_only() {
        let (mut net, a, b) = two_node_net(5);
        net.netem_mut(LinkId(0)).extra_delay = SimDuration::from_millis(100);
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 10]).unwrap();
        net.send(b, a, PortPair::new(2, 1), vec![0u8; 10]).unwrap();
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.poll_delivered(b)[0].at, SimTime::from_millis(105));
        assert_eq!(net.poll_delivered(a)[0].at, SimTime::from_millis(5));
    }

    #[test]
    fn taps_observe_all_directions() {
        let mut net = Network::new(1);
        let client = net.add_node("client", "t", GeoPoint::new(37.77, -122.42));
        let ap = net.add_node("ap", "t", GeoPoint::new(37.77, -122.42));
        let server = net.add_node("server", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(client, ap, LinkConfig::wifi_access());
        net.add_duplex(ap, server, LinkConfig::core(SimDuration::from_millis(30)));
        let tap = net.add_tap(ap);
        net.send(client, server, PortPair::new(1, 2), vec![0u8; 100])
            .unwrap();
        net.send(server, client, PortPair::new(2, 1), vec![0u8; 200])
            .unwrap();
        net.run_until(SimTime::from_secs(1));
        let records = net.tap_records(tap);
        // AP transits both packets.
        assert_eq!(records.len(), 2);
        assert!(records
            .iter()
            .all(|r| r.direction == TapDirection::Transit));
    }

    #[test]
    fn corrupted_packets_are_flagged_at_delivery() {
        let (mut net, a, b) = two_node_net(5);
        net.netem_mut(LinkId(0)).corrupt = 1.0;
        net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]).unwrap();
        net.run_until(SimTime::from_secs(1));
        assert!(net.poll_delivered(b)[0].packet.corrupted);
    }

    #[test]
    fn link_stats_conserve_bytes_under_duplication_and_loss() {
        let _g = visionsim_core::par::override_guard();
        sanitizer::force(Some(true));
        sanitizer::reset();
        let (mut net, a, b) = two_node_net(5);
        net.netem_mut(LinkId(0)).loss = 0.3;
        net.netem_mut(LinkId(0)).duplicate = 0.3;
        for _ in 0..200 {
            net.send(a, b, PortPair::new(1, 2), vec![0u8; 100]);
        }
        net.run_until(SimTime::from_secs(2));
        let s = net.link_stats(LinkId(0));
        assert!(s.conserved(), "conservation identity broken: {s:?}");
        assert_eq!(s.in_flight, 0, "everything should have drained");
        assert!(s.duplicated > 0, "duplication never fired at 30%");
        assert!(
            sanitizer::take()
                .iter()
                .all(|v| v.site != "net/conservation"),
            "healthy run must not report conservation violations"
        );
        sanitizer::force(None);
        sanitizer::reset();
    }

    #[test]
    fn geodb_registers_every_node() {
        let (net, a, b) = two_node_net(5);
        assert!(net.geodb().lookup(net.addr(a)).is_some());
        assert!(net.geodb().lookup(net.addr(b)).is_some());
        assert_eq!(net.node_of_addr(net.addr(a)), Some(a));
    }
}
