//! # visionsim-net
//!
//! A deterministic discrete-event packet network. This is the substrate the
//! telepresence sessions run over and the vantage point the measurement
//! tooling observes from, replacing the paper's physical testbed (two WiFi
//! APs with Wireshark, Linux `tc` for impairment injection, TCP pings to
//! provider servers).
//!
//! Design notes (following the event-driven, sans-IO style of embedded
//! network stacks):
//!
//! * No sockets, no threads, no wall clock — a [`Network`] owns an event
//!   queue over virtual time and is advanced explicitly with
//!   [`Network::run_until`].
//! * Links are simplex, with serialization at a configurable rate, FIFO
//!   drop-tail queues, propagation delay, and `tc netem`-style impairments
//!   (extra delay, jitter, random loss, random corruption, token-bucket
//!   shaping).
//! * Packets are source-routed along the lowest-latency path (Dijkstra) at
//!   send time; topology changes invalidate the route cache.
//! * Any node can host a *tap* — the AP-side Wireshark analogue — which
//!   records every packet transiting the node for later flow analysis.

pub mod fault;
pub mod link;
pub mod netem;
pub mod network;
pub mod packet;
pub mod probe;
pub mod shaper;
pub mod tap;
pub mod xshard;

pub use fault::{apply_to_netem, DrawPlan, FaultEvent, FaultKind, FaultPlan, GeConfig, GeKernel, GilbertElliott};
pub use link::{LinkConfig, LinkId};
pub use netem::{Netem, NetemBatch, NetemVerdict, RateProfile, TokenBucket};
pub use network::{Delivered, DrainMode, Network, NodeId};
pub use packet::{Packet, PortPair, IP_UDP_OVERHEAD_BYTES};
pub use probe::{AnycastProbe, RttProber};
pub use shaper::{LinkShaper, QueueLimit, ShaperConfig, ShaperVerdict};
pub use tap::{TapId, TapRecord};
pub use xshard::{LinkMatrix, ShardIngress, SiteEgress};
