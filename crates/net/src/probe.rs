//! Active measurement: RTT probing and anycast detection.
//!
//! The paper measures RTT with TCP pings from each WiFi AP (Apple blocks
//! ICMP), and rules out anycast by probing each discovered server address
//! from multiple vantage points (the methodology of the social-VR
//! measurement study it cites). Both are reproduced over the simulated
//! network.

use crate::network::{Network, NodeId};
use crate::packet::PortPair;
use visionsim_core::stats::StreamingStats;
use visionsim_core::time::SimDuration;
use visionsim_geo::geodb::NetAddr;

/// TCP-ping-style RTT prober: sends a small probe, waits for the echo the
/// prober itself performs on behalf of the responder (TCP SYN/RST
/// semantics — the network stack answers, not the application).
#[derive(Debug)]
pub struct RttProber {
    /// Probe payload size (a bare TCP SYN is 40 B on the wire; our payload
    /// adds to the simulator's fixed 28 B encapsulation).
    pub probe_payload: usize,
    /// Source port used by the probes.
    pub port: u16,
}

impl Default for RttProber {
    fn default() -> Self {
        RttProber {
            probe_payload: 12,
            port: 33_434,
        }
    }
}

impl RttProber {
    /// Run `count` probes from `client` to `server`, `spacing` apart, and
    /// return per-probe RTTs. Probes that receive no echo within
    /// `2 s` are recorded as lost (omitted from the result).
    pub fn probe(
        &self,
        net: &mut Network,
        client: NodeId,
        server: NodeId,
        count: usize,
        spacing: SimDuration,
    ) -> Vec<SimDuration> {
        let mut rtts = Vec::with_capacity(count);
        let timeout = SimDuration::from_secs(2);
        for i in 0..count {
            let ports = PortPair::new(self.port, 7 + i as u16);
            let sent_at = net.now();
            if net
                .send(client, server, ports, vec![0xEC; self.probe_payload])
                .is_none()
            {
                net.run_until(sent_at + spacing);
                continue;
            }
            // Wait for the probe at the server, echo it, wait at the client.
            let deadline = sent_at + timeout;
            let mut echoed = false;
            while net.now() < deadline {
                let next = net.now() + SimDuration::from_millis(1);
                net.run_until(next);
                if !echoed {
                    for d in net.poll_delivered(server) {
                        if d.packet.ports.dst == ports.dst {
                            net.send(server, client, ports.flipped(), d.packet.payload);
                            echoed = true;
                        }
                    }
                }
                let mut done = false;
                for d in net.poll_delivered(client) {
                    if d.packet.ports.src == ports.dst {
                        rtts.push(d.at.since(sent_at));
                        done = true;
                    }
                }
                if done {
                    break;
                }
            }
            let resume = (sent_at + spacing).max(net.now());
            net.run_until(resume);
        }
        rtts
    }

    /// Probe and reduce to summary statistics in milliseconds.
    pub fn probe_stats(
        &self,
        net: &mut Network,
        client: NodeId,
        server: NodeId,
        count: usize,
        spacing: SimDuration,
    ) -> StreamingStats {
        let mut stats = StreamingStats::new();
        for rtt in self.probe(net, client, server, count, spacing) {
            stats.push(rtt.as_millis_f64());
        }
        stats
    }
}

/// What one health probe against a site observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Answered promptly: the site is up with headroom.
    Ok,
    /// Answered late: the site is up but running hot (overload, drain).
    Slow,
    /// No answer before the probe deadline.
    Lost,
}

/// Observed health of a probed site. This is the *monitor's* view, which
/// lags ground truth by the probe cadence — the gap is exactly what makes
/// reconnect storms interesting (clients attempt sites that look alive).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteHealth {
    /// Answering promptly.
    Healthy,
    /// Answering, but slow or hot: usable, admission tightens.
    Degraded,
    /// Not answering: excluded from candidate selection.
    Down,
    /// Answering again after Down, not yet trusted: usable, but one more
    /// clean probe streak is required before Healthy.
    Recovering,
}

impl SiteHealth {
    /// Whether a client should consider the site at all.
    pub fn is_usable(self) -> bool {
        self != SiteHealth::Down
    }

    /// Stable short name for rendering.
    pub fn name(self) -> &'static str {
        match self {
            SiteHealth::Healthy => "healthy",
            SiteHealth::Degraded => "degraded",
            SiteHealth::Down => "down",
            SiteHealth::Recovering => "recovering",
        }
    }
}

/// Streak thresholds of the health state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive lost probes before a Healthy/Degraded site is Down.
    pub down_after: u32,
    /// Consecutive clean probes before a Degraded/Recovering site is
    /// Healthy again.
    pub recover_after: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            down_after: 2,
            recover_after: 2,
        }
    }
}

/// Probe-driven health state machine for one site:
/// Healthy → Degraded → Down → Recovering → Healthy.
///
/// Transitions are pure functions of the probe stream, so a monitor fed
/// the same deterministic probe outcomes replays byte-identically at any
/// thread count.
#[derive(Clone, Copy, Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    state: SiteHealth,
    lost_streak: u32,
    ok_streak: u32,
}

impl HealthMonitor {
    /// A monitor that assumes the site starts Healthy.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            state: SiteHealth::Healthy,
            lost_streak: 0,
            ok_streak: 0,
        }
    }

    /// Current observed state.
    pub fn state(&self) -> SiteHealth {
        self.state
    }

    /// Feed one probe outcome; returns the (possibly new) state.
    pub fn on_probe(&mut self, outcome: ProbeOutcome) -> SiteHealth {
        match outcome {
            ProbeOutcome::Lost => {
                self.lost_streak += 1;
                self.ok_streak = 0;
                if self.lost_streak >= self.cfg.down_after {
                    self.state = SiteHealth::Down;
                } else if self.state == SiteHealth::Healthy {
                    // First miss: benefit of the doubt, but tighten.
                    self.state = SiteHealth::Degraded;
                }
            }
            ProbeOutcome::Slow => {
                self.lost_streak = 0;
                self.ok_streak = 0;
                // A slow answer proves liveness: a Down site surfaces as
                // Recovering, everything else rides at Degraded.
                self.state = if self.state == SiteHealth::Down {
                    SiteHealth::Recovering
                } else {
                    SiteHealth::Degraded
                };
            }
            ProbeOutcome::Ok => {
                self.lost_streak = 0;
                self.ok_streak += 1;
                match self.state {
                    SiteHealth::Down => {
                        self.state = SiteHealth::Recovering;
                        self.ok_streak = 1;
                    }
                    SiteHealth::Degraded | SiteHealth::Recovering => {
                        if self.ok_streak >= self.cfg.recover_after {
                            self.state = SiteHealth::Healthy;
                        }
                    }
                    SiteHealth::Healthy => {}
                }
            }
        }
        self.state
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new(HealthConfig::default())
    }
}

/// Anycast detection: probe one service from many vantage points and see
/// whether the *responding infrastructure* differs by vantage. With
/// unicast, every vantage reaches the same server address; with anycast,
/// BGP steers different vantages to different sites behind one address, so
/// the resolver (which models the client's view of "which server answered
/// me") reports different backend identities.
#[derive(Debug, Default)]
pub struct AnycastProbe;

impl AnycastProbe {
    /// `resolve(vantage)` returns the backend identity observed from that
    /// vantage (for real anycast this is inferred from e.g. RTT-based
    /// fingerprinting or CHAOS-class queries). Returns `true` when the
    /// service looks anycast.
    pub fn is_anycast<F>(&self, vantages: &[NodeId], mut resolve: F) -> bool
    where
        F: FnMut(NodeId) -> NetAddr,
    {
        let mut seen: Option<NetAddr> = None;
        for &v in vantages {
            let backend = resolve(v);
            match seen {
                None => seen = Some(backend),
                Some(prev) if prev != backend => return true,
                _ => {}
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use visionsim_geo::coords::GeoPoint;

    fn probe_net(one_way_ms: u64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(7);
        let c = net.add_node("client", "t", GeoPoint::new(37.77, -122.42));
        let s = net.add_node("server", "t", GeoPoint::new(40.71, -74.01));
        net.add_duplex(c, s, LinkConfig::core(SimDuration::from_millis(one_way_ms)));
        (net, c, s)
    }

    #[test]
    fn rtt_probe_measures_twice_the_one_way_delay() {
        let (mut net, c, s) = probe_net(20);
        let prober = RttProber::default();
        let rtts = prober.probe(&mut net, c, s, 5, SimDuration::from_millis(200));
        assert_eq!(rtts.len(), 5);
        for rtt in rtts {
            let ms = rtt.as_millis_f64();
            assert!((40.0..42.0).contains(&ms), "rtt = {ms}");
        }
    }

    #[test]
    fn probe_stats_have_small_sigma() {
        let (mut net, c, s) = probe_net(35);
        let prober = RttProber::default();
        let stats = prober.probe_stats(&mut net, c, s, 10, SimDuration::from_millis(100));
        assert_eq!(stats.count(), 10);
        assert!(stats.std_dev() < 7.0, "σ = {}", stats.std_dev());
        assert!((stats.mean() - 70.0).abs() < 3.0, "mean = {}", stats.mean());
    }

    #[test]
    fn lost_probes_are_omitted() {
        let (mut net, c, s) = probe_net(20);
        net.netem_mut(crate::link::LinkId(0)).loss = 1.0;
        let prober = RttProber::default();
        let rtts = prober.probe(&mut net, c, s, 3, SimDuration::from_millis(50));
        assert!(rtts.is_empty());
    }

    #[test]
    fn health_machine_walks_the_full_cycle() {
        let mut m = HealthMonitor::default();
        assert_eq!(m.state(), SiteHealth::Healthy);
        // One miss tightens, a second (down_after = 2) takes it out.
        assert_eq!(m.on_probe(ProbeOutcome::Lost), SiteHealth::Degraded);
        assert_eq!(m.on_probe(ProbeOutcome::Lost), SiteHealth::Down);
        assert!(!m.state().is_usable());
        // First clean answer is Recovering, second restores Healthy.
        assert_eq!(m.on_probe(ProbeOutcome::Ok), SiteHealth::Recovering);
        assert!(m.state().is_usable());
        assert_eq!(m.on_probe(ProbeOutcome::Ok), SiteHealth::Healthy);
    }

    #[test]
    fn slow_probes_degrade_without_killing() {
        let mut m = HealthMonitor::default();
        assert_eq!(m.on_probe(ProbeOutcome::Slow), SiteHealth::Degraded);
        // Slow answers never accumulate toward Down…
        for _ in 0..10 {
            assert_eq!(m.on_probe(ProbeOutcome::Slow), SiteHealth::Degraded);
        }
        // …and recovery needs a clean streak, not one lucky probe.
        assert_eq!(m.on_probe(ProbeOutcome::Ok), SiteHealth::Degraded);
        assert_eq!(m.on_probe(ProbeOutcome::Ok), SiteHealth::Healthy);
    }

    #[test]
    fn lost_probe_during_recovery_drops_straight_back_down() {
        let mut m = HealthMonitor::new(HealthConfig {
            down_after: 2,
            recover_after: 3,
        });
        m.on_probe(ProbeOutcome::Lost);
        m.on_probe(ProbeOutcome::Lost);
        assert_eq!(m.state(), SiteHealth::Down);
        m.on_probe(ProbeOutcome::Ok);
        assert_eq!(m.state(), SiteHealth::Recovering);
        // A flapping site re-fails mid-recovery: streak restarts.
        m.on_probe(ProbeOutcome::Lost);
        m.on_probe(ProbeOutcome::Lost);
        assert_eq!(m.state(), SiteHealth::Down);
    }

    #[test]
    fn unicast_is_not_flagged_as_anycast() {
        let vantages = vec![NodeId(0), NodeId(1), NodeId(2)];
        let detector = AnycastProbe;
        assert!(!detector.is_anycast(&vantages, |_| NetAddr(42)));
    }

    #[test]
    fn anycast_is_detected() {
        let vantages = vec![NodeId(0), NodeId(1), NodeId(2)];
        let detector = AnycastProbe;
        assert!(detector.is_anycast(&vantages, |v| NetAddr(v.0 as u32)));
    }
}
