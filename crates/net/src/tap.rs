//! Packet taps — the Wireshark-at-the-AP analogue.
//!
//! The paper captures traffic at each user's WiFi AP. A tap registered on a
//! node records a [`TapRecord`] for every packet transiting (entering or
//! being forwarded by) that node, including the direction relative to the
//! node, so downstream analysis can separate uplink from downlink exactly
//! as the paper does.
//!
//! A record is a fixed-size `Copy` value: the retained payload prefix lives
//! in an inline [`HeaderSnippet`] (no heap allocation per observation), so
//! capturing at line rate costs only an amortized `Vec` push.

use crate::packet::{Packet, PortPair};
use visionsim_core::time::SimTime;
use visionsim_core::units::ByteSize;
use visionsim_geo::geodb::NetAddr;

/// Identifier of a registered tap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TapId(pub usize);

/// Direction of a packet relative to the tapped node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TapDirection {
    /// Leaving the tapped node (uplink from its perspective).
    Egress,
    /// Arriving at the tapped node (downlink).
    Ingress,
    /// Transiting (the node forwards it) — seen by AP taps for the client
    /// behind them.
    Transit,
}

/// How many payload bytes a tap retains for classification.
pub const SNIPPET_LEN: usize = 16;

/// The first bytes of a captured payload, stored inline (length-prefixed
/// `[u8; SNIPPET_LEN]`) so a tap observation performs no heap allocation.
/// Dereferences to the valid prefix as a `&[u8]`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct HeaderSnippet {
    len: u8,
    bytes: [u8; SNIPPET_LEN],
}

impl HeaderSnippet {
    /// Retain the first [`SNIPPET_LEN`] bytes of `payload` (fewer if the
    /// payload is shorter).
    pub fn from_payload(payload: &[u8]) -> Self {
        let len = payload.len().min(SNIPPET_LEN);
        let mut bytes = [0u8; SNIPPET_LEN];
        bytes[..len].copy_from_slice(&payload[..len]);
        HeaderSnippet {
            len: len as u8,
            bytes,
        }
    }

    /// The retained bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }
}

impl std::ops::Deref for HeaderSnippet {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for HeaderSnippet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq<[u8]> for HeaderSnippet {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for HeaderSnippet {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// One captured packet observation. `Copy` and heap-free: draining or
/// replaying a capture moves plain values.
#[derive(Clone, Copy, Debug)]
pub struct TapRecord {
    /// Capture timestamp.
    pub at: SimTime,
    /// Source address.
    pub src: NetAddr,
    /// Destination address.
    pub dst: NetAddr,
    /// UDP ports.
    pub ports: PortPair,
    /// On-the-wire size.
    pub wire_size: ByteSize,
    /// First bytes of the payload (enough for protocol classification —
    /// real payloads are encrypted anyway).
    pub header_snippet: HeaderSnippet,
    /// Direction relative to the tapped node.
    pub direction: TapDirection,
    /// Whether the packet was corrupted in flight.
    pub corrupted: bool,
}

impl TapRecord {
    /// Build a record from a packet observed at `at`.
    pub fn capture(at: SimTime, packet: &Packet, direction: TapDirection) -> Self {
        TapRecord {
            at,
            src: packet.src,
            dst: packet.dst,
            ports: packet.ports,
            wire_size: packet.wire_size(),
            header_snippet: HeaderSnippet::from_payload(&packet.payload),
            direction,
            corrupted: packet.corrupted,
        }
    }
}

/// Storage for one tap.
#[derive(Clone, Debug, Default)]
pub struct Tap {
    /// Which node the tap observes.
    pub node: usize,
    /// Captured records, in capture order.
    pub records: Vec<TapRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_retains_header_snippet_only() {
        let p = Packet {
            seq: 1,
            src: NetAddr(10),
            dst: NetAddr(20),
            ports: PortPair::new(1000, 2000),
            payload: (0u8..64).collect::<Vec<u8>>().into(),
            sent_at: SimTime::ZERO,
            corrupted: false,
        };
        let r = TapRecord::capture(SimTime::from_millis(3), &p, TapDirection::Egress);
        assert_eq!(r.header_snippet.len(), SNIPPET_LEN);
        assert_eq!(r.header_snippet[0], 0);
        assert_eq!(r.wire_size, ByteSize::from_bytes(64 + 28));
        assert_eq!(r.direction, TapDirection::Egress);
    }

    #[test]
    fn short_payloads_truncate_snippet() {
        let p = Packet {
            seq: 1,
            src: NetAddr(10),
            dst: NetAddr(20),
            ports: PortPair::new(1, 2),
            payload: vec![7, 8, 9].into(),
            sent_at: SimTime::ZERO,
            corrupted: true,
        };
        let r = TapRecord::capture(SimTime::ZERO, &p, TapDirection::Ingress);
        assert_eq!(r.header_snippet, vec![7, 8, 9]);
        assert!(r.corrupted);
    }

    #[test]
    fn records_are_fixed_size_and_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<TapRecord>();
        // The snippet is inline: a record owns no heap storage.
        let s = HeaderSnippet::from_payload(&[1, 2, 3]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(&*s, &[1, 2, 3][..]);
        assert_eq!(HeaderSnippet::default().as_slice(), &[] as &[u8]);
    }
}
