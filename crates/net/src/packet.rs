//! Packets on the simulated wire.
//!
//! A [`Packet`] carries an opaque application payload (produced by
//! `visionsim-transport` framing) between two endpoint addresses. The wire
//! size adds the IPv4+UDP encapsulation overhead the paper's Wireshark
//! captures would count.
//!
//! The payload is a shared immutable buffer (`Arc<[u8]>`): duplication,
//! multi-hop forwarding, retransmission, and SFU fan-out to N subscribers
//! all reference one allocation made when the frame was emitted. Per-packet
//! mutable state (`seq`, `sent_at`, `corrupted`) stays inline in the
//! `Packet` value, so an impairment verdict never forces a payload copy.

use std::sync::Arc;
use visionsim_core::time::SimTime;
use visionsim_core::units::ByteSize;
use visionsim_geo::geodb::NetAddr;

/// IPv4 (20 B) + UDP (8 B) encapsulation overhead.
pub const IP_UDP_OVERHEAD_BYTES: u64 = 28;

/// A (source port, destination port) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortPair {
    /// Source UDP port.
    pub src: u16,
    /// Destination UDP port.
    pub dst: u16,
}

impl PortPair {
    /// Construct a pair.
    pub fn new(src: u16, dst: u16) -> Self {
        PortPair { src, dst }
    }

    /// The reverse direction.
    pub fn flipped(self) -> Self {
        PortPair {
            src: self.dst,
            dst: self.src,
        }
    }
}

/// A packet in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Network-wide unique sequence number (assigned at send).
    pub seq: u64,
    /// Source endpoint address.
    pub src: NetAddr,
    /// Destination endpoint address.
    pub dst: NetAddr,
    /// UDP ports.
    pub ports: PortPair,
    /// Application payload bytes (transport framing included), shared
    /// across every in-flight copy of the frame. Cloning a `Packet` bumps
    /// a refcount; it never copies payload bytes.
    pub payload: Arc<[u8]>,
    /// When the packet entered the network.
    pub sent_at: SimTime,
    /// Set by the corruption impairment; receivers treat the payload as
    /// garbage, taps still count the bytes.
    pub corrupted: bool,
}

impl Packet {
    /// Total on-the-wire size: payload plus IP+UDP encapsulation.
    pub fn wire_size(&self) -> ByteSize {
        ByteSize::from_bytes(self.payload.len() as u64 + IP_UDP_OVERHEAD_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(payload_len: usize) -> Packet {
        Packet {
            seq: 0,
            src: NetAddr(1),
            dst: NetAddr(2),
            ports: PortPair::new(5004, 5004),
            payload: vec![0u8; payload_len].into(),
            sent_at: SimTime::ZERO,
            corrupted: false,
        }
    }

    #[test]
    fn wire_size_includes_encapsulation() {
        assert_eq!(packet(1000).wire_size(), ByteSize::from_bytes(1028));
        assert_eq!(packet(0).wire_size(), ByteSize::from_bytes(28));
    }

    #[test]
    fn clone_shares_the_payload_allocation() {
        let p = packet(512);
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.payload, &q.payload));
    }

    #[test]
    fn port_pair_flip_is_involutive() {
        let p = PortPair::new(1234, 443);
        assert_eq!(p.flipped().flipped(), p);
        assert_eq!(p.flipped(), PortPair::new(443, 1234));
    }
}
