//! # visionsim-mesh
//!
//! Triangle-mesh substrate for the spatial persona: geometry types, a
//! parametric human-head/hand generator that hits exact triangle budgets
//! (the persona mesh is 78,030 triangles per the paper's RealityKit
//! readings), a vertex-clustering LOD decimator (the mechanism behind the
//! visibility-aware quality levels of Figure 5), and a Draco-style
//! compression codec (quantization + delta prediction + rANS entropy
//! coding) used to reproduce the §4.3 finding that direct mesh streaming
//! needs two orders of magnitude more bandwidth than what FaceTime ships.
//! Generation is memoized process-wide in [`cache`] (bounded, `Arc`-shared)
//! so parallel experiment cells never rebuild an identical mesh.

pub mod cache;
pub mod codec;
pub mod generate;
pub mod geometry;
pub mod lod;
pub mod stream;
pub mod texture;

pub use codec::{decode_mesh, encode_mesh, MeshCodecConfig};
pub use generate::{hand_mesh, head_mesh, PERSONA_TRIANGLES};
pub use geometry::{Aabb, TriangleMesh, Vec3};
pub use lod::{decimate_to, LodChain};
pub use stream::MeshStreamer;
pub use texture::TextureSpec;
