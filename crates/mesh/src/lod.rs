//! Level-of-detail decimation.
//!
//! Figure 5 shows the persona rendered at several quality levels: the full
//! 78,030 triangles at one metre, ~45k beyond three metres (distance-aware),
//! ~21k in peripheral vision (foveated), and a 36-triangle proxy when
//! outside the viewport. [`decimate_to`] reproduces the mechanism — vertex
//! clustering on a uniform grid, with the cell size solved by bisection to
//! land near a requested triangle budget — and [`LodChain`] precomputes the
//! ladder the renderer switches between.

use crate::geometry::{Aabb, TriangleMesh, Vec3};
use std::collections::HashMap;

/// Cluster vertices on a uniform grid with `cells` cells along the longest
/// axis; every vertex in a cell collapses to the cell's average position.
/// Triangles whose corners merge are dropped.
pub fn cluster(mesh: &TriangleMesh, cells: usize) -> TriangleMesh {
    assert!(cells >= 1);
    let Some(bb) = mesh.bounds() else {
        return TriangleMesh::empty();
    };
    let cell_size = (bb.max_extent() / cells as f32).max(f32::EPSILON);
    let key = |p: &Vec3| -> (i32, i32, i32) {
        (
            ((p.x - bb.min.x) / cell_size).floor() as i32,
            ((p.y - bb.min.y) / cell_size).floor() as i32,
            ((p.z - bb.min.z) / cell_size).floor() as i32,
        )
    };
    let mut cell_of_vertex = Vec::with_capacity(mesh.positions.len());
    let mut cell_index: HashMap<(i32, i32, i32), u32> = HashMap::new();
    let mut sums: Vec<(Vec3, u32)> = Vec::new();
    for p in &mesh.positions {
        let k = key(p);
        let idx = *cell_index.entry(k).or_insert_with(|| {
            sums.push((Vec3::ZERO, 0));
            (sums.len() - 1) as u32
        });
        sums[idx as usize].0 = sums[idx as usize].0 + *p;
        sums[idx as usize].1 += 1;
        cell_of_vertex.push(idx);
    }
    let positions: Vec<Vec3> = sums
        .into_iter()
        .map(|(sum, n)| sum * (1.0 / n as f32))
        .collect();
    let mut triangles = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for t in &mesh.triangles {
        let a = cell_of_vertex[t[0] as usize];
        let b = cell_of_vertex[t[1] as usize];
        let c = cell_of_vertex[t[2] as usize];
        if a == b || b == c || a == c {
            continue;
        }
        // Deduplicate triangles that collapse onto each other.
        let mut k = [a, b, c];
        k.sort_unstable();
        if seen.insert(k) {
            triangles.push([a, b, c]);
        }
    }
    TriangleMesh {
        positions,
        triangles,
    }
}

/// Decimate `mesh` to approximately `target_triangles` by bisecting the
/// clustering resolution. Returns the closest achieved level (clustering is
/// quantized, so the landing error is typically a few percent).
pub fn decimate_to(mesh: &TriangleMesh, target_triangles: usize) -> TriangleMesh {
    if target_triangles >= mesh.triangle_count() {
        return mesh.clone();
    }
    if target_triangles == 0 {
        return TriangleMesh::empty();
    }
    let mut lo = 1usize; // coarsest
    let mut hi = 2_048usize; // finest we will try
    let mut best: Option<TriangleMesh> = None;
    let mut best_err = usize::MAX;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        let candidate = cluster(mesh, mid);
        let count = candidate.triangle_count();
        let err = count.abs_diff(target_triangles);
        if err < best_err {
            best_err = err;
            best = Some(candidate.clone());
        }
        if count > target_triangles {
            hi = mid - 1;
        } else if count < target_triangles {
            lo = mid + 1;
        } else {
            break;
        }
    }
    best.expect("bisection explored at least one level")
}

/// A precomputed LOD ladder, finest first.
#[derive(Clone, Debug)]
pub struct LodChain {
    levels: Vec<TriangleMesh>,
}

impl LodChain {
    /// Build a chain from `mesh` with the given triangle budgets (the full
    /// mesh is always level 0; budgets must be strictly decreasing).
    pub fn build(mesh: &TriangleMesh, budgets: &[usize]) -> Self {
        let mut prev = mesh.triangle_count();
        let mut levels = vec![mesh.clone()];
        for &b in budgets {
            assert!(b < prev, "budgets must be strictly decreasing");
            prev = b;
            levels.push(decimate_to(mesh, b));
        }
        LodChain { levels }
    }

    /// Number of levels (including the full mesh).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True if the chain is just the full mesh.
    pub fn is_empty(&self) -> bool {
        self.levels.len() <= 1
    }

    /// Level `i` (0 = full detail).
    pub fn level(&self, i: usize) -> &TriangleMesh {
        &self.levels[i.min(self.levels.len() - 1)]
    }

    /// The coarsest level.
    pub fn coarsest(&self) -> &TriangleMesh {
        self.levels.last().expect("chain has at least one level")
    }

    /// Triangle counts per level, finest first.
    pub fn triangle_counts(&self) -> Vec<usize> {
        self.levels.iter().map(|m| m.triangle_count()).collect()
    }
}

/// Bounding box of a mesh after decimation stays inside (a slightly padded
/// copy of) the original box — used by tests and the renderer's culling.
pub fn bounds_contained(inner: &Aabb, outer: &Aabb, pad: f32) -> bool {
    inner.min.x >= outer.min.x - pad
        && inner.min.y >= outer.min.y - pad
        && inner.min.z >= outer.min.z - pad
        && inner.max.x <= outer.max.x + pad
        && inner.max.y <= outer.max.y + pad
        && inner.max.z <= outer.max.z + pad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{head_mesh, PERSONA_TRIANGLES};

    #[test]
    fn clustering_reduces_triangles() {
        let m = head_mesh(20_000, 1);
        let d = cluster(&m, 16);
        assert!(d.triangle_count() < m.triangle_count() / 4);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn decimate_hits_figure5_budgets_within_tolerance() {
        let m = head_mesh(PERSONA_TRIANGLES, 1);
        for target in [45_036usize, 21_036] {
            let d = decimate_to(&m, target);
            let got = d.triangle_count();
            assert!(
                got.abs_diff(target) * 5 < target,
                "target {target}, got {got}"
            );
        }
    }

    #[test]
    fn decimate_to_tiny_proxy_works() {
        // The out-of-viewport proxy is 36 triangles.
        let m = head_mesh(PERSONA_TRIANGLES, 1);
        let d = decimate_to(&m, 36);
        let got = d.triangle_count();
        assert!((10..=100).contains(&got), "got {got}");
        assert!(d.validate().is_ok());
    }

    #[test]
    fn decimate_is_identity_when_target_not_smaller() {
        let m = head_mesh(5_000, 2);
        let d = decimate_to(&m, 100_000);
        assert_eq!(d.triangle_count(), m.triangle_count());
    }

    #[test]
    fn decimate_to_zero_is_empty() {
        let m = head_mesh(5_000, 2);
        assert_eq!(decimate_to(&m, 0).triangle_count(), 0);
    }

    #[test]
    fn decimated_mesh_stays_within_bounds() {
        let m = head_mesh(PERSONA_TRIANGLES, 3);
        let outer = m.bounds().unwrap();
        let d = decimate_to(&m, 20_000);
        let inner = d.bounds().unwrap();
        assert!(bounds_contained(&inner, &outer, 1e-4));
    }

    #[test]
    fn lod_chain_counts_are_decreasing() {
        let m = head_mesh(PERSONA_TRIANGLES, 1);
        let chain = LodChain::build(&m, &[45_036, 21_036, 36]);
        let counts = chain.triangle_counts();
        assert_eq!(counts.len(), 4);
        assert_eq!(counts[0], PERSONA_TRIANGLES);
        for w in counts.windows(2) {
            assert!(w[0] > w[1], "not decreasing: {counts:?}");
        }
    }

    #[test]
    fn lod_level_out_of_range_clamps_to_coarsest() {
        let m = head_mesh(10_000, 1);
        let chain = LodChain::build(&m, &[1_000]);
        assert_eq!(
            chain.level(99).triangle_count(),
            chain.coarsest().triangle_count()
        );
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn lod_chain_rejects_non_decreasing_budgets() {
        let m = head_mesh(10_000, 1);
        LodChain::build(&m, &[20_000]);
    }

    #[test]
    fn empty_mesh_clusters_to_empty() {
        let e = TriangleMesh::empty();
        assert_eq!(cluster(&e, 8).triangle_count(), 0);
    }
}
