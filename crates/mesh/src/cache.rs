//! Process-wide memoized mesh generation.
//!
//! Generating a persona head is O(triangles) of trigonometry, and a LOD
//! chain adds a bisection of vertex-clustering passes on top — yet every
//! (params, seed) pair is fully deterministic, so regenerating one per
//! session/repeat/benchmark iteration is pure waste. The experiment
//! harness fans cells across threads ([`visionsim_core::par`]), which
//! multiplies the waste: each worker would rebuild the same 78k-triangle
//! head. This module memoizes generation behind `Arc`s so each distinct
//! mesh is built once per process and shared immutably everywhere.
//!
//! The tables are bounded at [`CACHE_CAPACITY`] entries each (FIFO
//! eviction) so sweeps over many distinct seeds cannot grow memory without
//! limit. Lookups hold the table lock across a miss's generation: when
//! parallel cells race for the same mesh, one builds it and the rest wait
//! and share, rather than all building it.

use crate::generate::{hand_mesh, head_mesh};
use crate::geometry::TriangleMesh;
use crate::lod::LodChain;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum entries per table before FIFO eviction kicks in.
pub const CACHE_CAPACITY: usize = 32;

/// A bounded FIFO-evicting memo table.
struct Memo<K, V> {
    map: HashMap<K, Arc<V>>,
    order: VecDeque<K>,
}

impl<K: Clone + Eq + Hash, V> Memo<K, V> {
    fn new() -> Self {
        Memo {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get_or_insert_with(&mut self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        if let Some(v) = self.map.get(&key) {
            return Arc::clone(v);
        }
        if self.map.len() >= CACHE_CAPACITY {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        let v = Arc::new(build());
        self.map.insert(key.clone(), Arc::clone(&v));
        self.order.push_back(key);
        v
    }
}

type MeshKey = (usize, u64);
type ChainKey = (usize, u64, Vec<usize>);

fn heads() -> &'static Mutex<Memo<MeshKey, TriangleMesh>> {
    static T: OnceLock<Mutex<Memo<MeshKey, TriangleMesh>>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(Memo::new()))
}

fn hands() -> &'static Mutex<Memo<MeshKey, TriangleMesh>> {
    static T: OnceLock<Mutex<Memo<MeshKey, TriangleMesh>>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(Memo::new()))
}

fn chains() -> &'static Mutex<Memo<ChainKey, LodChain>> {
    static T: OnceLock<Mutex<Memo<ChainKey, LodChain>>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(Memo::new()))
}

/// Memoized [`head_mesh`]: built once per (target, seed), then shared.
pub fn head(target_triangles: usize, seed: u64) -> Arc<TriangleMesh> {
    heads()
        .lock()
        .expect("mesh cache lock")
        .get_or_insert_with((target_triangles, seed), || {
            head_mesh(target_triangles, seed)
        })
}

/// Memoized [`hand_mesh`].
pub fn hand(target_triangles: usize, seed: u64) -> Arc<TriangleMesh> {
    hands()
        .lock()
        .expect("mesh cache lock")
        .get_or_insert_with((target_triangles, seed), || {
            hand_mesh(target_triangles, seed)
        })
}

/// Memoized LOD chain over the (also memoized) head of
/// (`target_triangles`, `seed`), decimated to `budgets`.
pub fn head_lod_chain(target_triangles: usize, seed: u64, budgets: &[usize]) -> Arc<LodChain> {
    let key = (target_triangles, seed, budgets.to_vec());
    // Resolve the base mesh first so the two table locks never nest.
    let base = head(target_triangles, seed);
    chains()
        .lock()
        .expect("mesh cache lock")
        .get_or_insert_with(key, || LodChain::build(&base, budgets))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_head_lookup_is_the_same_allocation() {
        let a = head(5_000, 0xCAFE);
        let b = head(5_000, 0xCAFE);
        assert!(Arc::ptr_eq(&a, &b), "cache missed on identical params");
        assert_eq!(*a, head_mesh(5_000, 0xCAFE));
    }

    #[test]
    fn distinct_params_get_distinct_meshes() {
        let a = head(5_000, 1);
        let b = head(5_000, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.positions, b.positions);
    }

    #[test]
    fn chain_lookup_is_memoized_and_matches_direct_build() {
        let budgets = [2_000usize, 500, 36];
        let a = head_lod_chain(4_000, 7, &budgets);
        let b = head_lod_chain(4_000, 7, &budgets);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), budgets.len() + 1);
        let direct = LodChain::build(&head_mesh(4_000, 7), &budgets);
        for i in 0..a.len() {
            assert_eq!(a.level(i), direct.level(i));
        }
    }

    #[test]
    fn capacity_is_bounded_with_fifo_eviction() {
        let mut memo: Memo<u64, u64> = Memo::new();
        for k in 0..(CACHE_CAPACITY as u64 + 10) {
            memo.get_or_insert_with(k, || k);
        }
        assert_eq!(memo.map.len(), CACHE_CAPACITY);
        assert_eq!(memo.order.len(), CACHE_CAPACITY);
        // The oldest keys were evicted; a re-request rebuilds.
        assert!(!memo.map.contains_key(&0));
        assert!(memo.map.contains_key(&(CACHE_CAPACITY as u64 + 9)));
    }

    #[test]
    fn hands_are_cached_separately_from_heads() {
        let head = head(1_000, 3);
        let hand = hand(1_000, 3);
        assert_ne!(head.positions, hand.positions);
        assert!(Arc::ptr_eq(&hand, &super::hand(1_000, 3)));
    }
}
