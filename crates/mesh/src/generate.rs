//! Parametric persona-mesh generation.
//!
//! RealityKit reports the spatial persona as a 78,030-triangle mesh; the
//! §4.3 mesh-streaming experiment uses five human heads of ~70k–90k
//! triangles from Sketchfab. We generate head-like meshes procedurally: a
//! UV-sphere lattice deformed into a head silhouette (elongated cranium,
//! jaw taper, nose bump) plus organic noise so successive "people" differ.
//! The lattice resolution is solved so the triangle count lands *exactly*
//! on target when the target admits the UV factorization, and within a few
//! triangles otherwise.

use crate::geometry::{TriangleMesh, Vec3};
use visionsim_core::rng::SimRng;

/// The spatial persona's triangle budget on Vision Pro (RealityKit, §4.3).
pub const PERSONA_TRIANGLES: usize = 78_030;

/// Choose a (segments, rings) pair whose UV-sphere triangle count
/// `2 * segments * (rings - 1)` is as close as possible to `target`.
fn solve_lattice(target: usize) -> (usize, usize) {
    assert!(target >= 8, "target too small for a closed mesh");
    let mut best = (4usize, 3usize);
    let mut best_err = usize::MAX;
    // Prefer near-square lattices: segments ≈ sqrt(target / 2).
    let ideal = ((target / 2) as f64).sqrt() as usize;
    let lo = (ideal / 2).max(3);
    let hi = ideal * 2 + 3;
    for segments in lo..=hi {
        let rings = (target + segments) / (2 * segments) + 1; // round to nearest
        for r in [rings.saturating_sub(1).max(2), rings, rings + 1] {
            let count = 2 * segments * (r - 1);
            let err = count.abs_diff(target);
            if err < best_err {
                best_err = err;
                best = (segments, r);
            }
        }
    }
    best
}

/// Build a UV sphere of unit radius with the given lattice. Poles are
/// handled by degenerate-free caps: the top and bottom rings connect to
/// single pole vertices.
fn uv_sphere(segments: usize, rings: usize) -> TriangleMesh {
    assert!(segments >= 3 && rings >= 2);
    let mut positions = Vec::new();
    // Interior rings (exclude poles): rings - 1 of them.
    for r in 1..rings {
        let phi = std::f32::consts::PI * r as f32 / rings as f32;
        for s in 0..segments {
            let theta = 2.0 * std::f32::consts::PI * s as f32 / segments as f32;
            positions.push(Vec3::new(
                phi.sin() * theta.cos(),
                phi.cos(),
                phi.sin() * theta.sin(),
            ));
        }
    }
    let top = positions.len() as u32;
    positions.push(Vec3::new(0.0, 1.0, 0.0));
    let bottom = positions.len() as u32;
    positions.push(Vec3::new(0.0, -1.0, 0.0));

    let mut triangles = Vec::new();
    let ring_start = |r: usize| (r * segments) as u32;
    // Caps.
    for s in 0..segments as u32 {
        let next = (s + 1) % segments as u32;
        triangles.push([top, ring_start(0) + s, ring_start(0) + next]);
        let last = ring_start(rings - 2);
        triangles.push([bottom, last + next, last + s]);
    }
    // Bands between interior rings.
    for r in 0..rings.saturating_sub(2) {
        let a = ring_start(r);
        let b = ring_start(r + 1);
        for s in 0..segments as u32 {
            let next = (s + 1) % segments as u32;
            triangles.push([a + s, b + s, b + next]);
            triangles.push([a + s, b + next, a + next]);
        }
    }
    TriangleMesh {
        positions,
        triangles,
    }
}

/// Smooth pseudo-noise over the sphere: a handful of random low-frequency
/// sinusoidal bumps, enough to make each generated "person" distinct.
fn organic_offset(p: &Vec3, bumps: &[(Vec3, f32, f32)]) -> f32 {
    bumps
        .iter()
        .map(|(dir, freq, amp)| amp * (p.dot(dir) * freq).sin())
        .sum()
}

/// Generate a head-like mesh with approximately `target_triangles`
/// triangles. `seed` varies the head shape (the five Sketchfab heads of the
/// paper's experiment are five seeds).
///
/// The mesh is sized like a human head: ~0.24 m tall, centred at origin.
pub fn head_mesh(target_triangles: usize, seed: u64) -> TriangleMesh {
    let (segments, rings) = solve_lattice(target_triangles);
    let mut mesh = uv_sphere(segments, rings);
    let mut rng = SimRng::seed_from_u64(seed);
    let bumps: Vec<(Vec3, f32, f32)> = (0..6)
        .map(|_| {
            let dir = Vec3::new(
                rng.uniform_range(-1.0, 1.0) as f32,
                rng.uniform_range(-1.0, 1.0) as f32,
                rng.uniform_range(-1.0, 1.0) as f32,
            )
            .normalized();
            (
                dir,
                rng.uniform_range(2.0, 7.0) as f32,
                rng.uniform_range(0.004, 0.012) as f32,
            )
        })
        .collect();
    for p in &mut mesh.positions {
        // Head silhouette: elongate vertically, taper the jaw (lower
        // hemisphere), flatten the back, add a nose bump on +Z.
        let mut q = *p;
        q.y *= 1.25;
        if q.y < 0.0 {
            let taper = 1.0 - 0.35 * (-q.y).min(1.0);
            q.x *= taper;
            q.z *= taper;
        }
        if q.z < 0.0 {
            q.z *= 0.92; // flatter occiput
        }
        // Nose: bump where the surface faces +Z near the equator.
        let nose = (q.z.max(0.0) * (1.0 - q.y.abs())).powi(3) * 0.18;
        q.z += nose;
        let n = organic_offset(p, &bumps);
        q = q + p.normalized() * n;
        // Scale to head size (radius ~0.095 m → ~0.24 m tall after the
        // 1.25 elongation).
        *p = q * 0.095;
    }
    mesh
}

/// Generate a hand-like mesh (used alongside the head in the spatial
/// persona; the paper's keypoint accounting gives each hand 21 keypoints).
/// Hands are far coarser than heads.
pub fn hand_mesh(target_triangles: usize, seed: u64) -> TriangleMesh {
    let (segments, rings) = solve_lattice(target_triangles);
    let mut mesh = uv_sphere(segments, rings);
    let mut rng = SimRng::seed_from_u64(seed ^ 0x4A4E_D5EE);
    let squash = rng.uniform_range(0.30, 0.40) as f32;
    for p in &mut mesh.positions {
        let mut q = *p;
        q.z *= squash; // palm flatness
        q.x *= 1.2; // palm width
        *p = q * 0.05; // ~10 cm across
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persona_budget_is_hit_exactly() {
        // 78,030 = 2 · 289 · 135 admits the UV factorization exactly.
        let m = head_mesh(PERSONA_TRIANGLES, 1);
        assert_eq!(m.triangle_count(), PERSONA_TRIANGLES);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn sketchfab_range_heads_land_close() {
        for (i, target) in [70_000usize, 75_000, 80_000, 85_000, 90_000]
            .into_iter()
            .enumerate()
        {
            let m = head_mesh(target, i as u64);
            let got = m.triangle_count();
            assert!(
                got.abs_diff(target) * 100 < target,
                "target {target}, got {got}"
            );
            assert!(m.validate().is_ok());
        }
    }

    #[test]
    fn different_seeds_produce_different_heads() {
        let a = head_mesh(10_000, 1);
        let b = head_mesh(10_000, 2);
        assert_eq!(a.triangle_count(), b.triangle_count());
        assert_ne!(a.positions, b.positions);
    }

    #[test]
    fn same_seed_is_deterministic() {
        assert_eq!(head_mesh(5_000, 9), head_mesh(5_000, 9));
    }

    #[test]
    fn head_is_head_sized() {
        let m = head_mesh(PERSONA_TRIANGLES, 3);
        let bb = m.bounds().unwrap();
        let height = bb.extent().y;
        assert!(
            (0.18..0.32).contains(&height),
            "head height {height} m is implausible"
        );
    }

    #[test]
    fn head_is_asymmetric_front_to_back() {
        // The nose bump should push +Z further out than −Z.
        let m = head_mesh(PERSONA_TRIANGLES, 4);
        let bb = m.bounds().unwrap();
        assert!(bb.max.z > -bb.min.z, "nose not detected");
    }

    #[test]
    fn hand_mesh_is_flat_and_small() {
        let m = hand_mesh(1_000, 1);
        assert!(m.validate().is_ok());
        let bb = m.bounds().unwrap();
        let e = bb.extent();
        assert!(e.z < e.x, "palm should be flatter than wide");
        assert!(e.x < 0.2);
    }

    #[test]
    fn lattice_solver_is_sane_for_small_targets() {
        for target in [8usize, 100, 1_000, 4_242] {
            let (s, r) = solve_lattice(target);
            let count = 2 * s * (r - 1);
            assert!(
                count.abs_diff(target) * 20 < target.max(40),
                "target {target} → {count}"
            );
        }
    }

    #[test]
    fn sphere_topology_is_closed() {
        // Euler characteristic of a sphere: V - E + F = 2.
        let m = uv_sphere(16, 9);
        let v = m.vertex_count() as i64;
        let f = m.triangle_count() as i64;
        let mut edges = std::collections::HashSet::new();
        for t in &m.triangles {
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[0], t[2])] {
                edges.insert((a.min(b), a.max(b)));
            }
        }
        let e = edges.len() as i64;
        assert_eq!(v - e + f, 2, "V={v} E={e} F={f}");
    }
}
