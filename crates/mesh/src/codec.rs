//! Draco-style mesh compression.
//!
//! The same pipeline shape as Google's Draco, which the paper uses to
//! establish the mesh-streaming bandwidth floor (§4.3): positions are
//! quantized to a configurable bit depth over the mesh bounds,
//! delta-predicted along the vertex order, zigzag-mapped and byte-split;
//! connectivity indices are delta-coded; both streams are entropy-coded
//! with the static rANS coder from `visionsim-compress`.
//!
//! The codec is lossy exactly up to quantization: decode returns positions
//! snapped to the quantization lattice, and connectivity bit-exactly.

use crate::geometry::{TriangleMesh, Vec3};
use visionsim_compress::{rans, varint};
use visionsim_core::SimError;

/// Codec parameters.
#[derive(Clone, Copy, Debug)]
pub struct MeshCodecConfig {
    /// Position quantization bits per axis (Draco's default for telepresence
    /// pipelines is 11; range 4..=16).
    pub quantization_bits: u32,
}

impl Default for MeshCodecConfig {
    fn default() -> Self {
        MeshCodecConfig {
            quantization_bits: 11,
        }
    }
}

fn write_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_f32(bytes: &[u8], pos: &mut usize) -> Option<f32> {
    let b = bytes.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Encode a mesh. Empty meshes produce a minimal header.
pub fn encode_mesh(mesh: &TriangleMesh, config: &MeshCodecConfig) -> Vec<u8> {
    assert!(
        (4..=16).contains(&config.quantization_bits),
        "quantization bits out of range"
    );
    let mut out = Vec::new();
    varint::write_u64(&mut out, mesh.vertex_count() as u64);
    varint::write_u64(&mut out, mesh.triangle_count() as u64);
    out.push(config.quantization_bits as u8);
    if mesh.positions.is_empty() {
        return out;
    }
    let bb = mesh.bounds().expect("non-empty mesh");
    for v in [bb.min, bb.max] {
        write_f32(&mut out, v.x);
        write_f32(&mut out, v.y);
        write_f32(&mut out, v.z);
    }
    let levels = (1u32 << config.quantization_bits) - 1;
    let ext = bb.extent();
    let scale = |e: f32| if e <= f32::EPSILON { 0.0 } else { levels as f32 / e };
    let (sx, sy, sz) = (scale(ext.x), scale(ext.y), scale(ext.z));
    // Quantize and delta-code positions into a varint byte stream.
    let mut pos_stream = Vec::new();
    let mut prev = [0i64; 3];
    for p in &mesh.positions {
        let q = [
            ((p.x - bb.min.x) * sx).round() as i64,
            ((p.y - bb.min.y) * sy).round() as i64,
            ((p.z - bb.min.z) * sz).round() as i64,
        ];
        for a in 0..3 {
            varint::write_i64(&mut pos_stream, q[a] - prev[a]);
        }
        prev = q;
    }
    // Delta-code connectivity.
    let mut conn_stream = Vec::new();
    let mut prev_idx = 0i64;
    for t in &mesh.triangles {
        for &v in t {
            varint::write_i64(&mut conn_stream, v as i64 - prev_idx);
            prev_idx = v as i64;
        }
    }
    for stream in [&pos_stream, &conn_stream] {
        let packed = rans::encode(stream);
        varint::write_u64(&mut out, packed.len() as u64);
        out.extend_from_slice(&packed);
    }
    out
}

const HDR: SimError = SimError::Truncated {
    what: "mesh header",
};

/// Decode a mesh produced by [`encode_mesh`]. Errors use the shared
/// [`SimError`] taxonomy; failures from the rANS layer propagate as-is.
pub fn decode_mesh(bytes: &[u8]) -> Result<TriangleMesh, SimError> {
    let mut pos = 0usize;
    let (nv, n) = varint::read_u64(&bytes[pos..]).ok_or(HDR)?;
    pos += n;
    let (nt, n) = varint::read_u64(&bytes[pos..]).ok_or(HDR)?;
    pos += n;
    let qbits = *bytes.get(pos).ok_or(HDR)? as u32;
    pos += 1;
    if !(4..=16).contains(&qbits) {
        return Err(SimError::Corrupt {
            what: "mesh quantization bits",
        });
    }
    if nv == 0 {
        return Ok(TriangleMesh::empty());
    }
    let min = Vec3::new(
        read_f32(bytes, &mut pos).ok_or(HDR)?,
        read_f32(bytes, &mut pos).ok_or(HDR)?,
        read_f32(bytes, &mut pos).ok_or(HDR)?,
    );
    let max = Vec3::new(
        read_f32(bytes, &mut pos).ok_or(HDR)?,
        read_f32(bytes, &mut pos).ok_or(HDR)?,
        read_f32(bytes, &mut pos).ok_or(HDR)?,
    );
    let read_stream = |pos: &mut usize| -> Result<Vec<u8>, SimError> {
        let (len, n) = varint::read_u64(&bytes[*pos..]).ok_or(HDR)?;
        *pos += n;
        let packed = bytes
            .get(*pos..pos.saturating_add(len as usize))
            .ok_or(HDR)?;
        *pos += len as usize;
        rans::decode(packed)
    };
    let pos_stream = read_stream(&mut pos)?;
    let conn_stream = read_stream(&mut pos)?;
    // Each vertex needs ≥3 varint bytes in the position stream and each
    // triangle ≥3 in the connectivity stream; larger claims are hostile.
    if nv as usize > pos_stream.len() || nt as usize > conn_stream.len() {
        return Err(SimError::Inconsistent {
            what: "mesh element count claim",
        });
    }

    let levels = (1u32 << qbits) - 1;
    let ext = max - min;
    let step = |e: f32| if e <= f32::EPSILON { 0.0 } else { e / levels as f32 };
    let (dx, dy, dz) = (step(ext.x), step(ext.y), step(ext.z));
    let mut positions = Vec::with_capacity((nv as usize).min(1 << 20));
    let mut cursor = 0usize;
    let mut prev = [0i64; 3];
    for _ in 0..nv {
        let mut q = [0i64; 3];
        for a in 0..3 {
            let (d, n) = varint::read_i64(&pos_stream[cursor..]).ok_or(SimError::Truncated {
                what: "mesh position stream",
            })?;
            cursor += n;
            q[a] = prev[a] + d;
            if q[a] < 0 || q[a] > levels as i64 {
                return Err(SimError::Inconsistent {
                    what: "mesh quantized position",
                });
            }
        }
        prev = q;
        positions.push(Vec3::new(
            min.x + q[0] as f32 * dx,
            min.y + q[1] as f32 * dy,
            min.z + q[2] as f32 * dz,
        ));
    }
    let mut triangles = Vec::with_capacity((nt as usize).min(1 << 20));
    let mut cursor = 0usize;
    let mut prev_idx = 0i64;
    for _ in 0..nt {
        let mut t = [0u32; 3];
        for slot in &mut t {
            let (d, n) = varint::read_i64(&conn_stream[cursor..]).ok_or(SimError::Truncated {
                what: "mesh connectivity stream",
            })?;
            cursor += n;
            prev_idx += d;
            if prev_idx < 0 || prev_idx >= nv as i64 {
                return Err(SimError::Inconsistent {
                    what: "mesh triangle index",
                });
            }
            *slot = prev_idx as u32;
        }
        triangles.push(t);
    }
    Ok(TriangleMesh {
        positions,
        triangles,
    })
}

/// Quantize a mesh in place to the codec lattice (what a decode of an
/// encode returns); useful for tests and error analysis.
pub fn quantize_like_codec(mesh: &TriangleMesh, config: &MeshCodecConfig) -> TriangleMesh {
    decode_mesh(&encode_mesh(mesh, config)).expect("self round-trip")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::head_mesh;

    #[test]
    fn connectivity_is_lossless() {
        let m = head_mesh(8_000, 1);
        let d = decode_mesh(&encode_mesh(&m, &MeshCodecConfig::default())).unwrap();
        assert_eq!(d.triangles, m.triangles);
        assert_eq!(d.vertex_count(), m.vertex_count());
    }

    #[test]
    fn positions_are_within_quantization_error() {
        let m = head_mesh(8_000, 2);
        let cfg = MeshCodecConfig {
            quantization_bits: 11,
        };
        let d = decode_mesh(&encode_mesh(&m, &cfg)).unwrap();
        let bb = m.bounds().unwrap();
        let max_err = bb.max_extent() / ((1u32 << 11) - 1) as f32;
        for (a, b) in m.positions.iter().zip(&d.positions) {
            assert!(
                a.distance(b) <= max_err * 1.8, // sqrt(3)·cell ≈ 1.73
                "error {} > {}",
                a.distance(b),
                max_err * 1.8
            );
        }
    }

    #[test]
    fn double_round_trip_is_identity() {
        // Once quantized, re-encoding is lossless.
        let m = head_mesh(4_000, 3);
        let cfg = MeshCodecConfig::default();
        let once = quantize_like_codec(&m, &cfg);
        let twice = quantize_like_codec(&once, &cfg);
        for (a, b) in once.positions.iter().zip(&twice.positions) {
            assert!(a.distance(b) < 1e-5);
        }
        assert_eq!(once.triangles, twice.triangles);
    }

    #[test]
    fn compression_beats_raw_floats() {
        let m = head_mesh(20_000, 4);
        let raw = m.vertex_count() * 12 + m.triangle_count() * 12;
        let packed = encode_mesh(&m, &MeshCodecConfig::default()).len();
        assert!(
            packed * 2 < raw,
            "expected >2x vs raw: {packed} vs {raw} bytes"
        );
    }

    #[test]
    fn lower_quantization_is_smaller() {
        let m = head_mesh(20_000, 5);
        let hi = encode_mesh(
            &m,
            &MeshCodecConfig {
                quantization_bits: 14,
            },
        )
        .len();
        let lo = encode_mesh(
            &m,
            &MeshCodecConfig {
                quantization_bits: 8,
            },
        )
        .len();
        assert!(lo < hi, "8-bit {lo} !< 14-bit {hi}");
    }

    #[test]
    fn empty_mesh_round_trips() {
        let e = TriangleMesh::empty();
        let d = decode_mesh(&encode_mesh(&e, &MeshCodecConfig::default())).unwrap();
        assert_eq!(d.triangle_count(), 0);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let m = head_mesh(2_000, 6);
        let enc = encode_mesh(&m, &MeshCodecConfig::default());
        for cut in [0, 1, 5, enc.len() / 2, enc.len() - 1] {
            assert!(decode_mesh(&enc[..cut]).is_err(), "cut {cut} succeeded");
        }
    }

    #[test]
    #[should_panic(expected = "quantization bits out of range")]
    fn rejects_bad_quantization() {
        encode_mesh(
            &TriangleMesh::empty(),
            &MeshCodecConfig {
                quantization_bits: 2,
            },
        );
    }

    #[test]
    fn decode_rejects_bad_quant_header() {
        let mut enc = encode_mesh(&head_mesh(1_000, 7), &MeshCodecConfig::default());
        // Quant bits byte follows the two header varints; find and break it.
        // nv and nt are < 2^14 here, so they occupy ≤2 bytes each; byte at
        // offset (len nv)+(len nt) is qbits. Easier: brute-force a byte that
        // makes decode fail without panicking.
        enc[2] = 99;
        let _ = decode_mesh(&enc); // must not panic
    }
}
