//! Core mesh geometry: vectors, triangle meshes, bounds.

use std::ops::{Add, Mul, Sub};

/// A 3-vector (metres, in the headset's world frame).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec3 {
    /// X (right).
    pub x: f32,
    /// Y (up).
    pub y: f32,
    /// Z (toward the viewer; the scene looks down −Z).
    pub z: f32,
}

impl Vec3 {
    /// Origin.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(&self, o: &Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(&self, o: &Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    pub fn length(&self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Distance to another point.
    pub fn distance(&self, o: &Vec3) -> f32 {
        (*self - *o).length()
    }

    /// Unit vector (zero vector normalizes to zero).
    pub fn normalized(&self) -> Vec3 {
        let l = self.length();
        if l <= f32::EPSILON {
            Vec3::ZERO
        } else {
            *self * (1.0 / l)
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, k: f32) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

/// Axis-aligned bounding box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Bounding box of a point set; `None` when empty.
    pub fn of_points(points: &[Vec3]) -> Option<Aabb> {
        let first = *points.first()?;
        let mut bb = Aabb {
            min: first,
            max: first,
        };
        for p in &points[1..] {
            bb.min.x = bb.min.x.min(p.x);
            bb.min.y = bb.min.y.min(p.y);
            bb.min.z = bb.min.z.min(p.z);
            bb.max.x = bb.max.x.max(p.x);
            bb.max.y = bb.max.y.max(p.y);
            bb.max.z = bb.max.z.max(p.z);
        }
        Some(bb)
    }

    /// Center point.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extent.
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// The longest axis extent.
    pub fn max_extent(&self) -> f32 {
        let e = self.extent();
        e.x.max(e.y).max(e.z)
    }
}

/// An indexed triangle mesh.
#[derive(Clone, Debug, PartialEq)]
pub struct TriangleMesh {
    /// Vertex positions.
    pub positions: Vec<Vec3>,
    /// Triangles as vertex-index triples.
    pub triangles: Vec<[u32; 3]>,
}

impl TriangleMesh {
    /// An empty mesh.
    pub fn empty() -> Self {
        TriangleMesh {
            positions: Vec::new(),
            triangles: Vec::new(),
        }
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Validate index bounds and non-degenerate structure. Returns the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.positions.len() as u32;
        for (i, t) in self.triangles.iter().enumerate() {
            for &v in t {
                if v >= n {
                    return Err(format!("triangle {i} references vertex {v} >= {n}"));
                }
            }
            if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
                return Err(format!("triangle {i} is degenerate: {t:?}"));
            }
        }
        Ok(())
    }

    /// Bounding box; `None` for an empty mesh.
    pub fn bounds(&self) -> Option<Aabb> {
        Aabb::of_points(&self.positions)
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f32 {
        self.triangles
            .iter()
            .map(|t| {
                let a = self.positions[t[0] as usize];
                let b = self.positions[t[1] as usize];
                let c = self.positions[t[2] as usize];
                (b - a).cross(&(c - a)).length() * 0.5
            })
            .sum()
    }

    /// Centroid of all vertices (zero for an empty mesh).
    pub fn centroid(&self) -> Vec3 {
        if self.positions.is_empty() {
            return Vec3::ZERO;
        }
        let sum = self
            .positions
            .iter()
            .fold(Vec3::ZERO, |acc, &p| acc + p);
        sum * (1.0 / self.positions.len() as f32)
    }

    /// Translate every vertex by `delta`.
    pub fn translate(&mut self, delta: Vec3) {
        for p in &mut self.positions {
            *p = *p + delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tetra() -> TriangleMesh {
        TriangleMesh {
            positions: vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            triangles: vec![[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]],
        }
    }

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a.dot(&b), 32.0);
        assert_eq!(a.cross(&b), Vec3::new(-3.0, 6.0, -3.0));
        assert!((Vec3::new(3.0, 4.0, 0.0).length() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_handles_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        let n = Vec3::new(0.0, 0.0, 9.0).normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn aabb_covers_points() {
        let pts = vec![
            Vec3::new(-1.0, 0.0, 2.0),
            Vec3::new(3.0, -5.0, 1.0),
            Vec3::new(0.0, 0.0, 0.0),
        ];
        let bb = Aabb::of_points(&pts).unwrap();
        assert_eq!(bb.min, Vec3::new(-1.0, -5.0, 0.0));
        assert_eq!(bb.max, Vec3::new(3.0, 0.0, 2.0));
        assert_eq!(bb.max_extent(), 5.0);
        assert!(Aabb::of_points(&[]).is_none());
    }

    #[test]
    fn mesh_counts_and_validation() {
        let m = unit_tetra();
        assert_eq!(m.triangle_count(), 4);
        assert_eq!(m.vertex_count(), 4);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn validation_catches_out_of_range() {
        let mut m = unit_tetra();
        m.triangles.push([0, 1, 9]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_catches_degenerate() {
        let mut m = unit_tetra();
        m.triangles.push([2, 2, 3]);
        assert!(m.validate().unwrap_err().contains("degenerate"));
    }

    #[test]
    fn surface_area_of_unit_right_triangle() {
        let m = TriangleMesh {
            positions: vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ],
            triangles: vec![[0, 1, 2]],
        };
        assert!((m.surface_area() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn translate_moves_centroid() {
        let mut m = unit_tetra();
        let before = m.centroid();
        m.translate(Vec3::new(0.0, 0.0, -2.0));
        let after = m.centroid();
        assert!((after.z - (before.z - 2.0)).abs() < 1e-6);
    }
}
