//! Texture cost model for mesh streaming.
//!
//! The paper's mesh-streaming measurement is "even without texture" —
//! i.e. 107 Mbps is a *lower bound* for the mesh-delivery strategy. A
//! textured persona adds per-vertex UV coordinates to the geometry stream
//! and a compressed texture image per frame (live capture re-bakes the
//! texture: faces change). This module models both so the §4.3a
//! experiment can report the textured upper bound too.

use visionsim_core::units::{ByteSize, DataRate};

/// Texture streaming parameters.
#[derive(Clone, Copy, Debug)]
pub struct TextureSpec {
    /// Texture atlas resolution (square, pixels per side).
    pub resolution: u32,
    /// Compressed bits per pixel (JPEG-class intra coding: ~0.5–2 bpp;
    /// video-class inter coding of the atlas does better but needs a
    /// reference — live capture pipelines typically intra-code).
    pub bits_per_pixel: f64,
    /// Bits per UV coordinate pair after quantization + entropy coding.
    pub uv_bits_per_vertex: f64,
}

impl TextureSpec {
    /// The persona-class default: a 1K atlas intra-coded at 1 bpp, 16-bit
    /// quantized UVs entropy-coded to ~12 bits/vertex.
    pub fn persona_default() -> Self {
        TextureSpec {
            resolution: 1_024,
            bits_per_pixel: 1.0,
            uv_bits_per_vertex: 12.0,
        }
    }

    /// Compressed atlas size per frame.
    pub fn atlas_bytes(&self) -> ByteSize {
        let pixels = self.resolution as f64 * self.resolution as f64;
        ByteSize::from_bytes((pixels * self.bits_per_pixel / 8.0).round() as u64)
    }

    /// UV-channel bytes for a mesh with `vertices` vertices.
    pub fn uv_bytes(&self, vertices: usize) -> ByteSize {
        ByteSize::from_bytes((vertices as f64 * self.uv_bits_per_vertex / 8.0).round() as u64)
    }

    /// Extra per-frame bytes for a textured stream of a `vertices`-vertex
    /// mesh.
    pub fn frame_overhead(&self, vertices: usize) -> ByteSize {
        self.atlas_bytes() + self.uv_bytes(vertices)
    }

    /// Extra stream rate at `fps`.
    pub fn stream_overhead(&self, vertices: usize, fps: f64) -> DataRate {
        DataRate::from_bps_f64(self.frame_overhead(vertices).as_bits() as f64 * fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_size_matches_hand_math() {
        let t = TextureSpec::persona_default();
        // 1024² px × 1 bpp = 131,072 B.
        assert_eq!(t.atlas_bytes(), ByteSize::from_bytes(131_072));
    }

    #[test]
    fn uv_bytes_scale_with_vertices() {
        let t = TextureSpec::persona_default();
        assert_eq!(t.uv_bytes(1_000), ByteSize::from_bytes(1_500));
        assert_eq!(
            t.uv_bytes(2_000).as_bytes(),
            2 * t.uv_bytes(1_000).as_bytes()
        );
    }

    #[test]
    fn texture_adds_tens_of_mbps_at_90fps() {
        // The §4.3a point: texture makes mesh streaming even less viable.
        let t = TextureSpec::persona_default();
        let overhead = t.stream_overhead(39_000, 90.0).as_mbps_f64();
        assert!(overhead > 90.0, "overhead {overhead} Mbps");
    }

    #[test]
    fn higher_quality_costs_more() {
        let lo = TextureSpec {
            bits_per_pixel: 0.5,
            ..TextureSpec::persona_default()
        };
        let hi = TextureSpec {
            bits_per_pixel: 2.0,
            ..TextureSpec::persona_default()
        };
        assert!(hi.atlas_bytes() > lo.atlas_bytes());
    }
}
