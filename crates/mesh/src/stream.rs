//! Mesh streaming rate model.
//!
//! Reproduces the §4.3 "Direct 3D Data Streaming" experiment: take head
//! meshes in the 70k–90k-triangle range, compress each frame with the
//! Draco-style codec, stream at the display rate (90 FPS on Vision Pro),
//! and measure the bandwidth. The paper reports 107.4±14.1 Mbps without
//! texture — two orders of magnitude above the spatial persona's
//! 0.67 Mbps — and concludes personas are not mesh-streamed. Each frame is
//! coded independently (as a Draco-per-frame pipeline does): live capture
//! has no static reference to diff against.

use crate::codec::{encode_mesh, MeshCodecConfig};
use crate::geometry::TriangleMesh;
use visionsim_core::rng::SimRng;
use visionsim_core::stats::StreamingStats;
use visionsim_core::units::{ByteSize, DataRate};

/// Streams per-frame-compressed meshes at a fixed frame rate.
#[derive(Clone, Debug)]
pub struct MeshStreamer {
    /// Codec configuration.
    pub config: MeshCodecConfig,
    /// Frames per second.
    pub fps: f64,
}

impl MeshStreamer {
    /// A streamer at the Vision Pro's 90 FPS target.
    pub fn at_90fps() -> Self {
        MeshStreamer {
            config: MeshCodecConfig::default(),
            fps: 90.0,
        }
    }

    /// Compressed size of one frame.
    pub fn frame_size(&self, mesh: &TriangleMesh) -> ByteSize {
        ByteSize::from_bytes(encode_mesh(mesh, &self.config).len() as u64)
    }

    /// Steady-state bandwidth to stream `mesh` at `self.fps`, assuming
    /// every frame re-encodes the (possibly deformed) mesh.
    pub fn stream_rate(&self, mesh: &TriangleMesh) -> DataRate {
        let bytes = self.frame_size(mesh);
        DataRate::from_bps_f64(bytes.as_bits() as f64 * self.fps)
    }

    /// Run the paper's experiment: for each mesh, apply `frames` frames of
    /// facial-motion deformation (so successive frames differ, as live
    /// capture does), measure per-mesh stream rate, and return Mbps
    /// statistics across meshes.
    pub fn experiment<M: std::borrow::Borrow<TriangleMesh>>(
        &self,
        meshes: &[M],
        frames: usize,
        rng: &mut SimRng,
    ) -> StreamingStats {
        assert!(!meshes.is_empty() && frames > 0);
        let mut stats = StreamingStats::new();
        for mesh in meshes {
            let mesh = mesh.borrow();
            let mut per_frame = StreamingStats::new();
            let mut animated = mesh.clone();
            for _ in 0..frames {
                deform(&mut animated, mesh, rng);
                per_frame.push(self.frame_size(&animated).as_bytes() as f64);
            }
            let rate_bps = per_frame.mean() * 8.0 * self.fps;
            stats.push(rate_bps / 1e6);
        }
        stats
    }
}

/// Apply a small facial-motion-like deformation: low-amplitude random
/// displacement of every vertex toward/away from the reference surface
/// (breathing, jaw, brow micro-motion).
fn deform(mesh: &mut TriangleMesh, reference: &TriangleMesh, rng: &mut SimRng) {
    let amp = 0.0015f32; // 1.5 mm of facial motion
    for (p, r) in mesh.positions.iter_mut().zip(&reference.positions) {
        p.x = r.x + amp * rng.normal(0.0, 1.0) as f32;
        p.y = r.y + amp * rng.normal(0.0, 1.0) as f32;
        p.z = r.z + amp * rng.normal(0.0, 1.0) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::head_mesh;

    #[test]
    fn persona_scale_mesh_needs_tens_of_mbps() {
        let streamer = MeshStreamer::at_90fps();
        let mesh = head_mesh(78_030, 1);
        let rate = streamer.stream_rate(&mesh).as_mbps_f64();
        // §4.3 band: far beyond the 0.67 Mbps persona rate. Exact values
        // depend on coder efficiency; require the two-orders-of-magnitude
        // gap the paper's argument rests on.
        assert!(rate > 30.0, "rate {rate} Mbps too low");
        assert!(rate / 0.67 > 50.0, "gap vs persona too small: {rate}");
    }

    #[test]
    fn rate_scales_with_fps() {
        let mesh = head_mesh(10_000, 1);
        let at90 = MeshStreamer::at_90fps().stream_rate(&mesh);
        let mut s30 = MeshStreamer::at_90fps();
        s30.fps = 30.0;
        let at30 = s30.stream_rate(&mesh);
        let ratio = at90.as_bps() as f64 / at30.as_bps() as f64;
        assert!((ratio - 3.0).abs() < 0.01);
    }

    #[test]
    fn rate_scales_with_triangle_count() {
        let streamer = MeshStreamer::at_90fps();
        let small = streamer.stream_rate(&head_mesh(10_000, 1));
        let large = streamer.stream_rate(&head_mesh(80_000, 1));
        assert!(large.as_bps() > small.as_bps() * 4);
    }

    #[test]
    fn experiment_reports_stable_statistics() {
        let streamer = MeshStreamer::at_90fps();
        let meshes: Vec<_> = (0..3).map(|i| head_mesh(20_000, i)).collect();
        let mut rng = SimRng::seed_from_u64(1);
        let stats = streamer.experiment(&meshes, 3, &mut rng);
        assert_eq!(stats.count(), 3);
        assert!(stats.mean() > 1.0);
        // Across same-size heads the spread is modest (paper: ±14 of 107).
        assert!(stats.std_dev() < stats.mean() * 0.5);
    }

    #[test]
    #[should_panic]
    fn experiment_rejects_empty_input() {
        let streamer = MeshStreamer::at_90fps();
        let mut rng = SimRng::seed_from_u64(1);
        streamer.experiment::<TriangleMesh>(&[], 1, &mut rng);
    }
}
