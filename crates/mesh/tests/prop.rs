//! Randomized property tests for mesh geometry, LOD, and the codec,
//! driven by deterministic SimRng cases.

use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_mesh::codec::{decode_mesh, encode_mesh, MeshCodecConfig};
use visionsim_mesh::geometry::{TriangleMesh, Vec3};
use visionsim_mesh::lod::{cluster, decimate_to};

const CASES: u64 = 96;

fn case_rng(label: &str, i: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(0x3E5_43E5, label, i))
}

/// A small arbitrary-but-valid triangle mesh.
fn arb_mesh(rng: &mut SimRng) -> TriangleMesh {
    let nv = rng.uniform_u64(4, 39) as usize;
    let positions: Vec<Vec3> = (0..nv)
        .map(|_| {
            Vec3::new(
                rng.uniform_range(-10.0, 10.0) as f32,
                rng.uniform_range(-10.0, 10.0) as f32,
                rng.uniform_range(-10.0, 10.0) as f32,
            )
        })
        .collect();
    let nt = rng.uniform_u64(1, 59) as usize;
    let triangles: Vec<[u32; 3]> = (0..nt)
        .map(|_| (rng.index(nv), rng.index(nv), rng.index(nv)))
        .filter(|&(a, b, c)| a != b && b != c && a != c)
        .map(|(a, b, c)| [a as u32, b as u32, c as u32])
        .collect();
    TriangleMesh {
        positions,
        triangles,
    }
}

/// Connectivity survives the codec bit-exactly; positions within the
/// quantization cell.
#[test]
fn codec_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("codec", i);
        let mesh = arb_mesh(&mut rng);
        let qbits = rng.uniform_u64(6, 14) as u32;
        let cfg = MeshCodecConfig {
            quantization_bits: qbits,
        };
        let decoded = decode_mesh(&encode_mesh(&mesh, &cfg)).expect("own output");
        assert_eq!(&decoded.triangles, &mesh.triangles);
        assert_eq!(decoded.vertex_count(), mesh.vertex_count());
        if let Some(bb) = mesh.bounds() {
            let cell = bb.max_extent() / ((1u32 << qbits) - 1) as f32;
            let tol = cell * 1.8 + 1e-6;
            for (a, b) in mesh.positions.iter().zip(&decoded.positions) {
                assert!(a.distance(b) <= tol, "{} > {}", a.distance(b), tol);
            }
        }
    }
}

/// Decoding arbitrary garbage never panics.
#[test]
fn decode_never_panics() {
    for i in 0..CASES {
        let mut rng = case_rng("decode_garbage", i);
        let n = rng.uniform_u64(0, 500) as usize;
        let mut garbage = vec![0u8; n];
        rng.fill_bytes(&mut garbage);
        let _ = decode_mesh(&garbage);
    }
}

/// Truncating a valid stream at any byte yields `Err`, never a panic.
#[test]
fn decode_truncation_errors_cleanly() {
    for i in 0..CASES {
        let mut rng = case_rng("decode_truncate", i);
        let enc = encode_mesh(&arb_mesh(&mut rng), &MeshCodecConfig::default());
        for cut in 0..enc.len() {
            assert!(decode_mesh(&enc[..cut]).is_err(), "cut {cut} decoded (case {i})");
        }
    }
}

/// Bit flips anywhere in a valid stream must never panic; they error or
/// decode to a different (still structurally valid) mesh.
#[test]
fn decode_bit_flips_never_panic() {
    for i in 0..CASES {
        let mut rng = case_rng("decode_bitflip", i);
        let mesh = arb_mesh(&mut rng);
        let enc = encode_mesh(&mesh, &MeshCodecConfig::default());
        for _ in 0..16 {
            let mut damaged = enc.clone();
            let pos = rng.index(damaged.len());
            damaged[pos] ^= 1 << rng.uniform_u64(0, 7);
            if let Ok(d) = decode_mesh(&damaged) {
                assert!(
                    d.triangles.iter().flatten().all(|&v| (v as usize) < d.vertex_count()),
                    "bit flip produced out-of-range indices (case {i})"
                );
            }
        }
    }
}

/// A header lying about element counts (claiming far more vertices or
/// triangles than the body can hold) errors without huge allocation.
#[test]
fn decode_length_lying_header_errors() {
    for i in 0..CASES {
        let mut rng = case_rng("decode_lying", i);
        let enc = encode_mesh(&arb_mesh(&mut rng), &MeshCodecConfig::default());
        let mut lying = Vec::new();
        // Rebuild the header with absurd counts, keep the rest verbatim.
        visionsim_compress::varint::write_u64(&mut lying, u64::MAX / 8);
        visionsim_compress::varint::write_u64(&mut lying, u64::MAX / 8);
        let (_, a) = visionsim_compress::varint::read_u64(&enc).expect("own header");
        let (_, b) = visionsim_compress::varint::read_u64(&enc[a..]).expect("own header");
        lying.extend_from_slice(&enc[a + b..]);
        assert!(decode_mesh(&lying).is_err(), "lying header accepted (case {i})");
    }
}

/// Clustering never increases counts and keeps indices valid.
#[test]
fn clustering_shrinks_and_stays_valid() {
    for i in 0..CASES {
        let mut rng = case_rng("cluster", i);
        let mesh = arb_mesh(&mut rng);
        let cells = rng.uniform_u64(1, 63) as usize;
        let c = cluster(&mesh, cells);
        assert!(c.triangle_count() <= mesh.triangle_count());
        assert!(c.vertex_count() <= mesh.vertex_count());
        assert!(c.validate().is_ok(), "{:?}", c.validate());
    }
}

/// Decimation to any target yields a valid mesh no larger than the
/// original, and decimation to ≥ the original count is identity.
#[test]
fn decimation_invariants() {
    for i in 0..CASES {
        let mut rng = case_rng("decimate", i);
        let mesh = arb_mesh(&mut rng);
        let target = rng.uniform_u64(0, 99) as usize;
        let d = decimate_to(&mesh, target);
        assert!(d.triangle_count() <= mesh.triangle_count().max(target));
        assert!(d.validate().is_ok());
        let same = decimate_to(&mesh, mesh.triangle_count());
        assert_eq!(same.triangle_count(), mesh.triangle_count());
    }
}

/// The decimated mesh stays inside the original bounding box (with
/// epsilon padding).
#[test]
fn decimation_stays_in_bounds() {
    for i in 0..CASES {
        let mut rng = case_rng("bounds", i);
        let mesh = arb_mesh(&mut rng);
        if mesh.positions.is_empty() {
            continue;
        }
        let outer = mesh.bounds().expect("non-empty");
        let d = cluster(&mesh, 4);
        if let Some(inner) = d.bounds() {
            assert!(visionsim_mesh::lod::bounds_contained(&inner, &outer, 1e-4));
        }
    }
}
