//! Property-based tests for mesh geometry, LOD, and the codec.

use proptest::prelude::*;
use visionsim_mesh::codec::{decode_mesh, encode_mesh, MeshCodecConfig};
use visionsim_mesh::geometry::{TriangleMesh, Vec3};
use visionsim_mesh::lod::{cluster, decimate_to};

/// Strategy: a small arbitrary-but-valid triangle mesh.
fn arb_mesh() -> impl Strategy<Value = TriangleMesh> {
    (4usize..40).prop_flat_map(|nv| {
        let verts = prop::collection::vec((-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0), nv);
        let tris = prop::collection::vec((0..nv, 0..nv, 0..nv), 1..60);
        (verts, tris).prop_map(|(vs, ts)| {
            let positions: Vec<Vec3> = vs.into_iter().map(|(x, y, z)| Vec3::new(x, y, z)).collect();
            let triangles: Vec<[u32; 3]> = ts
                .into_iter()
                .filter(|&(a, b, c)| a != b && b != c && a != c)
                .map(|(a, b, c)| [a as u32, b as u32, c as u32])
                .collect();
            TriangleMesh {
                positions,
                triangles,
            }
        })
    })
}

proptest! {
    /// Connectivity survives the codec bit-exactly; positions within the
    /// quantization cell.
    #[test]
    fn codec_round_trips(mesh in arb_mesh(), qbits in 6u32..=14) {
        let cfg = MeshCodecConfig { quantization_bits: qbits };
        let decoded = decode_mesh(&encode_mesh(&mesh, &cfg)).expect("own output");
        prop_assert_eq!(&decoded.triangles, &mesh.triangles);
        prop_assert_eq!(decoded.vertex_count(), mesh.vertex_count());
        if let Some(bb) = mesh.bounds() {
            let cell = bb.max_extent() / ((1u32 << qbits) - 1) as f32;
            let tol = cell * 1.8 + 1e-6;
            for (a, b) in mesh.positions.iter().zip(&decoded.positions) {
                prop_assert!(a.distance(b) <= tol, "{} > {}", a.distance(b), tol);
            }
        }
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..500)) {
        let _ = decode_mesh(&bytes);
    }

    /// Clustering never increases counts and keeps indices valid.
    #[test]
    fn clustering_shrinks_and_stays_valid(mesh in arb_mesh(), cells in 1usize..64) {
        let c = cluster(&mesh, cells);
        prop_assert!(c.triangle_count() <= mesh.triangle_count());
        prop_assert!(c.vertex_count() <= mesh.vertex_count());
        prop_assert!(c.validate().is_ok(), "{:?}", c.validate());
    }

    /// Decimation to any target yields a valid mesh no larger than the
    /// original, and decimation to ≥ the original count is identity.
    #[test]
    fn decimation_invariants(mesh in arb_mesh(), target in 0usize..100) {
        let d = decimate_to(&mesh, target);
        prop_assert!(d.triangle_count() <= mesh.triangle_count().max(target));
        prop_assert!(d.validate().is_ok());
        let same = decimate_to(&mesh, mesh.triangle_count());
        prop_assert_eq!(same.triangle_count(), mesh.triangle_count());
    }

    /// The decimated mesh stays inside the original bounding box (with
    /// epsilon padding).
    #[test]
    fn decimation_stays_in_bounds(mesh in arb_mesh()) {
        prop_assume!(!mesh.positions.is_empty());
        let outer = mesh.bounds().expect("non-empty");
        let d = cluster(&mesh, 4);
        if let Some(inner) = d.bounds() {
            prop_assert!(visionsim_mesh::lod::bounds_contained(&inner, &outer, 1e-4));
        }
    }
}
