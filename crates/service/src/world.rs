//! The live session table.
//!
//! [`ServiceWorld`] owns every running [`SessionSim`] and advances them
//! in batched drains toward a virtual-time target. It holds no sockets
//! and never looks at the wall clock, so the soak test can push it
//! through hours of simulated traffic as fast as the CPU allows; the
//! server drives the same object from the wire protocol.

use std::collections::BTreeMap;

use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::DataRate;
use visionsim_core::{sanitizer, trace};
use visionsim_device::device::DeviceKind;
use visionsim_geo::cities;
use visionsim_geo::sites::Provider;
use visionsim_net::fault::{FaultPlan, GeConfig};
use visionsim_vca::server::ResilienceConfig;
use visionsim_vca::session::{SessionConfig, SessionSim};

/// What a finished (or left) session reports back over the wire.
#[derive(Debug)]
pub struct SessionSummary {
    pub id: u64,
    pub participants: usize,
    /// Ticks actually stepped (a `leave` cuts this short).
    pub ticks: u64,
    pub failovers: usize,
    pub pli_sent: u64,
    /// True when the session was ended by `leave`/`quiesce` rather than
    /// running out its configured duration.
    pub left_early: bool,
}

struct LiveSession {
    sim: SessionSim,
    /// World virtual time at which the session joined; the session's own
    /// clock is relative to this anchor.
    base_ns: u64,
}

/// The session table plus the world's virtual clock position.
#[derive(Default)]
pub struct ServiceWorld {
    live: BTreeMap<u64, LiveSession>,
    next_id: u64,
    virtual_now_ns: u64,
    completed: Vec<SessionSummary>,
    draining: bool,
}

/// Build the named fault plan anchored at session-local time `at`.
pub fn fault_plan_named(kind: &str, at: SimTime) -> Result<FaultPlan, String> {
    let secs = SimDuration::from_secs;
    Ok(match kind {
        "flap" => FaultPlan::flap(at, secs(2)),
        "rate-cliff" => FaultPlan::rate_cliff(at, DataRate::from_kbps(300), secs(5)),
        "delay-spike" => {
            FaultPlan::delay_spike(at, SimDuration::from_millis(150), secs(5))
        }
        "burst-loss" => FaultPlan::burst_loss(at, GeConfig::wifi_bursts(), secs(5)),
        "outage" => FaultPlan::server_outage(at, secs(2), secs(3)),
        _ => {
            return Err(format!(
                "unknown fault {kind:?} (valid: flap, rate-cliff, delay-spike, burst-loss, outage)"
            ))
        }
    })
}

impl ServiceWorld {
    /// An empty world at virtual time zero.
    pub fn new() -> ServiceWorld {
        ServiceWorld::default()
    }

    /// Virtual time the world has been advanced to.
    pub fn virtual_now_ns(&self) -> u64 {
        self.virtual_now_ns
    }

    /// Live session count.
    pub fn live_sessions(&self) -> usize {
        self.live.len()
    }

    /// Finished session count (completed, left, or quiesced).
    pub fn completed_sessions(&self) -> usize {
        self.completed.len()
    }

    /// Summaries of every finished session so far.
    pub fn completed(&self) -> &[SessionSummary] {
        &self.completed
    }

    /// Start a session from a named preset. `facetime` is the paper's
    /// spatial-persona configuration (all Vision Pro, the eight US
    /// vantage cities); `mixed` is a two-party Vision Pro ↔ MacBook call
    /// that exercises the 2D/RTP path. Both run with the congestion loop
    /// closed, as the live systems do.
    pub fn join(&mut self, preset: &str, n: usize, seed: u64, secs: u64) -> Result<u64, String> {
        if self.draining {
            return Err("service is quiescing; joins are refused".to_string());
        }
        let mut cfg = match preset {
            "facetime" => {
                if n < 2 {
                    return Err(format!("facetime needs >= 2 participants, got {n}"));
                }
                let mut cfg = SessionConfig::facetime_avp(n, &cities::us_vantages(), seed);
                // Live sessions get the full control plane: admission,
                // breakers, reconnect machines — and with it the
                // participant-conservation sanitizer check every
                // feedback interval.
                cfg.resilience = Some(ResilienceConfig::default());
                cfg
            }
            "mixed" => {
                if n != 2 {
                    return Err(format!("mixed is a two-party preset, got n={n}"));
                }
                SessionConfig::two_party(
                    Provider::FaceTime,
                    (
                        DeviceKind::VisionPro,
                        cities::by_name("San Francisco, CA").expect("registry city"),
                    ),
                    (
                        DeviceKind::MacBook,
                        cities::by_name("New York, NY").expect("registry city"),
                    ),
                    seed,
                )
            }
            _ => {
                return Err(format!(
                    "unknown preset {preset:?} (valid: facetime, mixed)"
                ))
            }
        };
        cfg.duration = SimDuration::from_secs(secs.max(1));
        cfg.congestion_control = true;
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(
            id,
            LiveSession {
                sim: SessionSim::new(cfg),
                base_ns: self.virtual_now_ns,
            },
        );
        Ok(id)
    }

    /// Finish session `id` early and summarize it.
    pub fn leave(&mut self, id: u64) -> Result<&SessionSummary, String> {
        let session = self
            .live
            .remove(&id)
            .ok_or_else(|| format!("no live session {id}"))?;
        let early = !session.sim.done();
        self.completed.push(summarize(id, session.sim, early));
        Ok(self.completed.last().expect("just pushed"))
    }

    /// Inject the named fault plan against one participant of a live
    /// session, anchored at the session's current time.
    pub fn fault(&mut self, id: u64, participant: usize, kind: &str) -> Result<(), String> {
        let session = self
            .live
            .get_mut(&id)
            .ok_or_else(|| format!("no live session {id}"))?;
        if participant >= session.sim.participants() {
            return Err(format!(
                "participant {participant} out of range (session {id} has {})",
                session.sim.participants()
            ));
        }
        let plan = fault_plan_named(kind, session.sim.now())?;
        session.sim.inject_fault(participant, plan);
        Ok(())
    }

    /// Advance every live session to world virtual time `target_ns`
    /// (batched drain: each session steps all its due ticks in a burst).
    /// Sessions that reach their configured duration are finished and
    /// moved to the completed list.
    pub fn advance_to(&mut self, target_ns: u64) {
        if target_ns <= self.virtual_now_ns {
            return;
        }
        self.virtual_now_ns = target_ns;
        let mut finished: Vec<u64> = Vec::new();
        for (&id, session) in self.live.iter_mut() {
            while !session.sim.done()
                && session.base_ns + session.sim.now().as_nanos() < target_ns
            {
                session.sim.step_tick();
            }
            if session.sim.done() {
                finished.push(id);
            }
        }
        for id in finished {
            let session = self.live.remove(&id).expect("collected above");
            self.completed.push(summarize(id, session.sim, false));
        }
    }

    /// Drain: finish every live session now and latch the world into a
    /// refuse-joins state. Returns how many sessions were drained.
    pub fn quiesce(&mut self) -> usize {
        self.draining = true;
        let ids: Vec<u64> = self.live.keys().copied().collect();
        for id in &ids {
            let session = self.live.remove(id).expect("listed above");
            let early = !session.sim.done();
            self.completed.push(summarize(*id, session.sim, early));
        }
        ids.len()
    }

    /// One-line JSON view of the world: virtual time, live sessions with
    /// their progress, completion count, and the process-global health
    /// counters a soak watches (intern table size, sanitizer violations).
    pub fn snapshot(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"virtual_ns\":{},\"live\":[",
            self.virtual_now_ns
        ));
        for (i, (id, session)) in self.live.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (tick, total) = session.sim.progress();
            out.push_str(&format!(
                "{{\"id\":{},\"participants\":{},\"tick\":{},\"total_ticks\":{}}}",
                id,
                session.sim.participants(),
                tick,
                total
            ));
        }
        out.push_str(&format!(
            "],\"completed\":{},\"draining\":{},\"intern_sites\":{},\"sanitizer_violations\":{}}}",
            self.completed.len(),
            self.draining,
            trace::intern_len(),
            sanitizer::total()
        ));
        out
    }
}

fn summarize(id: u64, sim: SessionSim, left_early: bool) -> SessionSummary {
    let (ticks, _) = sim.progress();
    let participants = sim.participants();
    let outcome = sim.finish();
    SessionSummary {
        id,
        participants,
        ticks,
        failovers: outcome.failovers.len(),
        pli_sent: outcome.pli_sent.iter().sum(),
        left_early,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_advance_leave_lifecycle() {
        let mut world = ServiceWorld::new();
        let id = world.join("mixed", 2, 7, 5).unwrap();
        assert_eq!(world.live_sessions(), 1);
        // One virtual second: ~90 ticks stepped in one batched drain.
        world.advance_to(1_000_000_000);
        let snap = world.snapshot();
        assert!(snap.contains("\"live\":[{\"id\":0"), "{snap}");
        let summary = world.leave(id).unwrap();
        assert!(summary.left_early);
        assert!(summary.ticks >= 89, "stepped {} ticks", summary.ticks);
        assert_eq!(world.live_sessions(), 0);
        assert_eq!(world.completed_sessions(), 1);
        assert!(world.leave(id).is_err(), "double leave must fail");
    }

    #[test]
    fn sessions_complete_on_their_own_schedule() {
        let mut world = ServiceWorld::new();
        world.join("mixed", 2, 3, 2).unwrap();
        world.advance_to(1_000_000_000);
        world.join("mixed", 2, 4, 2).unwrap();
        // First session (joined at 0 s, 2 s long) completes by 2 s; the
        // second (joined at 1 s) is still live.
        world.advance_to(2_500_000_000);
        assert_eq!(world.completed_sessions(), 1);
        assert_eq!(world.live_sessions(), 1);
        assert!(!world.completed()[0].left_early);
        world.advance_to(4_000_000_000);
        assert_eq!(world.completed_sessions(), 2);
    }

    #[test]
    fn fault_validates_session_participant_and_kind() {
        let mut world = ServiceWorld::new();
        let id = world.join("mixed", 2, 5, 10).unwrap();
        world.advance_to(200_000_000);
        world.fault(id, 0, "flap").unwrap();
        world.fault(id, 1, "burst-loss").unwrap();
        assert!(world.fault(99, 0, "flap").unwrap_err().contains("no live session"));
        assert!(world.fault(id, 9, "flap").unwrap_err().contains("out of range"));
        assert!(world.fault(id, 0, "gremlins").unwrap_err().contains("unknown fault"));
        // The injected faults apply on subsequent ticks without issue.
        world.advance_to(3_000_000_000);
    }

    #[test]
    fn quiesce_drains_and_refuses_joins() {
        let mut world = ServiceWorld::new();
        world.join("mixed", 2, 1, 30).unwrap();
        world.join("mixed", 2, 2, 30).unwrap();
        world.advance_to(500_000_000);
        assert_eq!(world.quiesce(), 2);
        assert_eq!(world.live_sessions(), 0);
        assert_eq!(world.completed_sessions(), 2);
        assert!(world.completed().iter().all(|s| s.left_early));
        assert!(world.join("mixed", 2, 3, 30).unwrap_err().contains("quiescing"));
    }

    #[test]
    fn join_rejects_bad_presets() {
        let mut world = ServiceWorld::new();
        assert!(world.join("nope", 2, 1, 10).unwrap_err().contains("unknown preset"));
        assert!(world.join("facetime", 1, 1, 10).is_err());
        assert!(world.join("mixed", 3, 1, 10).is_err());
    }
}
