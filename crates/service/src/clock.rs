//! The virtual clock: simulated time slaved to the wall clock.

use std::time::{Duration, Instant};

/// Map a wall-clock elapsed duration to virtual nanoseconds at `speed`.
///
/// Pure so it can be tested without sleeping: `speed` 1.0 is real time,
/// 10.0 runs the simulation ten times faster than the wall.
pub fn virtual_ns(wall_elapsed: Duration, speed: f64) -> u64 {
    (wall_elapsed.as_secs_f64() * speed * 1e9) as u64
}

/// A virtual clock anchored at construction time.
///
/// The driver polls [`virtual_elapsed_ns`](VirtualClock::virtual_elapsed_ns)
/// each pacing tick and advances the world to that target — sessions step
/// in batched drains between ticks, so a slow pacing interval produces
/// bigger batches, not lost time.
pub struct VirtualClock {
    start: Instant,
    speed: f64,
}

impl VirtualClock {
    /// A clock running at `speed` × real time, anchored now.
    pub fn new(speed: f64) -> VirtualClock {
        assert!(
            speed.is_finite() && speed > 0.0,
            "speed must be a positive finite multiplier, got {speed}"
        );
        VirtualClock {
            start: Instant::now(),
            speed,
        }
    }

    /// The speed multiplier.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Virtual nanoseconds elapsed since construction.
    pub fn virtual_elapsed_ns(&self) -> u64 {
        virtual_ns(self.start.elapsed(), self.speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_ns_scales_by_speed() {
        assert_eq!(virtual_ns(Duration::from_secs(1), 1.0), 1_000_000_000);
        assert_eq!(virtual_ns(Duration::from_secs(1), 10.0), 10_000_000_000);
        assert_eq!(virtual_ns(Duration::from_millis(500), 2.0), 1_000_000_000);
        assert_eq!(virtual_ns(Duration::ZERO, 100.0), 0);
    }

    #[test]
    fn clock_is_monotonic() {
        let clock = VirtualClock::new(50.0);
        let a = clock.virtual_elapsed_ns();
        let b = clock.virtual_elapsed_ns();
        assert!(b >= a);
        assert_eq!(clock.speed(), 50.0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn zero_speed_is_rejected() {
        VirtualClock::new(0.0);
    }
}
