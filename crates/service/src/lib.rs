//! Live service mode: `visionsim serve`.
//!
//! The batch pipeline (`regenerate`, the figure experiments) runs every
//! session to completion and exits; the paper's subjects — FaceTime,
//! Zoom, Webex on Vision Pro — are *live services* under continuous
//! observation. This crate lifts the same engine into that shape:
//!
//! * [`clock::VirtualClock`] — a virtual clock slaved to the wall clock
//!   at an `--speed N` multiplier; the driver advances every live
//!   [`SessionSim`](visionsim_vca::session::SessionSim) in batched
//!   drains between pacing ticks.
//! * [`world::ServiceWorld`] — the session table: `join`/`leave`
//!   sessions, inject `fault` plans mid-call, `snapshot` the state,
//!   `quiesce` to drain. Pure simulation state, no sockets — the soak
//!   test drives it directly, the server drives it from the wire.
//! * [`proto`] — the line-delimited control protocol (one command per
//!   line over a local TCP socket, one `ok …`/`err …` reply per line).
//! * [`server::serve`] — the driver loop: pacing, command dispatch, a
//!   hand-rolled HTTP `GET /metrics` endpoint exporting the
//!   [`core::metrics`](visionsim_core::metrics) registry in Prometheus
//!   text exposition format, and a live trace sidecar that `trace_dump
//!   --follow` tails.
//!
//! The batch path is untouched: the service is a new consumer of the
//! stepper API, not a fork of the engine — goldens and the determinism
//! suite stay byte-identical.

pub mod clock;
pub mod proto;
pub mod server;
pub mod world;
