//! The service driver: pacing loop, control socket, metrics endpoint.
//!
//! Single-threaded simulation: the pacing loop owns the
//! [`ServiceWorld`] and alternates between advancing virtual time and
//! draining control-socket commands, so commands land at tick
//! boundaries and never race a stepping session. Only the HTTP
//! `/metrics` endpoint runs on its own thread — the metrics registry is
//! lock-free atomics, safe to render concurrently.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use visionsim_core::trace::{self, TraceEvent};
use visionsim_core::metrics;

use crate::clock::VirtualClock;
use crate::proto::{self, Command};
use crate::world::ServiceWorld;

/// Upper bound on a buffered control line awaiting its newline. A
/// client that streams bytes without ever terminating a line is cut off
/// with `err line too long` instead of growing the per-connection
/// buffer forever.
pub const MAX_CONTROL_LINE: usize = 64 * 1024;

/// Knobs for [`serve`].
pub struct ServeOptions {
    /// Virtual-time multiplier (1.0 = real time).
    pub speed: f64,
    /// Control-protocol bind address; port 0 auto-assigns.
    pub control_addr: String,
    /// Metrics HTTP bind address; port 0 auto-assigns.
    pub metrics_addr: String,
    /// Live trace sidecar path, rewritten atomically while the service
    /// runs — `trace_dump --follow` tails it.
    pub trace_path: Option<PathBuf>,
    /// Wall-clock pacing interval between drains.
    pub pacing: Duration,
    /// Stop after this much wall time even without a `shutdown` command
    /// (safety rail for CI; `None` runs until told to stop).
    pub max_wall: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            speed: 1.0,
            control_addr: "127.0.0.1:0".to_string(),
            metrics_addr: "127.0.0.1:0".to_string(),
            trace_path: None,
            pacing: Duration::from_millis(20),
            max_wall: None,
        }
    }
}

/// Execute one parsed command against the world. Returns the reply line
/// (without newline) and whether the service should shut down.
pub fn handle_command(world: &mut ServiceWorld, line: &str) -> (String, bool) {
    let cmd = match proto::parse(line) {
        Ok(cmd) => cmd,
        Err(e) => return (format!("err {e}"), false),
    };
    match cmd {
        Command::Join {
            preset,
            n,
            seed,
            secs,
        } => match world.join(&preset, n, seed, secs) {
            Ok(id) => (format!("ok join {id}"), false),
            Err(e) => (format!("err {e}"), false),
        },
        Command::Leave { id } => match world.leave(id) {
            Ok(s) => (
                format!(
                    "ok leave {id} ticks={} failovers={} pli={}",
                    s.ticks, s.failovers, s.pli_sent
                ),
                false,
            ),
            Err(e) => (format!("err {e}"), false),
        },
        Command::Fault {
            id,
            participant,
            kind,
        } => match world.fault(id, participant, &kind) {
            Ok(()) => (format!("ok fault {id} {participant} {kind}"), false),
            Err(e) => (format!("err {e}"), false),
        },
        Command::Snapshot => (format!("ok snapshot {}", world.snapshot()), false),
        Command::Quiesce => (format!("ok quiesce finished={}", world.quiesce()), false),
        Command::Shutdown => ("ok shutdown".to_string(), true),
    }
}

/// Serve the minimal HTTP surface: `GET /metrics` renders the registry
/// in Prometheus text exposition format, `GET /healthz` answers `ok`.
/// Hand-rolled request handling — one request per connection, ignore
/// everything past the request line.
fn serve_metrics_conn(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut head = Vec::new();
    let mut buf = [0u8; 2048];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16_384 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&head);
    let target = request
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, body) = match target {
        "/metrics" => ("200 OK", metrics::prometheus_text()),
        "/healthz" => ("200 OK", "ok\n".to_string()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

fn spawn_metrics_thread(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            if let Ok(mut stream) = conn {
                serve_metrics_conn(&mut stream);
            }
        }
    })
}

/// Rewrite the live trace sidecar: pull new events from the ring via the
/// follow cursor, keep a bounded tail, and atomically replace the file
/// with a complete, valid VSTRACE1 image (write temp + rename — a
/// concurrent `trace_dump --follow` never sees a torn file).
fn flush_trace(
    path: &Path,
    cursor: &mut u64,
    tail: &mut Vec<TraceEvent>,
) -> std::io::Result<()> {
    let chunk = trace::follow(*cursor);
    *cursor = chunk.cursor;
    if chunk.events.is_empty() && !tail.is_empty() {
        return Ok(()); // nothing new; keep the file as-is
    }
    tail.extend(chunk.events);
    let cap = trace::capacity();
    if tail.len() > cap {
        let excess = tail.len() - cap;
        tail.drain(..excess);
    }
    let image = trace::encode(tail);
    let tmp = path.with_extension("bin.tmp");
    std::fs::write(&tmp, &image)?;
    std::fs::rename(&tmp, path)
}

/// Run the live service until a `shutdown` command (or `max_wall`).
///
/// Prints one `serve control=<addr> metrics=<addr> speed=<n>` line to
/// stdout once both sockets are bound — scripts parse it for the
/// auto-assigned ports.
pub fn serve(opts: ServeOptions) -> std::io::Result<()> {
    // Fresh service lifetime: zero the registry, reset the ring, and
    // re-anchor the wall epoch so span timestamps and the trace sidecar
    // start at ~0 even when the process has been alive for a while.
    metrics::force(Some(true));
    metrics::reset();
    trace::force(Some(true));
    trace::reset();
    trace::reset_epoch();

    let control = TcpListener::bind(&opts.control_addr)?;
    control.set_nonblocking(true)?;
    let metrics_listener = TcpListener::bind(&opts.metrics_addr)?;
    let control_addr = control.local_addr()?;
    let metrics_addr = metrics_listener.local_addr()?;
    println!(
        "serve control={control_addr} metrics={metrics_addr} speed={}",
        opts.speed
    );
    std::io::stdout().flush()?;

    let stop = Arc::new(AtomicBool::new(false));
    let metrics_thread = spawn_metrics_thread(metrics_listener, stop.clone());

    let clock = VirtualClock::new(opts.speed);
    let mut world = ServiceWorld::new();
    let mut conns: Vec<(TcpStream, Vec<u8>)> = Vec::new();
    let started = Instant::now();
    let mut follow_cursor = 0u64;
    let mut trace_tail: Vec<TraceEvent> = Vec::new();
    let mut shutdown = false;
    let mut loops: u64 = 0;

    while !shutdown {
        std::thread::sleep(opts.pacing);
        world.advance_to(clock.virtual_elapsed_ns());

        // Accept new control connections.
        while let Ok((stream, _)) = control.accept() {
            let _ = stream.set_nonblocking(true);
            conns.push((stream, Vec::new()));
        }
        // Drain complete lines from every connection.
        let mut read_buf = [0u8; 4096];
        conns.retain_mut(|(stream, pending)| {
            loop {
                match stream.read(&mut read_buf) {
                    Ok(0) => return false, // peer closed
                    Ok(n) => pending.extend_from_slice(&read_buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => return false,
                }
            }
            // A client streaming bytes without ever sending a newline
            // would otherwise grow `pending` without bound; no valid
            // control line approaches this cap.
            if pending.len() > MAX_CONTROL_LINE
                && !pending.contains(&b'\n')
            {
                let _ = writeln!(stream, "err line too long");
                return false;
            }
            while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = pending.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&line_bytes);
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let (reply, quit) = handle_command(&mut world, line);
                shutdown |= quit;
                if writeln!(stream, "{reply}").is_err() {
                    return false;
                }
            }
            true
        });

        // Live trace sidecar, every ~10 pacing ticks.
        if let Some(path) = &opts.trace_path {
            if loops.is_multiple_of(10) {
                let _ = flush_trace(path, &mut follow_cursor, &mut trace_tail);
            }
        }
        if let Some(max) = opts.max_wall {
            if started.elapsed() >= max {
                shutdown = true;
            }
        }
        loops += 1;
    }

    // Final drain so the sidecar holds everything recorded up to stop.
    if let Some(path) = &opts.trace_path {
        let _ = flush_trace(path, &mut follow_cursor, &mut trace_tail);
    }
    stop.store(true, Ordering::Relaxed);
    // Unblock the metrics accept loop with one last connection.
    let _ = TcpStream::connect(metrics_addr);
    let _ = metrics_thread.join();
    metrics::force(None);
    trace::force(None);
    Ok(())
}

/// Send one control command to a running service and return its reply
/// line (used by `visionsim ctl` and ci.sh).
pub fn control_roundtrip(addr: &SocketAddr, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    writeln!(stream, "{line}")?;
    let mut reply = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                reply.extend_from_slice(&buf[..n]);
                if reply.contains(&b'\n') {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(String::from_utf8_lossy(&reply).trim_end().to_string())
}

/// HTTP GET against a running service's metrics endpoint, returning the
/// response body (used by `visionsim scrape` and ci.sh).
pub fn scrape(addr: &SocketAddr, target: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8_lossy(&response);
    match text.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Ok(text.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::par::override_guard;

    #[test]
    fn handle_command_drives_the_world() {
        let mut world = ServiceWorld::new();
        let (reply, quit) = handle_command(&mut world, "join mixed 2 9 10");
        assert_eq!(reply, "ok join 0");
        assert!(!quit);
        world.advance_to(500_000_000);
        let (reply, _) = handle_command(&mut world, "fault 0 1 flap");
        assert_eq!(reply, "ok fault 0 1 flap");
        let (reply, _) = handle_command(&mut world, "snapshot");
        assert!(reply.starts_with("ok snapshot {"), "{reply}");
        let (reply, _) = handle_command(&mut world, "leave 0");
        assert!(reply.starts_with("ok leave 0 ticks="), "{reply}");
        let (reply, _) = handle_command(&mut world, "leave 0");
        assert!(reply.starts_with("err "), "{reply}");
        let (reply, quit) = handle_command(&mut world, "shutdown");
        assert_eq!(reply, "ok shutdown");
        assert!(quit);
        let (reply, quit) = handle_command(&mut world, "explode");
        assert!(reply.starts_with("err unknown command"), "{reply}");
        assert!(!quit);
    }

    /// End-to-end over real sockets: boot `serve` on ephemeral ports in a
    /// thread, drive a session over the wire, scrape Prometheus metrics,
    /// and shut down cleanly. Short wall budget: speed 200 with a small
    /// session keeps the whole exchange under a second or two.
    #[test]
    fn serve_end_to_end_over_sockets() {
        let _g = override_guard(); // process-global metrics/trace state
        let dir = std::env::temp_dir().join(format!("visionsim_serve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("live.trace.bin");

        // Bind first so the test knows the ports without parsing stdout.
        let control = TcpListener::bind("127.0.0.1:0").unwrap();
        let control_addr = control.local_addr().unwrap();
        let metrics_l = TcpListener::bind("127.0.0.1:0").unwrap();
        let metrics_addr = metrics_l.local_addr().unwrap();
        drop((control, metrics_l));

        let opts = ServeOptions {
            speed: 200.0,
            control_addr: control_addr.to_string(),
            metrics_addr: metrics_addr.to_string(),
            trace_path: Some(trace_path.clone()),
            pacing: Duration::from_millis(5),
            max_wall: Some(Duration::from_secs(30)),
        };
        let server = std::thread::spawn(move || serve(opts).unwrap());

        // Wait for the control socket to come up.
        let mut up = false;
        for _ in 0..200 {
            if TcpStream::connect(control_addr).is_ok() {
                up = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(up, "control socket never came up");

        // 60 s session: still live after the ~10 virtual seconds that
        // elapse during the sleeps below (200x speed).
        let reply = control_roundtrip(&control_addr, "join mixed 2 11 60").unwrap();
        assert_eq!(reply, "ok join 0");
        std::thread::sleep(Duration::from_millis(50));
        let reply = control_roundtrip(&control_addr, "fault 0 0 burst-loss").unwrap();
        assert_eq!(reply, "ok fault 0 0 burst-loss");
        let reply = control_roundtrip(&control_addr, "snapshot").unwrap();
        assert!(reply.starts_with("ok snapshot {\"virtual_ns\":"), "{reply}");

        let body = scrape(&metrics_addr, "/metrics").unwrap();
        assert!(
            body.contains("# TYPE visionsim_net_link_bytes_sent counter"),
            "missing Sim-class series in scrape:\n{body}"
        );
        assert!(scrape(&metrics_addr, "/healthz").unwrap().contains("ok"));

        let reply = control_roundtrip(&control_addr, "quiesce").unwrap();
        assert_eq!(reply, "ok quiesce finished=1");
        let reply = control_roundtrip(&control_addr, "shutdown").unwrap();
        assert_eq!(reply, "ok shutdown");
        server.join().unwrap();

        // The live sidecar is a valid VSTRACE1 image with events.
        let bytes = std::fs::read(&trace_path).unwrap();
        let (_, events) = trace::decode(&bytes).expect("valid live sidecar");
        assert!(!events.is_empty(), "live sidecar recorded nothing");
        std::fs::remove_dir_all(&dir).ok();
    }
}
