//! The line-delimited control protocol.
//!
//! One whitespace-separated command per line; the server answers each
//! with exactly one line, `ok <command> …` or `err <message>`:
//!
//! ```text
//! join <preset> <n> <seed> [secs]   start a session (preset: facetime | mixed)
//! leave <id>                        finish a session early, report its summary
//! fault <id> <participant> <kind>   inject a fault plan (flap | rate-cliff |
//!                                   delay-spike | burst-loss | outage)
//! snapshot                          one-line JSON view of the world
//! quiesce                           drain every live session; refuse new joins
//! shutdown                          stop the service (after a final drain)
//! ```

/// A parsed control command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Start a session from a named preset.
    Join {
        preset: String,
        n: usize,
        seed: u64,
        secs: u64,
    },
    /// Finish session `id` early.
    Leave { id: u64 },
    /// Inject a named fault plan against one participant of session `id`.
    Fault {
        id: u64,
        participant: usize,
        kind: String,
    },
    /// One-line JSON view of the live world.
    Snapshot,
    /// Drain every live session and refuse further joins.
    Quiesce,
    /// Stop the service.
    Shutdown,
}

/// Seconds a joined session runs when the `join` line omits `secs`.
pub const DEFAULT_SESSION_SECS: u64 = 300;

fn field<T: std::str::FromStr>(parts: &[&str], i: usize, what: &str) -> Result<T, String> {
    parts
        .get(i)
        .ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what} {:?}", parts[i]))
}

/// Parse one protocol line. Empty lines are an error (the server skips
/// them before calling this).
pub fn parse(line: &str) -> Result<Command, String> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    match parts.first().copied() {
        Some("join") => Ok(Command::Join {
            preset: parts
                .get(1)
                .ok_or("missing preset")?
                .to_string(),
            n: field(&parts, 2, "participant count")?,
            seed: field(&parts, 3, "seed")?,
            secs: match parts.get(4) {
                Some(_) => field(&parts, 4, "secs")?,
                None => DEFAULT_SESSION_SECS,
            },
        }),
        Some("leave") => Ok(Command::Leave {
            id: field(&parts, 1, "session id")?,
        }),
        Some("fault") => Ok(Command::Fault {
            id: field(&parts, 1, "session id")?,
            participant: field(&parts, 2, "participant")?,
            kind: parts.get(3).ok_or("missing fault kind")?.to_string(),
        }),
        Some("snapshot") => Ok(Command::Snapshot),
        Some("quiesce") => Ok(Command::Quiesce),
        Some("shutdown") => Ok(Command::Shutdown),
        Some(other) => Err(format!(
            "unknown command {other:?} (valid: join, leave, fault, snapshot, quiesce, shutdown)"
        )),
        None => Err("empty command".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse("join facetime 3 42 120").unwrap(),
            Command::Join {
                preset: "facetime".into(),
                n: 3,
                seed: 42,
                secs: 120
            }
        );
        assert_eq!(
            parse("join mixed 2 7").unwrap(),
            Command::Join {
                preset: "mixed".into(),
                n: 2,
                seed: 7,
                secs: DEFAULT_SESSION_SECS
            }
        );
        assert_eq!(parse("leave 3").unwrap(), Command::Leave { id: 3 });
        assert_eq!(
            parse("fault 1 0 burst-loss").unwrap(),
            Command::Fault {
                id: 1,
                participant: 0,
                kind: "burst-loss".into()
            }
        );
        assert_eq!(parse("  snapshot  ").unwrap(), Command::Snapshot);
        assert_eq!(parse("quiesce").unwrap(), Command::Quiesce);
        assert_eq!(parse("shutdown").unwrap(), Command::Shutdown);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("").is_err());
        assert!(parse("launch").unwrap_err().contains("unknown command"));
        assert!(parse("join").unwrap_err().contains("missing preset"));
        assert!(parse("join facetime x 1").unwrap_err().contains("participant count"));
        assert!(parse("leave").unwrap_err().contains("session id"));
        assert!(parse("fault 1 0").unwrap_err().contains("fault kind"));
    }
}
