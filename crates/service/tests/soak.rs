//! CI-sized soak: ≥ 60 s of simulated live traffic, checked for the
//! long-run failure modes a batch run never sees — monotonic drift in
//! Sim-class gauges, unbounded growth in the intern table or trace
//! ring, and participant-conservation violations.
//!
//! Drives [`ServiceWorld`] directly (no sockets, no wall-clock pacing),
//! so the 70 simulated seconds take however long the CPU needs, not 70
//! wall seconds.

use visionsim_core::metrics;
use visionsim_core::par::override_guard;
use visionsim_core::sanitizer;
use visionsim_core::trace;
use visionsim_service::world::ServiceWorld;

#[derive(Debug, Clone, Copy)]
struct Sample {
    in_flight_bytes: i64,
    queue_depth: i64,
    intern_sites: usize,
    ring_events: usize,
}

fn sample() -> Sample {
    Sample {
        in_flight_bytes: metrics::gauge_value("net/in_flight_bytes").unwrap_or(0),
        queue_depth: metrics::gauge_value("net/queue_depth").unwrap_or(0),
        intern_sites: trace::intern_len(),
        ring_events: trace::follow(0).events.len(),
    }
}

/// A gauge drifts when every step adds and nothing is ever reclaimed.
/// Over the steady-state window the sequence must not be strictly
/// increasing, and the final value must stay within an order of
/// magnitude of the window median.
fn assert_no_drift(name: &str, series: &[i64]) {
    assert!(series.len() >= 10, "window too small for {name}");
    let strictly_up = series.windows(2).all(|w| w[1] > w[0]);
    assert!(
        !strictly_up,
        "{name} increased on every sample of the steady window: {series:?}"
    );
    let mut sorted = series.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2].max(1);
    let last = *series.last().unwrap();
    assert!(
        last <= median.saturating_mul(10).saturating_add(1_000_000),
        "{name} final value {last} is far above the window median {median}: {series:?}"
    );
}

#[test]
fn soak_seventy_simulated_seconds() {
    let _g = override_guard(); // process-global metrics/trace/sanitizer
    metrics::force(Some(true));
    metrics::reset();
    trace::force(Some(true));
    trace::reset();
    trace::reset_epoch();
    sanitizer::force(Some(true));
    sanitizer::reset();

    let mut world = ServiceWorld::new();
    // One spatial multi-party session with the full control plane, one
    // 2D two-party session — both outlive the 60 s floor.
    let spatial = world.join("facetime", 3, 11, 70).unwrap();
    let mixed = world.join("mixed", 2, 22, 70).unwrap();

    let mut samples: Vec<Sample> = Vec::new();
    for chunk in 1..=70u64 {
        world.advance_to(chunk * 1_000_000_000);
        // Periodic chaos on live sessions: loss bursts and flaps, the
        // recoverable kinds, so the world keeps churning without
        // permanently killing a path.
        if chunk % 12 == 0 {
            world.fault(spatial, 1, "burst-loss").unwrap();
        }
        if chunk % 15 == 0 && chunk < 40 {
            world.fault(mixed, 0, "flap").unwrap();
        }
        // Mid-soak leave: the second session exits early; the world
        // must keep conserving everyone else.
        if chunk == 40 {
            let summary = world.leave(mixed).unwrap();
            assert!(summary.left_early);
            assert!(summary.ticks >= 39 * 90, "left after {} ticks", summary.ticks);
        }
        samples.push(sample());
    }

    // ≥ 60 s simulated, everything ran to completion.
    assert!(world.virtual_now_ns() >= 60_000_000_000);
    assert_eq!(world.live_sessions(), 0, "sessions still live after 70 s");
    assert_eq!(world.completed_sessions(), 2);
    assert!(
        !world.completed().iter().find(|s| s.id == spatial).unwrap().left_early,
        "the 70 s session must run out its clock"
    );

    // Participant conservation held on every feedback interval (the
    // engine's sanitizer ran with the resilience control plane on).
    assert_eq!(
        sanitizer::total(),
        0,
        "sanitizer violations during soak: {:?}",
        sanitizer::take()
    );

    // Bounded growth: the intern table plateaus once every site label
    // is seen, and the ring never exceeds its capacity.
    let steady: &[Sample] = &samples[20..];
    let intern_at_20 = steady[0].intern_sites;
    let intern_final = steady.last().unwrap().intern_sites;
    assert!(intern_final <= trace::INTERN_CAP);
    assert_eq!(
        intern_at_20, intern_final,
        "intern table kept growing through the steady state"
    );
    assert_eq!(trace::intern_overflow(), 0);
    for s in &samples {
        assert!(
            s.ring_events <= trace::capacity(),
            "ring exceeded capacity: {} > {}",
            s.ring_events,
            trace::capacity()
        );
    }

    // No monotonic drift in the Sim-class gauges.
    let in_flight: Vec<i64> = steady.iter().map(|s| s.in_flight_bytes).collect();
    let queue: Vec<i64> = steady.iter().map(|s| s.queue_depth).collect();
    assert_no_drift("net/in_flight_bytes", &in_flight);
    assert_no_drift("net/queue_depth", &queue);

    sanitizer::force(None);
    trace::force(None);
    trace::reset();
    metrics::force(None);
    metrics::reset();
}
