//! Per-application behaviour profiles.
//!
//! Everything the paper attributes to a specific app, in one place:
//!
//! | app | persona | transport | 2D resolution | 2-user topology |
//! |---|---|---|---|---|
//! | FaceTime (all AVP) | spatial | QUIC-like | — | via server |
//! | FaceTime (mixed) | 2D | RTP (PT as in 2D calls) | 1280×720 | P2P |
//! | Zoom | 2D | RTP | 640×360 | P2P |
//! | Webex | 2D | RTP | 1920×1080 | SFU |
//! | Teams | 2D | RTP | 1280×720 | SFU |
//!
//! Bits-per-pixel factors are calibrated so two-party throughput lands on
//! Figure 4's bands (Webex >4 Mbps, FaceTime-2D ≈2, Zoom ≈1.5).

use visionsim_device::device::{all_vision_pro, Device};
use visionsim_geo::sites::Provider;
use visionsim_transport::rtp::PayloadType;

/// What kind of persona a session delivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersonaType {
    /// Spatial persona (3D, semantic delivery).
    Spatial,
    /// 2D persona (virtual-camera video).
    TwoD,
}

/// Session topology for media.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Direct peer-to-peer.
    P2P,
    /// Through a forwarding server.
    Sfu,
}

/// One application's behaviour profile.
#[derive(Clone, Copy, Debug)]
pub struct AppProfile {
    /// Which provider this is.
    pub provider: Provider,
    /// 2D persona rendering resolution (width, height).
    pub resolution_2d: (u32, u32),
    /// 2D persona frame rate.
    pub fps_2d: f64,
    /// Encoder efficiency: bits per pixel at the default quality.
    pub bits_per_pixel: f64,
    /// RTP payload type for the video stream.
    pub video_pt: PayloadType,
    /// Whether two-party calls go P2P.
    pub p2p_for_two: bool,
    /// Whether the 2D stream rate-adapts to available bandwidth.
    pub rate_adaptive: bool,
}

impl AppProfile {
    /// The profile for `provider`.
    pub fn of(provider: Provider) -> AppProfile {
        match provider {
            Provider::FaceTime => AppProfile {
                provider,
                resolution_2d: (1_280, 720),
                fps_2d: 30.0,
                bits_per_pixel: 0.072,
                video_pt: PayloadType::H264Video,
                p2p_for_two: true,
                rate_adaptive: true,
            },
            Provider::Zoom => AppProfile {
                provider,
                resolution_2d: (640, 360),
                fps_2d: 30.0,
                bits_per_pixel: 0.215,
                video_pt: PayloadType::H264Video,
                p2p_for_two: true,
                rate_adaptive: true,
            },
            Provider::Webex => AppProfile {
                provider,
                resolution_2d: (1_920, 1_080),
                fps_2d: 30.0,
                bits_per_pixel: 0.068,
                video_pt: PayloadType::H264Video,
                p2p_for_two: false,
                rate_adaptive: true,
            },
            Provider::Teams => AppProfile {
                provider,
                resolution_2d: (1_280, 720),
                fps_2d: 30.0,
                bits_per_pixel: 0.090,
                video_pt: PayloadType::H264Video,
                p2p_for_two: false,
                rate_adaptive: true,
            },
        }
    }

    /// The persona type a session with these devices gets: spatial only on
    /// FaceTime with every participant on Vision Pro (§4.1).
    pub fn persona_type(&self, devices: &[Device]) -> PersonaType {
        if self.provider == Provider::FaceTime && all_vision_pro(devices) {
            PersonaType::Spatial
        } else {
            PersonaType::TwoD
        }
    }

    /// Media topology for a session (§4.1): FaceTime and Zoom go P2P for
    /// two users, *except* FaceTime with both users on Vision Pro (spatial
    /// personas always transit the server). Three or more users always use
    /// a server.
    pub fn topology(&self, devices: &[Device]) -> Topology {
        if devices.len() == 2
            && self.p2p_for_two
            && self.persona_type(devices) != PersonaType::Spatial
        {
            Topology::P2P
        } else {
            Topology::Sfu
        }
    }

    /// Default 2D target bitrate, bits/s (resolution × fps × bpp).
    pub fn default_bitrate_2d(&self) -> f64 {
        let (w, h) = self.resolution_2d;
        w as f64 * h as f64 * self.fps_2d * self.bits_per_pixel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_device::device::DeviceKind;

    fn devices(kinds: &[DeviceKind]) -> Vec<Device> {
        kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| Device::new(k, &format!("U{}", i + 1)))
            .collect()
    }

    #[test]
    fn default_bitrates_match_figure4_bands() {
        // Webex > 4 Mbps; FaceTime-2D ≈ 2; Zoom ≈ 1.5; Teams between.
        let webex = AppProfile::of(Provider::Webex).default_bitrate_2d() / 1e6;
        let zoom = AppProfile::of(Provider::Zoom).default_bitrate_2d() / 1e6;
        let ft = AppProfile::of(Provider::FaceTime).default_bitrate_2d() / 1e6;
        let teams = AppProfile::of(Provider::Teams).default_bitrate_2d() / 1e6;
        assert!(webex > 4.0, "webex {webex}");
        assert!((1.2..1.8).contains(&zoom), "zoom {zoom}");
        assert!((1.7..2.3).contains(&ft), "facetime {ft}");
        assert!(teams > zoom && teams < webex, "teams {teams}");
    }

    #[test]
    fn spatial_persona_needs_facetime_and_all_avp() {
        let both_avp = devices(&[DeviceKind::VisionPro, DeviceKind::VisionPro]);
        let mixed = devices(&[DeviceKind::VisionPro, DeviceKind::MacBook]);
        assert_eq!(
            AppProfile::of(Provider::FaceTime).persona_type(&both_avp),
            PersonaType::Spatial
        );
        assert_eq!(
            AppProfile::of(Provider::FaceTime).persona_type(&mixed),
            PersonaType::TwoD
        );
        // Other apps never get spatial personas, even all-AVP.
        for p in [Provider::Zoom, Provider::Webex, Provider::Teams] {
            assert_eq!(AppProfile::of(p).persona_type(&both_avp), PersonaType::TwoD);
        }
    }

    #[test]
    fn two_user_topology_matches_section_4_1() {
        let both_avp = devices(&[DeviceKind::VisionPro, DeviceKind::VisionPro]);
        let mixed = devices(&[DeviceKind::VisionPro, DeviceKind::MacBook]);
        // FaceTime mixed and Zoom go P2P at two users.
        assert_eq!(
            AppProfile::of(Provider::FaceTime).topology(&mixed),
            Topology::P2P
        );
        assert_eq!(AppProfile::of(Provider::Zoom).topology(&mixed), Topology::P2P);
        // FaceTime both-AVP does NOT (spatial personas transit the server).
        assert_eq!(
            AppProfile::of(Provider::FaceTime).topology(&both_avp),
            Topology::Sfu
        );
        // Webex and Teams always SFU.
        assert_eq!(AppProfile::of(Provider::Webex).topology(&mixed), Topology::Sfu);
        assert_eq!(AppProfile::of(Provider::Teams).topology(&mixed), Topology::Sfu);
    }

    #[test]
    fn three_users_always_use_a_server() {
        let three = devices(&[
            DeviceKind::VisionPro,
            DeviceKind::MacBook,
            DeviceKind::IPhone,
        ]);
        for p in Provider::ALL {
            assert_eq!(AppProfile::of(p).topology(&three), Topology::Sfu, "{p}");
        }
    }

    #[test]
    fn facetime_pt_is_the_traditional_2d_pt() {
        // §4.1: the PT field "remains consistent with that in traditional
        // 2D video calls on FaceTime".
        assert_eq!(
            AppProfile::of(Provider::FaceTime).video_pt,
            PayloadType::H264Video
        );
    }
}
