//! # visionsim-vca
//!
//! Models of the four videoconferencing applications the paper measures —
//! Apple FaceTime, Zoom, Cisco Webex, Microsoft Teams — and the session
//! engine that runs a full telepresence call over the simulated network.
//!
//! * [`profile`] — per-application behaviour: persona type, transport
//!   (RTP vs QUIC-like), 2D rendering resolution, P2P-vs-SFU topology
//!   policy, rate adaptation capability.
//! * [`encoder`] — the 2D-persona video encoder rate model (resolution ×
//!   frame rate × per-app bits-per-pixel, I/P frame structure, motion
//!   jitter) with a quality ladder for adaptation.
//! * [`adaptation`] — receiver-feedback-driven rate control for 2D video,
//!   and the persona availability state machine that produces the §4.3
//!   "poor connection" cliff for the non-adaptable semantic stream.
//! * [`server`] — SFU forwarding servers and the server-assignment
//!   policies (§4.1: nearest-to-initiator; plus the paper's proposed
//!   geo-distributed alternative as an ablation).
//! * [`scene`] — where participants sit and where they look: seating
//!   layouts and gaze dynamics driving the Figure 6 rendering load.
//! * [`session`] — the session runner: capture → encode → packetize →
//!   transport framing → network → SFU forward → reassemble → decode →
//!   render, with AP taps recording everything for `visionsim-capture`.

pub mod adaptation;
pub mod encoder;
pub mod fleet;
pub mod profile;
pub mod scene;
pub mod server;
pub mod session;

pub use adaptation::{PersonaAvailability, RateController};
pub use fleet::{FleetConfig, FleetOutcome, SiteReport};
pub use encoder::{VideoEncoder, VideoEncoderConfig};
pub use profile::{AppProfile, PersonaType};
pub use scene::{GazeDynamics, SeatingLayout};
pub use server::{AssignmentPolicy, ServerAssignment};
pub use session::{SessionConfig, SessionOutcome, SessionRunner};
